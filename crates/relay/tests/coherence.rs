//! The multi-client cache-coherence oracle with the relay interposed:
//! the same 21 seeded fault plans as `crates/core/tests/coherence.rs`,
//! but every dial now resolves through a [`ReplicaGroup`] fronting two
//! read-write replicas that share the exported file system and the
//! group's private key (one logical server, many frontends — a
//! replicated storage layer below them is out of scope).
//!
//! What the relay must not change: the oracle's verdict. Sizes stay
//! committed-only and monotone, stale reads stay lease-bounded, and a
//! rerun of any plan is byte-for-byte identical — round-robin routing is
//! part of the deterministic simulation, not a source of nondeterminism.
//!
//! The dedicated crash-during-handoff test kills the exact replica a
//! client is streaming through while a fault plan guarantees in-flight
//! calls die with it; the transparent reconnect redials through the
//! relay and must land on the surviving replica without the workload
//! observing anything but a retried call.

use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{Mount, SfsClient, SfsNetwork, DEFAULT_PIPELINE_WINDOW};
use sfs::journal::ClientJournal;
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::sha1::sha1;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{FileHandle, Nfs3Reply, Nfs3Request, StableHow};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_relay::ReplicaGroup;
use sfs_sim::{
    DiskParams, FaultEvent, FaultPlan, JournalDisk, NetParams, SimClock, SimDisk, Transport,
};
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;
const LEASE_NS: u64 = 250_000_000;
const OP_GAP_NS: u64 = 60_000_000;
const FILES: usize = 3;
const OPS: usize = 36;
/// Read-write replicas behind the relay in every harness.
const N_RW: usize = 2;

fn version_byte(f: usize, offset: u64) -> u8 {
    b'a' + ((f as u64 + offset) % 26) as u8
}

struct Commit {
    size: u64,
    hash: [u8; 20],
    t_ns: u64,
}

struct Harness {
    clock: SimClock,
    net: Arc<SfsNetwork>,
    plan: FaultPlan,
    path: SelfCertifyingPath,
    group: Arc<ReplicaGroup>,
    servers: Vec<Arc<SfsServer>>,
    journals: Vec<ClientJournal>,
    clients: Vec<Arc<SfsClient>>,
    mounts: Vec<Arc<Mount>>,
    fhs: Vec<FileHandle>,
    history: Vec<Vec<Commit>>,
    contents: Vec<Vec<u8>>,
    last_seen: Vec<Vec<u64>>,
    crashes_done: usize,
    violations: Vec<String>,
}

/// Like the core harness, but the Location resolves through a relay
/// fronting `N_RW` read-write replicas. Every replica shares the VFS,
/// the key and the fault plan, so a `crash=` instant restarts the whole
/// group — exactly like the single-machine battery — while routing
/// still round-robins every (re)dial across the frontends.
fn build_harness(spec: &str) -> Harness {
    let plan = FaultPlan::from_spec(spec).unwrap();
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let public = vfs.mkdir_p("/public").unwrap();
    vfs.setattr(
        &root_creds,
        public,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });

    let mut servers = Vec::new();
    let mut group = None;
    for r in 0..N_RW {
        let mut config = ServerConfig::new("sfs.lcs.mit.edu");
        config.lease_ns = LEASE_NS;
        let server = SfsServer::new(
            config,
            server_key(),
            vfs.clone(),
            auth.clone(),
            SfsPrg::from_entropy(format!("relay-coh-server-{r}").as_bytes()),
        );
        server.set_fault_plan(plan.clone());
        let g = group.get_or_insert_with(|| ReplicaGroup::new(server.path().clone()));
        g.add_rw(server.clone());
        servers.push(server);
    }
    let group = group.unwrap();
    let path = group.path().clone();

    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.set_fault_plan(plan.clone());
    net.register_relay(&path.location, group.clone());

    Harness {
        clock,
        net,
        plan,
        path,
        group,
        servers,
        journals: Vec::new(),
        clients: Vec::new(),
        mounts: Vec::new(),
        fhs: Vec::new(),
        history: Vec::new(),
        contents: vec![Vec::new(); FILES],
        last_seen: Vec::new(),
        crashes_done: 0,
        violations: Vec::new(),
    }
}

fn populate(mut h: Harness, n_clients: usize) -> Harness {
    for i in 0..n_clients {
        let disk = SimDisk::new(h.clock.clone(), DiskParams::ibm_18es());
        disk.set_fault_plan(h.plan.clone());
        let journal = ClientJournal::new(JournalDisk::new(disk, (i as u64) << 32));
        let client = SfsClient::with_ephemeral(
            h.net.clone(),
            format!("relay-coh-client-{i}-epoch-0").as_bytes(),
            client_ephemeral(),
        );
        client.set_pipeline_window(DEFAULT_PIPELINE_WINDOW);
        client.attach_journal(journal.clone());
        client.install_agent_key(ALICE_UID, user_key());
        let mount = client.mount(ALICE_UID, &h.path).unwrap();
        h.journals.push(journal);
        h.clients.push(client);
        h.mounts.push(mount);
    }
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", h.path.full_path());
        h.clients[0].write_file(ALICE_UID, &p, b"").unwrap();
        let (_, fh, _) = h.clients[0].resolve(ALICE_UID, &p).unwrap();
        h.fhs.push(fh);
        h.history.push(vec![Commit {
            size: 0,
            hash: sha1(b""),
            t_ns: h.clock.now().as_nanos(),
        }]);
    }
    h.last_seen = vec![vec![0; FILES]; n_clients];
    h
}

fn relay_harness(spec: &str, n_clients: usize) -> Harness {
    populate(build_harness(spec), n_clients)
}

impl Harness {
    fn honour_client_crashes(&mut self) {
        while self.crashes_done < self.plan.client_epoch(self.clock.now()) as usize {
            let victim = self.crashes_done % self.clients.len();
            self.plan.note_client_crash(self.clock.now());
            self.crashes_done += 1;
            let reborn = SfsClient::with_ephemeral(
                self.net.clone(),
                format!("relay-coh-client-{victim}-epoch-{}", self.crashes_done).as_bytes(),
                client_ephemeral(),
            );
            reborn.set_pipeline_window(DEFAULT_PIPELINE_WINDOW);
            reborn.attach_journal(self.journals[victim].clone());
            let report = reborn.recover(ALICE_UID).unwrap();
            assert_eq!(
                report.remounted,
                vec![self.path.dir_name()],
                "recovery must re-establish the journaled mount through the relay: {report:?}"
            );
            self.mounts[victim] = reborn.mount(ALICE_UID, &self.path).unwrap();
            self.clients[victim] = reborn;
        }
    }

    fn write(&mut self, i: usize, f: usize) {
        let offset = self.history[f].last().unwrap().size;
        let byte = version_byte(f, offset);
        let reply = self.clients[i]
            .call_nfs(
                &self.mounts[i],
                ALICE_UID,
                &Nfs3Request::Write {
                    fh: self.fhs[f].clone(),
                    offset,
                    stable: StableHow::FileSync,
                    data: vec![byte],
                },
            )
            .unwrap();
        assert!(
            matches!(reply, Nfs3Reply::Write { count: 1, .. }),
            "append must write exactly one byte: {reply:?}"
        );
        self.contents[f].push(byte);
        self.history[f].push(Commit {
            size: offset + 1,
            hash: sha1(&self.contents[f]),
            t_ns: self.clock.now().as_nanos(),
        });
    }

    fn read_and_check(&mut self, i: usize, f: usize) {
        let t_read = self.clock.now().as_nanos();
        let attr = self.clients[i]
            .getattr(&self.mounts[i], ALICE_UID, &self.fhs[f])
            .unwrap();
        let s = attr.size;
        let latest = self.history[f].last().unwrap().size;
        if self.history[f].iter().all(|c| c.size != s) {
            self.violations.push(format!(
                "client {i} file {f}: observed size {s} never committed (latest {latest})"
            ));
            return;
        }
        if s < self.last_seen[i][f] {
            self.violations.push(format!(
                "client {i} file {f}: size went backwards {} -> {s}",
                self.last_seen[i][f]
            ));
        }
        self.last_seen[i][f] = s;
        if s == latest {
            return;
        }
        let next = &self.history[f][(s + 1) as usize];
        if t_read > next.t_ns + LEASE_NS {
            self.violations.push(format!(
                "client {i} file {f}: stale size {s} served {}ns past lease expiry",
                t_read - (next.t_ns + LEASE_NS)
            ));
        }
    }

    fn wire_read_and_check(&mut self, i: usize, f: usize) {
        let t_read = self.clock.now().as_nanos();
        let reply = self.clients[i]
            .call_nfs(
                &self.mounts[i],
                ALICE_UID,
                &Nfs3Request::Read {
                    fh: self.fhs[f].clone(),
                    offset: 0,
                    count: 8192,
                },
            )
            .unwrap();
        let data = match reply {
            Nfs3Reply::Read { data, .. } => data,
            other => panic!("unexpected read reply: {other:?}"),
        };
        let s = data.len() as u64;
        let latest = self.history[f].last().unwrap().size;
        match self.history[f].iter().find(|c| c.size == s) {
            None => {
                self.violations.push(format!(
                    "client {i} file {f}: wire read returned {s} bytes, a length \
                     never committed (latest {latest})"
                ));
                return;
            }
            Some(c) if c.hash != sha1(&data) => {
                self.violations.push(format!(
                    "client {i} file {f}: wire read of {s} bytes does not hash-match \
                     committed version {s} — torn or mixed-version content"
                ));
                return;
            }
            Some(_) => {}
        }
        if s < self.last_seen[i][f] {
            self.violations.push(format!(
                "client {i} file {f}: wire read went backwards {} -> {s}",
                self.last_seen[i][f]
            ));
        }
        self.last_seen[i][f] = s;
        if s < latest {
            let next = &self.history[f][(s + 1) as usize];
            if t_read > next.t_ns + LEASE_NS {
                self.violations.push(format!(
                    "client {i} file {f}: stale wire read of size {s} served \
                     {}ns past lease expiry",
                    t_read - (next.t_ns + LEASE_NS)
                ));
            }
        }
    }

    fn run(mut self, seed: u64) -> RunOutcome {
        let mut rng = XorShiftSource::new(seed | 1);
        let mut draw = move || {
            let mut b = [0u8; 8];
            rng.fill(&mut b);
            u64::from_le_bytes(b)
        };
        for _ in 0..OPS {
            self.clock.advance_ns(OP_GAP_NS);
            self.honour_client_crashes();
            let i = (draw() as usize) % self.clients.len();
            let f = (draw() as usize) % FILES;
            if draw() % 10 < 3 {
                self.write(i, f);
            } else {
                self.read_and_check(i, f);
                self.wire_read_and_check(i, f);
            }
        }
        let health = self.group.health_check();
        RunOutcome {
            violations: self.violations,
            total_ns: self.clock.now().as_nanos(),
            events: self.plan.events(),
            sizes: self
                .history
                .iter()
                .map(|h| h.last().unwrap().size)
                .collect(),
            journal_records: self.journals.iter().map(|j| j.len()).collect(),
            crashes: self.crashes_done,
            reconnects: self.mounts.iter().map(|m| m.reconnects()).sum(),
            reboots_observed: health.reboots_observed,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    violations: Vec<String>,
    total_ns: u64,
    events: Vec<FaultEvent>,
    sizes: Vec<u64>,
    journal_records: Vec<usize>,
    crashes: usize,
    reconnects: u64,
    reboots_observed: u64,
}

/// The exact battery from `crates/core/tests/coherence.rs`.
const COHERENCE_SPECS: &[(&str, usize)] = &[
    ("seed=401,drop=20", 2),
    ("seed=402,dup=25", 3),
    ("seed=403,reorder=25", 2),
    ("seed=404,corrupt=15", 2),
    ("seed=405,delay=150,delay_ns=2ms", 3),
    ("seed=406,partition=500ms+1s", 2),
    ("seed=407,crash=900ms", 3),
    ("seed=408,syncfail=200", 2),
    ("seed=409,ccrash=800ms", 2),
    ("seed=410,ccrash=700ms,crash=700ms", 2),
    ("seed=411,drop=15,dup=10,ccrash=900ms", 3),
    ("seed=412,corrupt=10,ccrash=600ms,crash=1500ms", 2),
    ("seed=413,drop=10,reorder=15,delay=80,delay_ns=1ms", 4),
    ("seed=414,crash=1s,ccrash=1s", 3),
    ("seed=415,drop=10,syncfail=150,ccrash=1200ms", 2),
    ("seed=416,dup=15,corrupt=10,crash=800ms", 2),
    ("seed=417,partition=600ms+800ms,ccrash=1600ms", 2),
    (
        "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
        3,
    ),
    ("seed=419,ccrash=600ms,ccrash=1500ms,drop=10", 2),
    ("seed=420,crash=700ms,ccrash=1300ms,dup=10", 3),
    (
        "seed=421,drop=15,corrupt=10,crash=1s,ccrash=1s,syncfail=100",
        2,
    ),
];

#[test]
fn coherence_oracle_passes_with_relay_interposed() {
    let mut crashes = 0;
    let mut reboots = 0;
    for (spec, n) in COHERENCE_SPECS {
        let out = relay_harness(spec, *n).run(0x5EED);
        assert!(
            out.violations.is_empty(),
            "coherence violated behind the relay under {spec:?}: {:#?}",
            out.violations
        );
        crashes += out.crashes;
        reboots += out.reboots_observed;
    }
    assert!(crashes >= 8, "the battery must exercise client restarts");
    assert!(
        reboots >= 2,
        "crash= plans must surface as relay-observed reboots, saw {reboots}"
    );
}

#[test]
fn relay_coherence_runs_reproduce_byte_for_byte() {
    // Round-robin routing is part of the deterministic simulation:
    // rerunning a plan — crash-restarts, reconnect-handoffs and all —
    // yields the identical outcome, reconnect and reboot counts included.
    for (spec, n) in [
        ("seed=409,ccrash=800ms", 2usize),
        ("seed=410,ccrash=700ms,crash=700ms", 2),
        (
            "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
            3,
        ),
    ] {
        let a = relay_harness(spec, n).run(0x5EED);
        let b = relay_harness(spec, n).run(0x5EED);
        assert_eq!(
            a, b,
            "relayed coherence run diverged across reruns of {spec:?}"
        );
    }
}

#[test]
fn routing_skips_dead_epoch_replicas_until_stable() {
    // Satellite of the health checker: a replica whose last health check
    // caught a crashed (advanced) boot epoch is skipped by round-robin —
    // and counted — instead of being handed to a client to discover the
    // hard way. A later check that sees the epoch hold still clears the
    // flag; and if *every* replica is in that state (a whole-group
    // crash), routing absorbs one restart rather than going dark.
    let h = relay_harness("seed=950", 1);
    let attached = (0..N_RW)
        .find(|&r| h.servers[r].load().streams() > 0)
        .expect("the mount streams through some replica");
    let survivor = 1 - attached;

    h.servers[attached].crash_restart();
    let health = h.group.health_check();
    assert!(health.reboots_observed >= 1);
    let skipped_before = h.group.skipped_dead();
    let survivor_streams = h.servers[survivor].load().streams();

    let fresh = |tag: &str| {
        let c = SfsClient::with_ephemeral(h.net.clone(), tag.as_bytes(), client_ephemeral());
        c.install_agent_key(ALICE_UID, user_key());
        c
    };
    // Two consecutive dials: round-robin advances its start slot each
    // time, so at least one of them begins at the stale replica and must
    // skip it. Both land on the survivor either way.
    let c1 = fresh("skip-dead-1");
    c1.mount(ALICE_UID, &h.path).unwrap();
    let c1b = fresh("skip-dead-1b");
    c1b.mount(ALICE_UID, &h.path).unwrap();
    assert!(
        h.group.skipped_dead() > skipped_before,
        "a dial starting at the stale-epoch replica must skip it"
    );
    assert_eq!(
        h.servers[survivor].load().streams(),
        survivor_streams + 2,
        "both fresh mounts must land on the survivor"
    );

    // The epoch held still across another check: back in rotation,
    // no more skips.
    let _ = h.group.health_check();
    let skipped_stable = h.group.skipped_dead();
    let c2 = fresh("skip-dead-2");
    c2.mount(ALICE_UID, &h.path).unwrap();
    assert_eq!(
        h.group.skipped_dead(),
        skipped_stable,
        "a stable replica must not be skipped"
    );

    // Whole-group crash: every replica looks stale, yet routing must
    // still serve by absorbing one of the restarts.
    for r in 0..N_RW {
        h.servers[r].crash_restart();
    }
    let _ = h.group.health_check();
    let c3 = fresh("skip-dead-3");
    c3.mount(ALICE_UID, &h.path)
        .expect("an all-stale group must still route");
    assert!(h.group.skipped_dead() > skipped_stable);
}

#[test]
fn crash_during_handoff_lands_on_surviving_replica() {
    // A client streams appends through one replica of a two-replica
    // group. The health monitor pulls that replica from rotation for
    // maintenance, and before the session can drain the machine crashes
    // outright — killing the connection mid-workload. The client's
    // transparent reconnect redials through the relay, which now routes
    // to the survivor; the workload sees nothing but a retried call and
    // the oracle stays green.
    let mut h = relay_harness("seed=930", 1);
    // Warm up with scored traffic so the crash interrupts a real stream.
    for k in 0..4 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
        h.read_and_check(0, k % FILES);
    }
    assert!(
        h.clock.now().as_nanos() < 500_000_000,
        "warm-up overran the scheduled crash instant"
    );
    let attached = (0..N_RW)
        .find(|&r| h.servers[r].load().streams() > 0)
        .expect("the mount streams through some replica");
    let survivor = 1 - attached;
    assert_eq!(
        h.servers[survivor].load().streams(),
        0,
        "a single mount holds a single stream"
    );
    // Schedule the crash on exactly the attached machine and take it out
    // of rotation so the redial cannot land back on it post-restart.
    h.servers[attached].set_fault_plan(FaultPlan::from_spec("seed=931,crash=500ms").unwrap());
    h.group.mark_down(attached);

    for k in 0..12 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
        h.read_and_check(0, k % FILES);
        h.wire_read_and_check(0, k % FILES);
    }

    assert!(h.violations.is_empty(), "{:#?}", h.violations);
    assert!(
        h.mounts[0].reconnects() >= 1,
        "the mid-workload crash must force a transparent reconnect"
    );
    assert_eq!(
        h.servers[survivor].load().streams(),
        1,
        "the mount must now stream through the surviving replica"
    );
    assert_eq!(
        h.servers[attached].load().streams(),
        0,
        "the dead replica's stream must be torn down"
    );
    let health = h.group.health_check();
    assert!(
        health.reboots_observed >= 1,
        "the health check must observe the crashed replica's epoch bump"
    );
    assert_eq!(health.live_rw, 1);
    assert_eq!(health.down_rw, 1);

    // Every byte written across the handoff is durable and in order.
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", h.path.full_path());
        assert_eq!(
            h.clients[0].read_file(ALICE_UID, &p).unwrap(),
            h.contents[f],
            "file {f} lost bytes across the handoff"
        );
    }
}
