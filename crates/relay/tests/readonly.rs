//! The §2.4 read-only replica fleet behind the relay: keyless replicas
//! serve a signed distribution bundle, clients verify every block
//! against the HostID, and the mount fails over between replicas —
//! including away from lying ones — without any of them ever holding a
//! private key.

use std::sync::Arc;
use std::sync::OnceLock;

use sfs::client::{SfsClient, SfsNetwork};
use sfs::roclient::RoMount;
use sfs::server::RoReplicaServer;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::readonly::RoDatabase;
use sfs_relay::ReplicaGroup;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, Vfs};

const LOCATION: &str = "ro.lcs.mit.edu";

fn publisher_key() -> &'static RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xD1D1);
        generate_keypair(768, &mut rng)
    })
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

/// Publishes a small tree and returns the signed distribution bundle.
fn published_bundle() -> Vec<u8> {
    let vfs = Vfs::new(11, SimClock::new());
    let creds = Credentials::root();
    vfs.write_file(&creds, vfs.root(), "README", b"replicated, keyless")
        .unwrap();
    let sub = vfs.mkdir_p("/docs").unwrap();
    vfs.write_file(&creds, sub, "paper.txt", &[0x42; 4096])
        .unwrap();
    RoDatabase::publish(&vfs, publisher_key(), 3).export()
}

/// A network with `n` keyless replicas of the bundle behind a relay.
fn fleet(
    n: usize,
) -> (
    Arc<SfsNetwork>,
    Arc<ReplicaGroup>,
    Vec<Arc<RoReplicaServer>>,
) {
    let path = SelfCertifyingPath::for_server(LOCATION, publisher_key().public());
    let bundle = published_bundle();
    let group = ReplicaGroup::new(path);
    let mut replicas = Vec::new();
    for _ in 0..n {
        let replica =
            RoReplicaServer::from_bundle(LOCATION, publisher_key().public(), &bundle).unwrap();
        group.add_ro(replica.clone());
        replicas.push(replica);
    }
    let net = SfsNetwork::new(SimClock::new(), NetParams::switched_100mbit(Transport::Tcp));
    net.register_relay(LOCATION, group.clone());
    (net, group, replicas)
}

fn path() -> SelfCertifyingPath {
    SelfCertifyingPath::for_server(LOCATION, publisher_key().public())
}

#[test]
fn keyless_fleet_serves_verified_reads() {
    let (net, group, replicas) = fleet(3);
    let client = SfsClient::with_ephemeral(net, b"ro-fleet-client", client_ephemeral());
    let mount = client.mount_read_only(&path()).unwrap();
    assert_eq!(mount.version(), 3);
    assert_eq!(mount.read_file("/README").unwrap(), b"replicated, keyless");
    assert_eq!(
        mount.read_file("/docs/paper.txt").unwrap(),
        vec![0x42; 4096]
    );
    assert_eq!(mount.failovers(), 0);
    assert_eq!(group.health_check().live_ro, 3);
    // Exactly one replica carries this mount's stream.
    let attached: u64 = replicas.iter().map(|r| r.load().streams()).sum();
    assert_eq!(attached, 1);
}

#[test]
fn dials_round_robin_across_replicas() {
    let (net, _group, replicas) = fleet(3);
    // Three concurrent mounts: the relay spreads them one per replica.
    let mounts: Vec<RoMount> = (0..3)
        .map(|_| {
            let (wire, conn) = net.dial_ro(LOCATION).unwrap();
            RoMount::connect(path(), wire, conn).unwrap()
        })
        .collect();
    for replica in &replicas {
        assert_eq!(replica.load().streams(), 1, "uneven routing");
    }
    drop(mounts);
    for replica in &replicas {
        assert_eq!(replica.load().streams(), 0, "load must detach on drop");
    }
}

#[test]
fn mount_fails_over_when_its_replica_dies() {
    let (net, group, replicas) = fleet(2);
    let client = SfsClient::with_ephemeral(net, b"ro-failover-client", client_ephemeral());
    let mount = client.mount_read_only(&path()).unwrap();
    assert_eq!(mount.read_file("/README").unwrap(), b"replicated, keyless");
    // Kill both replicas' service, then revive only the one the mount is
    // NOT attached to — the next uncached read must hand over.
    let attached = replicas
        .iter()
        .position(|r| r.load().streams() > 0)
        .expect("mount is attached somewhere");
    replicas[attached].set_down(true);
    let health = group.health_check();
    assert_eq!(health.live_ro, 1);
    assert_eq!(health.down_ro, 1);
    let data = mount.read_file("/docs/paper.txt").unwrap();
    assert_eq!(data, vec![0x42; 4096]);
    assert!(mount.failovers() >= 1, "the dead replica forced a handoff");
    assert_eq!(
        replicas[1 - attached].load().streams(),
        1,
        "the mount now streams from the survivor"
    );
}

#[test]
fn mount_abandons_lying_replica() {
    let (net, _group, replicas) = fleet(2);
    // One replica turns malicious: it re-imports a bundle whose README
    // block was tampered with, so the block no longer hashes to its
    // digest. (It cannot re-sign the tree — no key — so the root still
    // names the honest digest.)
    let vfs = Vfs::new(11, SimClock::new());
    let creds = Credentials::root();
    vfs.write_file(&creds, vfs.root(), "README", b"replicated, keyless")
        .unwrap();
    let sub = vfs.mkdir_p("/docs").unwrap();
    vfs.write_file(&creds, sub, "paper.txt", &[0x42; 4096])
        .unwrap();
    let mut evil_db = RoDatabase::publish(&vfs, publisher_key(), 3);
    let root = evil_db.root.root_digest;
    assert!(evil_db.tamper_with_block(&root));
    let client = SfsClient::with_ephemeral(net, b"ro-evil-client", client_ephemeral());
    let mount = client.mount_read_only(&path()).unwrap();
    let attached = replicas
        .iter()
        .position(|r| r.load().streams() > 0)
        .unwrap();
    replicas[attached].install(Arc::new(evil_db));
    // The tampered root block fails verification; the mount silently
    // moves to the honest replica and the read succeeds.
    assert_eq!(mount.read_file("/README").unwrap(), b"replicated, keyless");
    assert!(mount.failovers() >= 1, "the lying replica forced a handoff");
}

#[test]
fn keyless_replica_refuses_read_write_dialect() {
    use sfs::server::RoConnection;
    use sfs_proto::keyneg::KeyNegRequest;
    use sfs_xdr::Xdr;
    let (_, _, replicas) = fleet(1);
    let conn = replicas[0].accept();
    let hello = sfs::wire::CallMsg::Hello {
        req: KeyNegRequest {
            location: LOCATION.into(),
            host_id: path().host_id,
        },
        service: sfs::wire::Service::File,
        dialect: sfs::wire::Dialect::ReadWrite,
        version: 1,
        extensions: String::new(),
    };
    let reply = sfs::wire::ReplyMsg::from_xdr(&conn.handle_ro_bytes(&hello.to_xdr())).unwrap();
    match reply {
        sfs::wire::ReplyMsg::Error(e) => assert!(
            e.contains("no private key"),
            "refusal must name the reason: {e}"
        ),
        other => panic!("read-write hello must be refused, got {other:?}"),
    }
}

#[test]
fn relay_telemetry_counts_routes_and_health() {
    use sfs_telemetry::{Telemetry, ZeroClock};
    let (net, group, replicas) = fleet(2);
    let tel = Telemetry::recording(ZeroClock);
    group.set_telemetry(&tel);
    let client = SfsClient::with_ephemeral(net, b"ro-tel-client", client_ephemeral());
    let mount = client.mount_read_only(&path()).unwrap();
    assert_eq!(tel.counter("relay", "route.ro"), 1);
    group.health_check();
    assert_eq!(tel.gauge("relay", "health.ro_live"), 2);
    assert_eq!(tel.gauge("relay", "health.ro_down"), 0);
    // A down replica flips the gauges on the next check, and the
    // failover that follows is another routed dial.
    replicas[0].set_down(true);
    replicas[1].set_down(true);
    let _ = mount.read_file("/README");
    group.health_check();
    assert_eq!(tel.gauge("relay", "health.ro_down"), 2);
    assert!(
        tel.counter("relay", "route.ro_unroutable") + tel.counter("relay", "route.rw_unroutable")
            >= 1,
        "a dark fleet must surface as unroutable dials"
    );
}

#[test]
fn all_replicas_down_is_a_clean_error() {
    let (net, _group, replicas) = fleet(2);
    let client = SfsClient::with_ephemeral(net, b"ro-dark-client", client_ephemeral());
    let mount = client.mount_read_only(&path()).unwrap();
    for r in &replicas {
        r.set_down(true);
    }
    // Uncached read: every failover attempt lands on a down replica.
    let err = mount.read_file("/docs/paper.txt").unwrap_err();
    assert!(
        matches!(err, sfs::roclient::RoClientError::Unavailable(_)),
        "expected Unavailable, got {err:?}"
    );
}
