//! The replicated write path: primary/backup log shipping behind the
//! relay, crash-consistent failover, and cold-start admission control.
//!
//! A read-write HostID names a key (§2.2); [`ReplGroup`] makes it name
//! a *history*. Each member holds its own file system and its own
//! CRC-framed op log ([`sfs_sim::JournalDisk`]). The primary executes
//! every mutating NFS call and — still inside the dispatch, before the
//! reply is encoded — appends a [`ReplRecord::Op`] to its log and
//! ships the identical frame to every live backup, blocking (in
//! virtual time, via [`sfs_sim::ReplTransport`]) until the configured
//! quorum holds it durably. The client's acknowledgement therefore
//! *implies* quorum durability: a primary crash can lose in-flight,
//! unacked operations (which the client reissues idempotently, exactly
//! as it already does for a single crashed server), but never an acked
//! one.
//!
//! Backups append eagerly and apply lazily: every `checkpoint_every`
//! commits, the group applies the durable prefix to each backup's file
//! system and truncates all logs down to a [`ReplRecord::Checkpoint`]
//! mark — coordinated truncation, so any member's log plus its applied
//! state always reconstructs the committed history.
//!
//! **Failover** rides boot epochs. Routing observes the primary's
//! epoch on every dial; an advance means the machine crashed. The
//! most-caught-up eligible backup (highest durable LSN; deterministic
//! index tie-break) replays its log suffix to a consistent state,
//! writes a [`ReplRecord::Promote`] frame, and only then admits
//! traffic. The restarted ex-primary is quarantined
//! (`needs_full_sync`) until an operator resyncs it — it may have
//! state the group cannot vouch for. Clients never see any of this
//! beyond a reconnect: the new primary holds the same private key, so
//! self-certification, file handles, and the rekey all just work.
//!
//! **Admission control** guards the correlated-cold-start case: when a
//! whole replica set restarts, every client redials at once and each
//! dial costs the server a private-key operation. An optional
//! [`AdmissionControl`] token bucket (over virtual time) makes routing
//! answer `Busy` instead, which the client treats as a retryable dial
//! failure with its normal backoff — trading a short queueing delay
//! for not burying the survivors (measured in `BENCH_failover.json`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use sfs::client::{RoutedRo, RoutedRw, Router, RwRoute};
use sfs::server::{Replicator, SfsServer};
use sfs_nfs3::{Nfs3Request, Proc};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::repl::{ReplOp, ReplRecord};
use sfs_sim::{JournalDisk, ReplLink, ReplTransport, SimClock, SimTime};
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;
use sfs_vfs::Credentials;

/// Token-bucket admission control over virtual time.
///
/// `capacity` dials may burst instantly; thereafter dials drain at
/// `refill_per_sec`. Integer arithmetic throughout (tokens are tracked
/// in nano-tokens), and the refill watermark is monotone — callers on
/// skewed per-client clocks cannot mint tokens by presenting an older
/// `now`.
pub struct AdmissionControl {
    capacity: u64,
    refill_per_sec: u64,
    state: Mutex<AdmState>,
    admitted: AtomicU64,
    throttled: AtomicU64,
}

struct AdmState {
    /// Tokens × 10⁹, so refill needs no floating point.
    tokens_nano: u128,
    last_ns: u64,
}

const NANO: u128 = 1_000_000_000;

impl AdmissionControl {
    pub fn new(capacity: u64, refill_per_sec: u64) -> Self {
        AdmissionControl {
            capacity,
            refill_per_sec,
            state: Mutex::new(AdmState {
                tokens_nano: capacity as u128 * NANO,
                last_ns: 0,
            }),
            admitted: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }

    /// One dial asks to pass at virtual instant `now`. Deterministic
    /// given the call sequence.
    pub fn admit(&self, now: SimTime) -> bool {
        let now_ns = now.as_nanos();
        let mut st = self.state.lock();
        if now_ns > st.last_ns {
            let elapsed = (now_ns - st.last_ns) as u128;
            st.tokens_nano = (st.tokens_nano + elapsed * self.refill_per_sec as u128)
                .min(self.capacity as u128 * NANO);
            st.last_ns = now_ns;
        }
        if st.tokens_nano >= NANO {
            st.tokens_nano -= NANO;
            self.admitted.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            self.throttled.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// (admitted, throttled) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.admitted.load(Ordering::SeqCst),
            self.throttled.load(Ordering::SeqCst),
        )
    }
}

/// One member of a replicated write group.
struct ReplMember {
    server: Arc<SfsServer>,
    log: JournalDisk,
    /// Highest LSN durably appended to this member's log.
    durable_lsn: AtomicU64,
    /// Highest LSN applied to this member's file system.
    applied_lsn: AtomicU64,
    /// Boot epoch routing last observed.
    last_epoch: AtomicU64,
    /// Administratively out of rotation (stops receiving shipped frames).
    down: AtomicBool,
    /// Diverged beyond what log shipping can repair: missed truncated
    /// frames, holds unvouched-for state (a deposed primary), or has a
    /// corrupt log. Excluded from quorum, promotion, and routing until
    /// an operator rebuilds it.
    needs_full_sync: AtomicBool,
}

/// Per-member view for assertions and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberStats {
    pub durable_lsn: u64,
    pub applied_lsn: u64,
    pub down: bool,
    pub needs_full_sync: bool,
}

/// A health summary of the replicated group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplHealth {
    pub primary: usize,
    pub commit_lsn: u64,
    pub eligible_backups: usize,
    pub needs_full_sync: usize,
    pub promotions: u64,
    pub reboots_observed: u64,
}

/// A primary/backup replicated write path for one `Location:HostID`.
///
/// Registered into an [`sfs::client::SfsNetwork`] as a relay; routes
/// every read-write dial to the current primary, promoting on observed
/// primary death. Installed as each member server's [`Replicator`], so
/// the primary's dispatch ships its ops through [`Self::replicate`].
pub struct ReplGroup {
    path: SelfCertifyingPath,
    clock: SimClock,
    members: Mutex<Vec<Arc<ReplMember>>>,
    transport: Mutex<ReplTransport>,
    primary: AtomicUsize,
    /// Total durable copies (including the primary's) a commit requires.
    quorum: usize,
    checkpoint_every: AtomicU64,
    next_lsn: AtomicU64,
    commit_lsn: AtomicU64,
    last_checkpoint: AtomicU64,
    admission: Mutex<Option<Arc<AdmissionControl>>>,
    promotions: AtomicU64,
    reboots: AtomicU64,
    quorum_degraded: AtomicU64,
    full_syncs_needed: AtomicU64,
    tel: Mutex<Telemetry>,
}

impl ReplGroup {
    /// An empty group fronting `path`. `quorum` counts durable copies
    /// including the primary's own log (so `quorum = 2` means "one
    /// backup must hold it before the client sees the ack").
    pub fn new(path: SelfCertifyingPath, clock: SimClock, quorum: usize) -> Arc<Self> {
        assert!(quorum >= 1, "a commit needs at least the primary's copy");
        Arc::new(ReplGroup {
            path,
            transport: Mutex::new(ReplTransport::new(clock.clone())),
            clock,
            members: Mutex::new(Vec::new()),
            primary: AtomicUsize::new(0),
            quorum,
            checkpoint_every: AtomicU64::new(8),
            next_lsn: AtomicU64::new(0),
            commit_lsn: AtomicU64::new(0),
            last_checkpoint: AtomicU64::new(0),
            admission: Mutex::new(None),
            promotions: AtomicU64::new(0),
            reboots: AtomicU64::new(0),
            quorum_degraded: AtomicU64::new(0),
            full_syncs_needed: AtomicU64::new(0),
            tel: Mutex::new(Telemetry::disabled()),
        })
    }

    /// The group's pathname.
    pub fn path(&self) -> &SelfCertifyingPath {
        &self.path
    }

    /// Attaches a tracing sink (`server.repl.*` gauges/counters,
    /// `relay.admission.*` and `relay.route.*` counters).
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone().with_clock(self.clock.clone());
    }

    /// Adds a member over a LAN link. The first member added is the
    /// initial primary. `log` is the member's own durable op log; its
    /// disk should share the group's clock so appends charge time.
    pub fn add_member(self: &Arc<Self>, server: Arc<SfsServer>, log: JournalDisk) -> usize {
        self.add_member_linked(server, log, ReplLink::lan())
    }

    /// [`Self::add_member`] with an explicit primary→backup link.
    pub fn add_member_linked(
        self: &Arc<Self>,
        server: Arc<SfsServer>,
        log: JournalDisk,
        link: ReplLink,
    ) -> usize {
        assert_eq!(
            server.path().dir_name(),
            self.path.dir_name(),
            "member must serve the group's Location:HostID"
        );
        server.set_replicator(Some(self.clone()));
        let mut members = self.members.lock();
        self.transport.lock().add_link(link);
        members.push(Arc::new(ReplMember {
            last_epoch: AtomicU64::new(server.current_epoch()),
            server,
            log,
            durable_lsn: AtomicU64::new(0),
            applied_lsn: AtomicU64::new(0),
            down: AtomicBool::new(false),
            needs_full_sync: AtomicBool::new(false),
        }));
        members.len() - 1
    }

    /// How often (in committed ops) the group applies-and-truncates.
    pub fn set_checkpoint_every(&self, every: u64) {
        self.checkpoint_every.store(every.max(1), Ordering::SeqCst);
    }

    /// Installs (or replaces) cold-start admission control on the
    /// routing path.
    pub fn set_admission(&self, ac: Arc<AdmissionControl>) {
        *self.admission.lock() = Some(ac);
    }

    /// Removes admission control.
    pub fn clear_admission(&self) {
        *self.admission.lock() = None;
    }

    pub fn member_count(&self) -> usize {
        self.members.lock().len()
    }

    /// The index currently serving writes.
    pub fn primary_index(&self) -> usize {
        self.primary.load(Ordering::SeqCst)
    }

    /// Highest client-acked LSN.
    pub fn commit_lsn(&self) -> u64 {
        self.commit_lsn.load(Ordering::SeqCst)
    }

    /// Promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::SeqCst)
    }

    /// Commits acked below the configured quorum (insufficient live
    /// backups; the group preferred availability and said so).
    pub fn quorum_degraded(&self) -> u64 {
        self.quorum_degraded.load(Ordering::SeqCst)
    }

    /// Members that have ever been quarantined pending a full resync.
    pub fn full_syncs_needed(&self) -> u64 {
        self.full_syncs_needed.load(Ordering::SeqCst)
    }

    /// Member `idx`'s server (tests crash it, publish on it, …).
    pub fn member_server(&self, idx: usize) -> Arc<SfsServer> {
        self.members.lock()[idx].server.clone()
    }

    /// Member `idx`'s op log.
    pub fn member_log(&self, idx: usize) -> JournalDisk {
        self.members.lock()[idx].log.clone()
    }

    pub fn member_stats(&self, idx: usize) -> MemberStats {
        let members = self.members.lock();
        let m = &members[idx];
        MemberStats {
            durable_lsn: m.durable_lsn.load(Ordering::SeqCst),
            applied_lsn: m.applied_lsn.load(Ordering::SeqCst),
            down: m.down.load(Ordering::SeqCst),
            needs_full_sync: m.needs_full_sync.load(Ordering::SeqCst),
        }
    }

    /// Takes member `idx` out of rotation (stops receiving frames).
    pub fn mark_down(&self, idx: usize) {
        self.members.lock()[idx].down.store(true, Ordering::SeqCst);
    }

    /// Returns member `idx` to rotation and tries to catch its log up
    /// from the primary's. Returns `false` — and quarantines the member
    /// — when the frames it missed have already been truncated (only a
    /// full state transfer, out of scope for log shipping, can repair
    /// that).
    pub fn mark_up(&self, idx: usize) -> bool {
        let members = self.members.lock();
        members[idx].down.store(false, Ordering::SeqCst);
        self.catch_up_locked(&members, idx)
    }

    fn catch_up_locked(&self, members: &[Arc<ReplMember>], idx: usize) -> bool {
        let tel = self.tel.lock().clone();
        let m = &members[idx];
        if m.needs_full_sync.load(Ordering::SeqCst) {
            return false;
        }
        let durable = m.durable_lsn.load(Ordering::SeqCst);
        let floor = self.last_checkpoint.load(Ordering::SeqCst);
        if durable < floor {
            // The ops it missed are gone from every log.
            m.needs_full_sync.store(true, Ordering::SeqCst);
            self.full_syncs_needed.fetch_add(1, Ordering::SeqCst);
            tel.count("server", "repl.full_sync_needed", 1);
            return false;
        }
        let primary = &members[self.primary.load(Ordering::SeqCst)];
        let mut caught = 0u64;
        for bytes in primary.log.records() {
            if let Ok(ReplRecord::Op(op)) = ReplRecord::from_xdr(&bytes) {
                if op.lsn > m.durable_lsn.load(Ordering::SeqCst) {
                    m.log.append(&bytes);
                    m.durable_lsn.store(op.lsn, Ordering::SeqCst);
                    caught += 1;
                }
            }
        }
        if caught > 0 {
            tel.count("server", "repl.catchup_frames", caught);
        }
        true
    }

    /// Probes the group: observes the primary's boot epoch (promoting if
    /// it died), publishes lag gauges, and summarises member state.
    pub fn health_check(&self) -> ReplHealth {
        let members = self.members.lock();
        self.maybe_promote_locked(&members);
        let tel = self.tel.lock().clone();
        let commit = self.commit_lsn.load(Ordering::SeqCst);
        let primary = self.primary.load(Ordering::SeqCst);
        let mut eligible = 0;
        let mut nfs = 0;
        for (i, m) in members.iter().enumerate() {
            let durable = m.durable_lsn.load(Ordering::SeqCst);
            tel.gauge_set(
                &format!("server/repl{i}"),
                "repl.lag",
                commit.saturating_sub(durable),
            );
            if m.needs_full_sync.load(Ordering::SeqCst) {
                nfs += 1;
            } else if i != primary && !m.down.load(Ordering::SeqCst) {
                eligible += 1;
            }
        }
        tel.gauge_set("server", "repl.commit_lsn", commit);
        tel.gauge_set("server", "repl.primary", primary as u64);
        ReplHealth {
            primary,
            commit_lsn: commit,
            eligible_backups: eligible,
            needs_full_sync: nfs,
            promotions: self.promotions.load(Ordering::SeqCst),
            reboots_observed: self.reboots.load(Ordering::SeqCst),
        }
    }

    /// Applies the committed prefix through `lsn` to every in-rotation
    /// member and truncates all logs down to a checkpoint mark.
    fn checkpoint_locked(&self, members: &[Arc<ReplMember>], lsn: u64) {
        let tel = self.tel.lock().clone();
        let primary = self.primary.load(Ordering::SeqCst);
        for (i, m) in members.iter().enumerate() {
            if m.down.load(Ordering::SeqCst) || m.needs_full_sync.load(Ordering::SeqCst) {
                continue;
            }
            if i != primary {
                self.apply_member_locked(m, lsn);
            }
            // Truncate: keep the checkpoint mark plus any frames beyond it.
            let keep: Vec<Vec<u8>> = std::iter::once(ReplRecord::Checkpoint { lsn }.to_xdr())
                .chain(m.log.records().into_iter().filter(|bytes| {
                    matches!(
                        ReplRecord::from_xdr(bytes),
                        Ok(ReplRecord::Op(ReplOp { lsn: l, .. })) if l > lsn
                    )
                }))
                .collect();
            m.log.replace(&keep);
            m.applied_lsn.fetch_max(lsn, Ordering::SeqCst);
        }
        self.last_checkpoint.store(lsn, Ordering::SeqCst);
        tel.count("server", "repl.checkpoints", 1);
        tel.gauge_set("server", "repl.checkpoint_lsn", lsn);
    }

    /// Replays member `m`'s durable log into its file system, up to and
    /// including `to_lsn` (`u64::MAX` = everything durable). Reads the
    /// log back through the CRC-checked path, charging disk time.
    fn apply_member_locked(&self, m: &ReplMember, to_lsn: u64) {
        let tel = self.tel.lock().clone();
        let outcome = match m.log.replay_checked() {
            Ok(o) => o,
            Err(_) => {
                // Interior log corruption: this member can no longer
                // prove its history; quarantine it.
                m.needs_full_sync.store(true, Ordering::SeqCst);
                self.full_syncs_needed.fetch_add(1, Ordering::SeqCst);
                tel.count("server", "repl.log_corrupt", 1);
                return;
            }
        };
        let mut applied = m.applied_lsn.load(Ordering::SeqCst);
        let mut max_intact_lsn = 0u64;
        for bytes in outcome.records {
            let Ok(ReplRecord::Op(op)) = ReplRecord::from_xdr(&bytes) else {
                continue; // checkpoint/promote marks carry no state
            };
            max_intact_lsn = max_intact_lsn.max(op.lsn);
            if op.lsn <= applied || op.lsn > to_lsn {
                continue;
            }
            let creds = Credentials {
                uid: op.uid,
                gids: op.gids.clone(),
            };
            if let Some(proc) = Proc::from_u32(op.proc) {
                if let Ok(req) = Nfs3Request::decode_args(proc, &op.args) {
                    m.server.apply_logged(&creds, &req);
                }
            }
            applied = op.lsn;
        }
        m.applied_lsn.store(applied, Ordering::SeqCst);
        // A torn tail can only be frames beyond the commit point (a
        // quorum-acked frame was durably appended by construction);
        // truncating it is safe and already done by replay_checked —
        // this member's durable horizon shrinks to its last intact frame.
        if outcome.torn_truncated > 0 {
            m.durable_lsn.store(max_intact_lsn, Ordering::SeqCst);
        }
    }

    /// Observes the primary's boot epoch; on an advance, quarantines the
    /// deposed primary and promotes the most-caught-up eligible backup,
    /// replaying its log before it takes traffic.
    fn maybe_promote_locked(&self, members: &[Arc<ReplMember>]) {
        if members.is_empty() {
            return;
        }
        let tel = self.tel.lock().clone();
        let p = self.primary.load(Ordering::SeqCst);
        let dead = &members[p];
        let epoch = dead.server.current_epoch();
        let last = dead.last_epoch.swap(epoch, Ordering::SeqCst);
        if epoch == last {
            return;
        }
        self.reboots.fetch_add(epoch - last, Ordering::SeqCst);
        tel.count("relay", "repl.primary_crashes", 1);
        // The deposed primary may hold executed-but-never-acked state the
        // group cannot vouch for; quarantine until fully resynced.
        dead.needs_full_sync.store(true, Ordering::SeqCst);
        self.full_syncs_needed.fetch_add(1, Ordering::SeqCst);

        // Most-caught-up eligible backup; lowest index breaks ties so
        // promotion is deterministic.
        let mut candidate: Option<(usize, u64)> = None;
        for (i, m) in members.iter().enumerate() {
            if i == p || m.down.load(Ordering::SeqCst) || m.needs_full_sync.load(Ordering::SeqCst) {
                continue;
            }
            let durable = m.durable_lsn.load(Ordering::SeqCst);
            if candidate.map(|(_, best)| durable > best).unwrap_or(true) {
                candidate = Some((i, durable));
            }
        }
        let Some((c, _)) = candidate else {
            // Nobody to promote: the restarted ex-primary resumes. Its
            // durable store survived the crash (that is what restart
            // means here), so the committed history is intact.
            dead.needs_full_sync.store(false, Ordering::SeqCst);
            tel.count("relay", "repl.primary_resumed", 1);
            return;
        };
        let new = &members[c];
        // Crash-consistent promotion: replay the durable suffix into the
        // backup's file system *before* it admits traffic.
        self.apply_member_locked(new, u64::MAX);
        if new.needs_full_sync.load(Ordering::SeqCst) {
            // Its log turned out to be corrupt; leave the group headless
            // until the next routing attempt finds another candidate (or
            // resumes the restarted primary).
            return;
        }
        let new_epoch = new.server.current_epoch();
        new.log.append(
            &ReplRecord::Promote {
                epoch: new_epoch,
                next_lsn: self.next_lsn.load(Ordering::SeqCst) + 1,
            }
            .to_xdr(),
        );
        new.last_epoch.store(new_epoch, Ordering::SeqCst);
        self.primary.store(c, Ordering::SeqCst);
        self.promotions.fetch_add(1, Ordering::SeqCst);
        tel.count("relay", "repl.promotions", 1);
        tel.gauge_set("server", "repl.primary", c as u64);
    }
}

impl Replicator for ReplGroup {
    /// The acknowledged-commit barrier: append to the primary's log,
    /// ship the identical frame to every live backup, and advance the
    /// clock to the quorum ack before the caller may encode its reply.
    fn replicate(&self, creds: &Credentials, req: &Nfs3Request) {
        let tel = self.tel.lock().clone();
        let members = self.members.lock();
        let p = self.primary.load(Ordering::SeqCst);
        let lsn = self.next_lsn.fetch_add(1, Ordering::SeqCst) + 1;
        let frame = ReplRecord::Op(ReplOp {
            lsn,
            uid: creds.uid,
            gids: creds.gids.clone(),
            proc: req.proc() as u32,
            args: req.encode_args(),
        })
        .to_xdr();
        let primary = &members[p];
        primary.log.append(&frame);
        primary.durable_lsn.store(lsn, Ordering::SeqCst);
        primary.applied_lsn.store(lsn, Ordering::SeqCst);

        let mut acked: Vec<usize> = Vec::new();
        for (i, m) in members.iter().enumerate() {
            if i == p || m.down.load(Ordering::SeqCst) || m.needs_full_sync.load(Ordering::SeqCst) {
                continue;
            }
            m.log.append(&frame);
            m.durable_lsn.store(lsn, Ordering::SeqCst);
            acked.push(i);
        }
        // Degraded mode: with fewer live backups than the quorum wants,
        // commit on what exists rather than blocking the realm — but
        // say so, loudly.
        let needed = self.quorum.saturating_sub(1);
        if acked.len() < needed {
            self.quorum_degraded.fetch_add(1, Ordering::SeqCst);
            tel.count("server", "repl.quorum_degraded", 1);
        }
        let wait = needed.min(acked.len());
        self.transport.lock().ship(frame.len(), &acked, wait);
        self.commit_lsn.store(lsn, Ordering::SeqCst);
        tel.count("server", "repl.quorum_acks", 1);
        tel.count("server", "repl.frames_shipped", acked.len() as u64);
        tel.gauge_set("server", "repl.commit_lsn", lsn);

        if lsn - self.last_checkpoint.load(Ordering::SeqCst)
            >= self.checkpoint_every.load(Ordering::SeqCst)
        {
            self.checkpoint_locked(&members, lsn);
        }
    }
}

impl Router for ReplGroup {
    fn route_rw(&self) -> Option<RoutedRw> {
        match self.route_rw_metered() {
            RwRoute::Routed(r) => Some(r),
            _ => None,
        }
    }

    fn route_rw_metered(&self) -> RwRoute {
        let tel = self.tel.lock().clone();
        let members = self.members.lock();
        if members.is_empty() {
            return RwRoute::Unavailable;
        }
        // Every dial doubles as a health probe of the primary.
        self.maybe_promote_locked(&members);
        if let Some(ac) = self.admission.lock().clone() {
            if !ac.admit(self.clock.now()) {
                tel.count("relay", "admission.throttled", 1);
                return RwRoute::Busy;
            }
            tel.count("relay", "admission.admitted", 1);
        }
        let m = &members[self.primary.load(Ordering::SeqCst)];
        if m.down.load(Ordering::SeqCst) || m.needs_full_sync.load(Ordering::SeqCst) {
            tel.count("relay", "route.rw_unroutable", 1);
            return RwRoute::Unavailable;
        }
        tel.count("relay", "route.rw", 1);
        RwRoute::Routed(RoutedRw {
            conn: m.server.accept(),
            load: Some(m.server.load()),
        })
    }

    fn route_ro(&self) -> Option<RoutedRo> {
        // Members speak the read-only dialect themselves when they have
        // published; round-robin would fight the rolling-republish
        // monotonicity story, so reads ride the primary like writes.
        let routed = self.route_rw()?;
        Some(RoutedRo {
            conn: Box::new(routed.conn),
            load: routed.load,
        })
    }
}

impl std::fmt::Debug for ReplGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplGroup")
            .field("path", &self.path.dir_name())
            .field("members", &self.member_count())
            .field("primary", &self.primary_index())
            .field("commit_lsn", &self.commit_lsn())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_sim::SimClock;

    #[test]
    fn admission_bursts_capacity_then_throttles() {
        let clock = SimClock::new();
        let ac = AdmissionControl::new(3, 10); // 3 burst, 1 token / 100 ms
        for _ in 0..3 {
            assert!(ac.admit(clock.now()));
        }
        assert!(!ac.admit(clock.now()), "bucket exhausted");
        clock.advance_ns(50_000_000); // 50 ms: half a token
        assert!(!ac.admit(clock.now()));
        clock.advance_ns(60_000_000); // 110 ms total: one token
        assert!(ac.admit(clock.now()));
        assert!(!ac.admit(clock.now()));
        assert_eq!(ac.stats(), (4, 3));
    }

    #[test]
    fn admission_refill_caps_at_capacity_and_ignores_clock_skew() {
        let clock = SimClock::new();
        let ac = AdmissionControl::new(2, 1000);
        clock.advance_ns(10_000_000_000); // ages past any refill horizon
        let now = clock.now();
        assert!(ac.admit(now));
        assert!(ac.admit(now));
        assert!(!ac.admit(now), "burst capped at capacity");
        // A skewed caller presenting an older instant mints nothing.
        assert!(!ac.admit(SimTime::from_millis(1)));
    }

    #[test]
    fn admission_is_deterministic() {
        let run = || {
            let clock = SimClock::new();
            let ac = AdmissionControl::new(4, 40);
            let mut out = Vec::new();
            for i in 0..40u64 {
                clock.advance_ns(i * 7_000_000);
                out.push(ac.admit(clock.now()));
            }
            (out, ac.stats())
        };
        assert_eq!(run(), run());
    }
}
