//! The relay realm: a routing tier fronting a replica group for one
//! `Location:HostID`.
//!
//! Self-certifying pathnames (§2) bind a Location to a *key*, not a
//! machine: `HostID = SHA-1("HostInfo", Location, PublicKey, ...)`. Any
//! machine that can complete the protocol for that key is a legitimate
//! server for the pathname, which makes replica groups a natural fit —
//! nothing in the client has to know how many machines stand behind a
//! mount. A [`ReplicaGroup`] exploits exactly that:
//!
//! * **Read-write replicas** share the group's private key and exported
//!   file system (one logical server, many frontends; a replicated
//!   storage layer below them is out of scope here). New connections are
//!   load-balanced round-robin over the live ones, and each dial attaches
//!   the chosen machine's [`sfs_sim::ServerLoad`] so contention is
//!   per-machine, not per-group.
//! * **Read-only replicas** (§2.4) hold no key at all — just the signed
//!   distribution bundle — so the read fan-out tier can run on untrusted
//!   machines.
//! * **Health** is tracked through boot epochs: a crashed-and-restarted
//!   replica bumps its epoch, which both rejects the dead instance's
//!   sessions (forcing the client's transparent reconnect) and shows up
//!   in [`ReplicaGroup::health_check`]. The reconnect redials through the
//!   router, which is the entire handoff mechanism: the surviving replica
//!   is picked, the rekey runs, and the mount above never notices.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use sfs::client::{RoutedRo, RoutedRw, Router};
use sfs::server::{RoReplicaServer, SfsServer};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

pub mod repl;

pub use repl::{AdmissionControl, MemberStats, ReplGroup, ReplHealth};

/// One read-write replica and what the relay knows about it.
struct RwSlot {
    server: Arc<SfsServer>,
    /// Boot epoch observed at the last health check.
    last_epoch: AtomicU64,
    /// Administratively removed from rotation (the relay's own view; a
    /// crashed server needs no marking — its epoch does the work).
    down: AtomicBool,
    /// The last health check caught this replica mid-crash (its epoch
    /// had advanced): round-robin skips it instead of learning the hard
    /// way on a client's dial. Cleared by the next health check that
    /// sees a stable epoch, or by routing absorbing the restart when no
    /// better replica exists.
    stale: AtomicBool,
}

/// A health-check summary of the realm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealmHealth {
    /// Read-write replicas in rotation.
    pub live_rw: usize,
    /// Read-write replicas marked out of rotation.
    pub down_rw: usize,
    /// Reboots observed across all health checks (epoch advances).
    pub reboots_observed: u64,
    /// Read-only replicas currently serving.
    pub live_ro: usize,
    /// Read-only replicas currently refusing service.
    pub down_ro: usize,
}

/// The relay: routes new connections for one `Location:HostID` across a
/// replica group. Registered into an [`sfs::client::SfsNetwork`] via
/// [`SfsNetwork::register_relay`](sfs::client::SfsNetwork::register_relay),
/// after which every dial — first mount or crash-recovery reconnect —
/// resolves through [`Router`].
pub struct ReplicaGroup {
    path: SelfCertifyingPath,
    rw: Mutex<Vec<Arc<RwSlot>>>,
    ro: Mutex<Vec<Arc<RoReplicaServer>>>,
    next_rw: AtomicUsize,
    next_ro: AtomicUsize,
    reboots: AtomicU64,
    skipped_dead: AtomicU64,
    tel: Mutex<Telemetry>,
}

impl ReplicaGroup {
    /// An empty group fronting `path`.
    pub fn new(path: SelfCertifyingPath) -> Arc<Self> {
        Arc::new(ReplicaGroup {
            path,
            rw: Mutex::new(Vec::new()),
            ro: Mutex::new(Vec::new()),
            next_rw: AtomicUsize::new(0),
            next_ro: AtomicUsize::new(0),
            reboots: AtomicU64::new(0),
            skipped_dead: AtomicU64::new(0),
            tel: Mutex::new(Telemetry::disabled()),
        })
    }

    /// The group's pathname.
    pub fn path(&self) -> &SelfCertifyingPath {
        &self.path
    }

    /// Attaches a tracing sink for routing counters and health gauges.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone();
    }

    /// Adds a read-write replica. It must serve the group's exact
    /// pathname — same location, same key — or clients certifying the
    /// HostID would reject it.
    pub fn add_rw(&self, server: Arc<SfsServer>) {
        assert_eq!(
            server.path().dir_name(),
            self.path.dir_name(),
            "replica must serve the group's Location:HostID"
        );
        self.rw.lock().push(Arc::new(RwSlot {
            last_epoch: AtomicU64::new(server.current_epoch()),
            server,
            down: AtomicBool::new(false),
            stale: AtomicBool::new(false),
        }));
    }

    /// Adds a keyless read-only replica serving the group's pathname.
    pub fn add_ro(&self, replica: Arc<RoReplicaServer>) {
        assert_eq!(
            replica.path().dir_name(),
            self.path.dir_name(),
            "read-only replica must serve the group's Location:HostID"
        );
        self.ro.lock().push(replica);
    }

    /// Read-write replicas registered (live or not).
    pub fn rw_count(&self) -> usize {
        self.rw.lock().len()
    }

    /// Read-only replicas registered (live or not).
    pub fn ro_count(&self) -> usize {
        self.ro.lock().len()
    }

    /// Dials routed away from a replica whose last health check showed
    /// a stale/dead epoch.
    pub fn skipped_dead(&self) -> u64 {
        self.skipped_dead.load(Ordering::SeqCst)
    }

    /// Takes read-write replica `idx` out of rotation.
    pub fn mark_down(&self, idx: usize) {
        self.rw.lock()[idx].down.store(true, Ordering::SeqCst);
    }

    /// Returns read-write replica `idx` to rotation.
    pub fn mark_up(&self, idx: usize) {
        self.rw.lock()[idx].down.store(false, Ordering::SeqCst);
    }

    /// Probes every replica and updates the relay's view: each read-write
    /// replica's boot epoch is compared against the last check (an
    /// advance means the machine crashed and restarted — its old sessions
    /// are dead and clients are mid-handoff), and read-only replicas
    /// report whether they serve at all.
    pub fn health_check(&self) -> RealmHealth {
        let tel = self.tel.lock().clone();
        let mut live_rw = 0;
        let mut down_rw = 0;
        for (i, slot) in self.rw.lock().iter().enumerate() {
            let epoch = slot.server.current_epoch();
            let last = slot.last_epoch.swap(epoch, Ordering::SeqCst);
            if epoch > last {
                self.reboots.fetch_add(epoch - last, Ordering::SeqCst);
                tel.count("relay", "health.reboots", epoch - last);
                // Caught mid-crash: keep routing away until a later
                // check sees the epoch hold still.
                slot.stale.store(true, Ordering::SeqCst);
            } else {
                slot.stale.store(false, Ordering::SeqCst);
            }
            tel.gauge_set(&format!("relay/rw{i}"), "health.epoch", epoch);
            if slot.down.load(Ordering::SeqCst) {
                down_rw += 1;
            } else {
                live_rw += 1;
            }
        }
        let mut live_ro = 0;
        let mut down_ro = 0;
        for replica in self.ro.lock().iter() {
            if replica.is_down() {
                down_ro += 1;
            } else {
                live_ro += 1;
            }
        }
        tel.gauge_set("relay", "health.rw_live", live_rw as u64);
        tel.gauge_set("relay", "health.rw_down", down_rw as u64);
        tel.gauge_set("relay", "health.ro_live", live_ro as u64);
        tel.gauge_set("relay", "health.ro_down", down_ro as u64);
        RealmHealth {
            live_rw,
            down_rw,
            reboots_observed: self.reboots.load(Ordering::SeqCst),
            live_ro,
            down_ro,
        }
    }
}

impl Router for ReplicaGroup {
    fn route_rw(&self) -> Option<RoutedRw> {
        let tel = self.tel.lock().clone();
        let slots = self.rw.lock();
        // Round-robin over live replicas, starting where the last dial
        // left off; a fully-down (or empty) group routes nothing.
        // Replicas whose last health check caught a crashed epoch are
        // skipped (and counted) rather than handed to a client to
        // discover; if *every* candidate is in that state — a whole-group
        // crash — routing absorbs one restart rather than going dark.
        let start = self.next_rw.fetch_add(1, Ordering::SeqCst);
        let mut fallback: Option<&Arc<RwSlot>> = None;
        for offset in 0..slots.len() {
            let slot = &slots[(start + offset) % slots.len()];
            if slot.down.load(Ordering::SeqCst) {
                continue;
            }
            if slot.stale.load(Ordering::SeqCst) {
                self.skipped_dead.fetch_add(1, Ordering::SeqCst);
                tel.count("relay", "route.skipped_dead", 1);
                fallback.get_or_insert(slot);
                continue;
            }
            tel.count("relay", "route.rw", 1);
            return Some(RoutedRw {
                conn: slot.server.accept(),
                load: Some(slot.server.load()),
            });
        }
        if let Some(slot) = fallback {
            slot.stale.store(false, Ordering::SeqCst);
            tel.count("relay", "route.rw", 1);
            return Some(RoutedRw {
                conn: slot.server.accept(),
                load: Some(slot.server.load()),
            });
        }
        tel.count("relay", "route.rw_unroutable", 1);
        None
    }

    fn route_ro(&self) -> Option<RoutedRo> {
        let tel = self.tel.lock().clone();
        let replicas = self.ro.lock();
        if !replicas.is_empty() {
            let start = self.next_ro.fetch_add(1, Ordering::SeqCst);
            for offset in 0..replicas.len() {
                let replica = &replicas[(start + offset) % replicas.len()];
                if replica.is_down() {
                    continue;
                }
                tel.count("relay", "route.ro", 1);
                return Some(RoutedRo {
                    conn: Box::new(replica.accept()),
                    load: Some(replica.load()),
                });
            }
            tel.count("relay", "route.ro_unroutable", 1);
        }
        drop(replicas);
        // No keyless replica can serve: fall back to the read-write
        // replicas, which also speak the read-only dialect.
        let routed = self.route_rw()?;
        tel.count("relay", "route.ro_fallback", 1);
        Some(RoutedRo {
            conn: Box::new(routed.conn),
            load: routed.load,
        })
    }
}

impl std::fmt::Debug for ReplicaGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaGroup")
            .field("path", &self.path.dir_name())
            .field("rw", &self.rw_count())
            .field("ro", &self.ro_count())
            .finish()
    }
}
