//! Pins allocations-per-RPC on the steady-state sealed relay loop.
//!
//! Wall-clock perf regressions need a benchmark run to notice;
//! allocation-count regressions are exact and deterministic, so they can
//! gate in an ordinary test. These ceilings track the measured counts
//! down each pass over the hot path: 36/38 allocs per GETATTR/4 KiB
//! READ before the zero-copy work, 11/14 after it, 7/9 after the
//! direct-encode call path and stack-buffer handle decryption. A small
//! cushion absorbs platform differences in collection growth; anything
//! above it means the pooled buffer flow broke somewhere.

use std::sync::Arc;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bench::alloc_count::{count_allocs, CountingAlloc};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{Nfs3Reply, Nfs3Request};
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, Vfs};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const UID: u32 = 1000;
const GETATTR_ALLOC_CEILING: f64 = 9.0;
const READ_ALLOC_CEILING: f64 = 13.0;
const SHARDED_READ_ALLOC_CEILING: f64 = 24.0;

#[test]
fn steady_state_relay_allocations_stay_pinned() {
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let dir = vfs.mkdir_p("/bench").unwrap();
    vfs.setattr(
        &Credentials::root(),
        dir,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            uid: Some(UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = XorShiftSource::new(0x51EE);
    let auth = Arc::new(AuthServer::new(SrpGroup::generate(128, &mut rng), 2));
    let user_key = generate_keypair(512, &mut rng);
    auth.register_user(UserRecord {
        user: "bench".into(),
        uid: UID,
        gids: vec![100],
        public_key: user_key.public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("server.allocs"),
        generate_keypair(768, &mut rng),
        vfs,
        auth,
        SfsPrg::from_entropy(b"alloc-regression-server"),
    );
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::new(net, b"alloc-regression-client");
    client.agent(UID).lock().add_key(user_key);

    let path = server.path();
    let mount = client.mount(UID, path).expect("mount");
    let file = format!("{}/bench/data", path.full_path());
    client
        .write_file(UID, &file, &vec![0xCDu8; 4096])
        .expect("write");
    let (_, fh, _) = client.resolve(UID, &file).expect("resolve");
    client.set_caching(false); // every measured op must cross the wire

    // Warm the pools, the connection, and any lazy collection growth.
    for _ in 0..8 {
        client.getattr(&mount, UID, &fh).unwrap();
    }

    const ITERS: u64 = 32;
    let (_, getattr_allocs) = count_allocs(|| {
        for _ in 0..ITERS {
            client.getattr(&mount, UID, &fh).unwrap();
        }
    });
    let per_getattr = getattr_allocs as f64 / ITERS as f64;
    assert!(
        per_getattr <= GETATTR_ALLOC_CEILING,
        "GETATTR now costs {per_getattr:.2} allocs/RPC (ceiling {GETATTR_ALLOC_CEILING}); \
         the pooled hot path has regressed"
    );

    let read = Nfs3Request::Read {
        fh: fh.clone(),
        offset: 0,
        count: 4096,
    };
    for _ in 0..4 {
        client.call_nfs(&mount, UID, &read).unwrap();
    }
    let (_, read_allocs) = count_allocs(|| {
        for _ in 0..ITERS {
            match client.call_nfs(&mount, UID, &read).unwrap() {
                Nfs3Reply::Read { data, .. } => assert_eq!(data.len(), 4096),
                other => panic!("unexpected reply {other:?}"),
            }
        }
    });
    let per_read = read_allocs as f64 / ITERS as f64;
    assert!(
        per_read <= READ_ALLOC_CEILING,
        "4 KiB READ now costs {per_read:.2} allocs/RPC (ceiling {READ_ALLOC_CEILING}); \
         the pooled hot path has regressed"
    );
}

#[test]
fn sharded_windowed_allocations_stay_pinned() {
    // The multi-core dispatch path: windowed batches through a 4-core
    // `ShardEngine`. Per-RPC the windowed engine legitimately costs more
    // than the blocking loop (sealed frames are kept for retransmission,
    // the reorder buffer and reply cache bookkeep per frame), but the
    // engine itself must stay allocation-lean — measured 25.4 allocs per
    // windowed 4 KiB READ with the engine installed, so the ceiling
    // pins the whole sharded steady state with a small cushion.
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let dir = vfs.mkdir_p("/bench").unwrap();
    vfs.setattr(
        &Credentials::root(),
        dir,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            uid: Some(UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = XorShiftSource::new(0x51EF);
    let auth = Arc::new(AuthServer::new(SrpGroup::generate(128, &mut rng), 2));
    let user_key = generate_keypair(512, &mut rng);
    auth.register_user(UserRecord {
        user: "bench".into(),
        uid: UID,
        gids: vec![100],
        public_key: user_key.public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("server.shardallocs"),
        generate_keypair(768, &mut rng),
        vfs,
        auth,
        SfsPrg::from_entropy(b"alloc-regression-shard-server"),
    );
    server.set_cores(4);
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::new(net, b"alloc-regression-shard-client");
    client.agent(UID).lock().add_key(user_key);

    let path = server.path();
    let mount = client.mount(UID, path).expect("mount");
    let file = format!("{}/bench/data", path.full_path());
    client
        .write_file(UID, &file, &vec![0xCDu8; 8 * 4096])
        .expect("write");
    let (_, fh, _) = client.resolve(UID, &file).expect("resolve");
    client.set_caching(false);
    client.set_pipeline_window(8);

    const BATCH: usize = 8;
    let reqs: Vec<Nfs3Request> = (0..BATCH)
        .map(|i| Nfs3Request::Read {
            fh: fh.clone(),
            offset: (i * 4096) as u64,
            count: 4096,
        })
        .collect();
    // Warm pools, sequencer capacity, and the engine's calendars.
    for _ in 0..4 {
        client.call_nfs_window(&mount, UID, &reqs).unwrap();
    }

    const ITERS: u64 = 16;
    let (_, allocs) = count_allocs(|| {
        for _ in 0..ITERS {
            for reply in client.call_nfs_window(&mount, UID, &reqs).unwrap() {
                match reply {
                    Nfs3Reply::Read { data, .. } => assert_eq!(data.len(), 4096),
                    other => panic!("unexpected reply {other:?}"),
                }
            }
        }
    });
    let engine = server.shard_engine().expect("engine installed");
    assert!(
        engine.frames_scheduled() > 0,
        "the windowed batches never went through the shard engine"
    );
    let per_rpc = allocs as f64 / (ITERS * BATCH as u64) as f64;
    assert!(
        per_rpc <= SHARDED_READ_ALLOC_CEILING,
        "sharded windowed 4 KiB READ now costs {per_rpc:.2} allocs/RPC \
         (ceiling {SHARDED_READ_ALLOC_CEILING}); the multi-core hot path has regressed"
    );
}
