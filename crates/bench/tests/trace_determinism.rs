//! The telemetry subsystem's two core promises, checked end to end over
//! the full SFS stack (client, agent, secure channel, server, NFS3
//! engine, wire, disk):
//!
//! 1. **Determinism** — two identical virtual-time runs produce
//!    byte-identical Chrome trace output.
//! 2. **Zero perturbation** — tracing never advances the virtual clock,
//!    so results with tracing on and off are identical.

use sfs_bench::calib::{build_fs, build_fs_traced, System};
use sfs_bench::workloads::{mab, total, MabConfig};
use sfs_telemetry::{Telemetry, ZeroClock};

fn small_mab() -> MabConfig {
    MabConfig {
        dirs: 4,
        files: 12,
        mean_file_size: 2000,
        compile_cpu_ns: 1_000_000,
        stat_passes: 2,
    }
}

/// One traced MAB run over the full SFS stack; returns the final virtual
/// time and the rendered trace.
fn traced_run(system: System) -> (u64, String) {
    let tel = Telemetry::recording(ZeroClock);
    let (fs, clock, prefix, _) = build_fs_traced(system, &tel);
    mab(fs.as_ref(), &prefix, &small_mab());
    (clock.now().as_nanos(), tel.chrome_trace())
}

#[test]
fn identical_runs_give_byte_identical_traces() {
    let (t1, trace1) = traced_run(System::Sfs);
    let (t2, trace2) = traced_run(System::Sfs);
    assert_eq!(t1, t2, "virtual times diverged");
    assert_eq!(trace1, trace2, "traces diverged");
    // And the trace is not trivially empty: it must contain spans or
    // counters from all four corners of the stack.
    for needle in [
        "sim.net",
        "sim.disk",
        "nfs3",
        "channel.msgs_sealed",
        "cache.",
    ] {
        assert!(trace1.contains(needle), "trace missing {needle}");
    }
}

#[test]
fn tracing_does_not_perturb_virtual_time() {
    for system in [System::NfsUdp, System::Sfs] {
        let (fs, clock, prefix, _) = build_fs(system);
        let untraced = total(&mab(fs.as_ref(), &prefix, &small_mab()));
        let _ = (fs, clock);

        let (traced_ns, _) = traced_run(system);
        // The traced run's end time includes exactly the same charges.
        let (fs2, clock2, prefix2, _) = build_fs(system);
        mab(fs2.as_ref(), &prefix2, &small_mab());
        assert_eq!(
            clock2.now().as_nanos(),
            traced_ns,
            "{system:?}: tracing perturbed the clock"
        );
        assert!(untraced.as_nanos() > 0);
    }
}
