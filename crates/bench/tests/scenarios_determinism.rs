//! Rerun-determinism for every built-in scenario: the same seed must
//! reproduce the op log, the final virtual clock, and the latency
//! table byte-for-byte — fault-free and under a seeded fault plan —
//! and a recorded trace must replay to byte-identical text.
//!
//! These run in debug mode under the tier-1 suite, so each mix is
//! shrunk to a few dozen ops; determinism is scale-free.

use sfs_bench::args::{FaultOpt, ScenarioSpec};
use sfs_bench::scenario::{
    builtin_mixes, encode_trace, run_mix, run_storm, TraceSink, STORM_NAMES,
};
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::{Telemetry, ZeroClock};
use std::sync::Arc;

/// Shrinks a built-in mix to debug-test scale without changing its
/// character (seed, dir shape, and op mix stay).
fn tiny(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.clients = spec.clients.min(2);
    spec.files = spec.files.min(8);
    spec.file_bytes = spec.file_bytes.min(1024);
    spec.io_bytes = spec.io_bytes.min(512);
    spec.ops = spec.ops.min(40);
    spec.cpu_ns = spec.cpu_ns.min(100_000);
    spec
}

/// Runs a mix with fresh telemetry (and a fresh fault plan from
/// `fault_spec`) and returns every observable byte.
fn observe_mix(
    name: &str,
    spec: &ScenarioSpec,
    fault_spec: Option<&str>,
) -> (Vec<String>, u64, String) {
    let faults = FaultOpt::with_spec(fault_spec.map(String::from)).unwrap();
    let tel = Telemetry::recording(ZeroClock);
    let out = run_mix(name, spec, &tel, faults.plan(), None);
    (out.op_log, out.final_ns, tel.histograms_json())
}

#[test]
fn builtin_mixes_are_rerun_deterministic() {
    for (name, spec) in builtin_mixes() {
        let spec = tiny(spec);
        let a = observe_mix(name, &spec, None);
        let b = observe_mix(name, &spec, None);
        assert_eq!(a.0, b.0, "{name}: op logs diverged");
        assert_eq!(a.1, b.1, "{name}: final clocks diverged");
        assert_eq!(a.2, b.2, "{name}: latency tables diverged");
    }
}

#[test]
fn builtin_mixes_are_deterministic_under_faults() {
    let fault_spec = "seed=9,drop=15,delay=25,delay_ns=500us";
    for (name, spec) in builtin_mixes() {
        let spec = tiny(spec);
        let a = observe_mix(name, &spec, Some(fault_spec));
        let b = observe_mix(name, &spec, Some(fault_spec));
        assert_eq!(a.0, b.0, "{name}: op logs diverged under faults");
        assert_eq!(a.1, b.1, "{name}: final clocks diverged under faults");
        assert_eq!(a.2, b.2, "{name}: latency tables diverged under faults");
    }
}

#[test]
fn storms_are_rerun_deterministic() {
    for name in STORM_NAMES {
        let run = || {
            let tel = Telemetry::recording(ZeroClock);
            let out = run_storm(name, &tel, None, true).expect("built-in storm");
            (
                out.op_log,
                out.final_ns,
                out.oracle_checks,
                tel.histograms_json(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{name}: storm runs diverged");
        assert!(a.2 > 0, "{name}: the oracle never ran");
    }
}

#[test]
fn recorded_traces_are_byte_identical_across_runs() {
    let (name, spec) = &builtin_mixes()[0];
    let mut spec = tiny(spec.clone());
    spec.clients = 1; // one client gives one totally ordered stream
    spec.ops = 25;
    let record = || {
        let tel = Telemetry::recording(ZeroClock);
        let sink: TraceSink = Arc::new(Mutex::new(Vec::new()));
        run_mix(name, &spec, &tel, None, Some(&sink));
        let ops = sink.lock();
        encode_trace(&ops)
    };
    let a = record();
    let b = record();
    assert!(!a.is_empty(), "trace recorded nothing");
    assert_eq!(a, b, "recorded traces diverged between identical runs");
}
