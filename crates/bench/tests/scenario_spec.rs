//! Property tests for the scenario-spec grammar: `encode` is the
//! canonical form and `parse` inverts it exactly, for the built-ins and
//! for a thousand seeded random specs; malformed specs are rejected
//! with errors that name the offending key or entry.

use sfs_bench::args::{ScenarioOp, ScenarioSpec, MAX_SCENARIO_CLIENTS};
use sfs_bench::scenario::builtin_mixes;
use sfs_bignum::{RandomSource, XorShiftSource};

fn next_u64(src: &mut XorShiftSource) -> u64 {
    let mut b = [0u8; 8];
    src.fill(&mut b);
    u64::from_le_bytes(b)
}

/// A random *valid* spec: every field within the validated ranges, a
/// non-empty duplicate-free mix with positive weights.
fn random_spec(src: &mut XorShiftSource) -> ScenarioSpec {
    let mut ops: Vec<ScenarioOp> = ScenarioOp::ALL.to_vec();
    // Seeded shuffle, then take a non-empty prefix as the mix.
    for i in (1..ops.len()).rev() {
        ops.swap(i, (next_u64(src) % (i as u64 + 1)) as usize);
    }
    let take = 1 + (next_u64(src) % ops.len() as u64) as usize;
    let mix = ops
        .into_iter()
        .take(take)
        .map(|op| (op, 1 + (next_u64(src) % 99) as u32))
        .collect();
    ScenarioSpec {
        seed: next_u64(src),
        clients: 1 + (next_u64(src) % MAX_SCENARIO_CLIENTS as u64) as usize,
        dirs: 1 + (next_u64(src) % 32) as usize,
        files: 2 + (next_u64(src) % 100) as usize,
        file_bytes: 1 + (next_u64(src) % 100_000) as usize,
        io_bytes: 1 + (next_u64(src) % 50_000) as usize,
        ops: 1 + (next_u64(src) % 10_000) as usize,
        cpu_ns: next_u64(src) % 10_000_000_000,
        mix,
    }
}

#[test]
fn builtin_specs_round_trip() {
    for (name, spec) in builtin_mixes() {
        let reparsed = ScenarioSpec::parse(&spec.encode())
            .unwrap_or_else(|e| panic!("built-in {name} failed to re-parse: {e}"));
        assert_eq!(reparsed, spec, "built-in {name} did not round-trip");
    }
}

#[test]
fn random_valid_specs_round_trip() {
    let mut src = XorShiftSource::new(0x57EC_F022);
    for i in 0..1000 {
        let spec = random_spec(&mut src);
        let text = spec.encode();
        let reparsed = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("fuzz case {i} ({text}) failed to parse: {e}"));
        assert_eq!(reparsed, spec, "fuzz case {i} ({text}) did not round-trip");
        // Canonical form is a fixed point: encode(parse(encode(s))) == encode(s).
        assert_eq!(
            reparsed.encode(),
            text,
            "fuzz case {i} encode not canonical"
        );
    }
}

#[test]
fn malformed_specs_are_rejected_with_actionable_errors() {
    // (spec, substring every error must contain so the user can see
    // which entry to fix)
    let cases: &[(&str, &str)] = &[
        ("garbage", "key=value"),
        ("sed=7,mix=read:1", "unknown scenario spec key"),
        ("sed=7,mix=read:1", "sed"),
        ("seed=x,mix=read:1", "not a non-negative integer"),
        ("clients=0,mix=read:1", "at least one client"),
        ("clients=65,mix=read:1", "exceeds the maximum"),
        ("dirs=0,mix=read:1", "at least one directory"),
        ("files=1,mix=read:1", "at least 2 file slots"),
        ("file_bytes=0,mix=read:1", "at least 1"),
        ("io_bytes=0,mix=read:1", "at least 1"),
        ("ops=0,mix=read:1", "nothing after setup"),
        ("seed=7", "needs a mix="),
        ("mix=read", "op:weight"),
        ("mix=frobnicate:5", "unknown mix op"),
        ("mix=read:x", "not an integer"),
        ("mix=read:0", "must be positive"),
        ("mix=read:1+read:2", "twice"),
        ("cpu_ns=2x,mix=read:1", "optional ns/us/ms/s"),
        ("mix=read:200000", "above the 100000 cap"),
    ];
    for (spec, needle) in cases {
        let err = ScenarioSpec::parse(spec).map(|_| ()).unwrap_err();
        assert!(
            err.contains(needle),
            "error for {spec:?} must mention {needle:?}, got: {err}"
        );
    }
}

#[test]
fn duration_suffixes_parse_into_nanoseconds() {
    for (text, ns) in [
        ("cpu_ns=5,mix=read:1", 5u64),
        ("cpu_ns=5ns,mix=read:1", 5),
        ("cpu_ns=5us,mix=read:1", 5_000),
        ("cpu_ns=5ms,mix=read:1", 5_000_000),
        ("cpu_ns=5s,mix=read:1", 5_000_000_000),
    ] {
        assert_eq!(ScenarioSpec::parse(text).unwrap().cpu_ns, ns, "{text}");
    }
}
