//! A counting global allocator for allocation-per-operation baselines.
//!
//! The zero-copy hot path's whole point is that steady-state RPC traffic
//! stops hitting the allocator; wall-clock timings are too noisy to
//! prove that, but allocation *counts* are exact and deterministic. A
//! binary or test opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sfs_bench::alloc_count::CountingAlloc = CountingAlloc;
//! ```
//!
//! and then brackets the measured region with [`count_allocs`]. The
//! counter is thread-local, so a single-threaded measured loop is not
//! polluted by other threads. Only `alloc` and `realloc` count — frees
//! are not the scarce resource, and a `realloc` that grows in place
//! still paid the allocator round trip.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // const-init so reading the counter inside the allocator itself
    // never triggers a lazily-initialised (allocating) TLS path.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Pass-through wrapper over the system allocator that counts
/// `alloc`/`realloc` calls per thread.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations on this thread since it started (monotonic; only
/// meaningful when [`CountingAlloc`] is installed as the global
/// allocator).
pub fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Runs `f` and returns its result plus the number of allocations it
/// performed on this thread.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    let after = allocations();
    (out, after - before)
}
