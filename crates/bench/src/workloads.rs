//! The paper's workloads (§4.2–§4.4).

use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_sim::SimTime;

use crate::kernel::FsBench;

/// One timed phase of a benchmark.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name as it appears in the figure.
    pub name: String,
    /// Elapsed virtual time.
    pub time: SimTime,
}

/// Joins a prefix and a relative path.
fn join(prefix: &str, rel: &str) -> String {
    if prefix.is_empty() {
        rel.to_string()
    } else {
        format!("{prefix}/{rel}")
    }
}

fn timed<T>(fs: &dyn FsBench, f: impl FnOnce() -> T) -> (T, SimTime) {
    let start = fs.clock().now();
    let out = f();
    (out, fs.clock().now().since(start))
}

// ------------------------------------------------------------- Figure 5

/// Micro-benchmark: mean latency of an operation that always requires a
/// server round trip (unauthorized `fchown`), in microseconds.
pub fn micro_latency(fs: &dyn FsBench, prefix: &str) -> f64 {
    let path = join(prefix, "latency-probe");
    fs.create(&path).expect("create probe");
    fs.write(&path, 0, b"x").expect("seed probe");
    // Warm name caches and the connection.
    for _ in 0..5 {
        fs.chown_fail(&path).expect("warm");
    }
    let iters = 1_000;
    let (_, dt) = timed(fs, || {
        for _ in 0..iters {
            fs.chown_fail(&path).expect("chown");
        }
    });
    dt.as_nanos() as f64 / iters as f64 / 1_000.0
}

/// Micro-benchmark: sequential read throughput in MB/s over a large file
/// that lives in the server's buffer cache (the paper reads a *sparse*
/// 1,000 MB file so the disk is never touched; we use a smaller warm file
/// — throughput is steady-state either way).
pub fn micro_throughput(fs: &dyn FsBench, prefix: &str) -> f64 {
    const CHUNK: usize = 8192;
    const TOTAL: usize = 48 * 1024 * 1024;
    let path = join(prefix, "bigfile");
    fs.create(&path).expect("create big");
    // Build server-side content in large strides.
    let block = vec![0u8; 1024 * 1024];
    for i in 0..TOTAL / block.len() {
        fs.write(&path, (i * block.len()) as u64, &block)
            .expect("fill");
    }
    fs.flush(&path).expect("flush");
    fs.drop_caches();
    fs.open(&path).expect("open");
    let (_, dt) = timed(fs, || {
        let mut off = 0u64;
        while off < TOTAL as u64 {
            let data = fs.read(&path, off, CHUNK).expect("read");
            assert!(!data.is_empty());
            off += data.len() as u64;
        }
    });
    TOTAL as f64 / 1_000_000.0 / dt.as_secs_f64()
}

// ------------------------------------------------------------- Figure 6

/// Parameters for the Modified Andrew Benchmark.
pub struct MabConfig {
    /// Number of directories phase 1 creates.
    pub dirs: usize,
    /// Number of source files.
    pub files: usize,
    /// Bytes per file (varied ±50% deterministically).
    pub mean_file_size: usize,
    /// CPU time to compile one file, ns.
    pub compile_cpu_ns: u64,
    /// `stat` passes over the tree in the attributes phase.
    pub stat_passes: usize,
}

impl Default for MabConfig {
    fn default() -> Self {
        MabConfig {
            dirs: 20,
            files: 70,
            mean_file_size: 6_000,
            compile_cpu_ns: 48_000_000,
            stat_passes: 4,
        }
    }
}

/// The Modified Andrew Benchmark (§4.3): mkdir, copy, attributes, search,
/// compile.
pub fn mab(fs: &dyn FsBench, prefix: &str, cfg: &MabConfig) -> Vec<Phase> {
    let mut phases = Vec::new();
    let file_path = |i: usize| join(prefix, &format!("d{}/f{}.c", i % cfg.dirs, i));

    // Phase 1: directories.
    let (_, t) = timed(fs, || {
        for d in 0..cfg.dirs {
            fs.mkdir(&join(prefix, &format!("d{d}"))).expect("mkdir");
        }
    });
    phases.push(Phase {
        name: "directories".into(),
        time: t,
    });

    // Phase 2: copy the source tree in.
    let sizes: Vec<usize> = (0..cfg.files)
        .map(|i| cfg.mean_file_size / 2 + (i * 997) % cfg.mean_file_size)
        .collect();
    let (_, t) = timed(fs, || {
        for (i, &size) in sizes.iter().enumerate() {
            let p = file_path(i);
            fs.create(&p).expect("create");
            fs.write(&p, 0, &vec![b'x'; size]).expect("write");
        }
    });
    phases.push(Phase {
        name: "copy".into(),
        time: t,
    });

    // Phase 3: attributes (find + ls -lR passes). Fresh process ⇒ fresh
    // opens, but attribute caches persist in the kernel/client.
    let (_, t) = timed(fs, || {
        for _ in 0..cfg.stat_passes {
            for i in 0..cfg.files {
                fs.stat(&file_path(i)).expect("stat");
            }
        }
    });
    phases.push(Phase {
        name: "attributes".into(),
        time: t,
    });

    // Phase 4: search (grep through every file; data comes through the
    // page cache after the first pass, but each file is opened).
    let (_, t) = timed(fs, || {
        for i in 0..cfg.files {
            let p = file_path(i);
            fs.open(&p).expect("open");
            let mut off = 0u64;
            loop {
                let data = fs.read(&p, off, 8192).expect("read");
                if data.is_empty() {
                    break;
                }
                off += data.len() as u64;
                if data.len() < 8192 {
                    break;
                }
            }
        }
    });
    phases.push(Phase {
        name: "search".into(),
        time: t,
    });

    // Phase 5: compile — open+read each source, burn CPU, write the
    // object, then a link pass over all objects.
    let (_, t) = timed(fs, || {
        for (i, &size) in sizes.iter().enumerate() {
            let p = file_path(i);
            fs.open(&p).expect("open src");
            fs.read(&p, 0, size).expect("read src");
            fs.cpu_burn(cfg.compile_cpu_ns);
            let obj = join(prefix, &format!("d{}/f{}.o", i % cfg.dirs, i));
            fs.create(&obj).expect("create obj");
            fs.write(&obj, 0, &vec![0u8; size * 3 / 2])
                .expect("write obj");
        }
        // Link.
        let out = join(prefix, "a.out");
        fs.create(&out).expect("create a.out");
        let mut pos = 0u64;
        for i in 0..cfg.files {
            let obj = join(prefix, &format!("d{}/f{}.o", i % cfg.dirs, i));
            fs.open(&obj).expect("open obj");
            let data = fs.read(&obj, 0, usize::MAX / 2).expect("read obj");
            fs.write(&out, pos, &data).expect("write a.out");
            pos += data.len() as u64;
        }
        fs.flush(&out).expect("flush");
    });
    phases.push(Phase {
        name: "compile".into(),
        time: t,
    });

    phases
}

/// Total of a phase list.
pub fn total(phases: &[Phase]) -> SimTime {
    SimTime(phases.iter().map(|p| p.time.as_nanos()).sum())
}

// ------------------------------------------------------------- Figure 7

/// Parameters for the GENERIC FreeBSD kernel build.
pub struct KernelBuildConfig {
    /// Compilation units.
    pub units: usize,
    /// Shared headers.
    pub headers: usize,
    /// Header-open attempts per unit (close-to-open revalidations in
    /// NFS; lease hits in SFS).
    pub header_opens: usize,
    /// Failed include-path probes per unit (negative lookups; RPCs
    /// everywhere).
    pub probe_misses: usize,
    /// Headers actually read per unit.
    pub header_reads: usize,
    /// CPU per unit, ns.
    pub compile_cpu_ns: u64,
}

impl Default for KernelBuildConfig {
    fn default() -> Self {
        KernelBuildConfig {
            units: 1500,
            headers: 300,
            header_opens: 76,
            probe_misses: 30,
            header_reads: 4,
            compile_cpu_ns: 88_000_000,
        }
    }
}

/// Compiling the GENERIC FreeBSD 3.3 kernel (§4.3, Figure 7). Returns the
/// elapsed virtual time.
pub fn kernel_build(fs: &dyn FsBench, prefix: &str, cfg: &KernelBuildConfig) -> SimTime {
    // Set up the tree: sources and headers.
    fs.mkdir(&join(prefix, "src")).expect("mkdir src");
    fs.mkdir(&join(prefix, "sys")).expect("mkdir sys");
    fs.mkdir(&join(prefix, "obj")).expect("mkdir obj");
    for h in 0..cfg.headers {
        let p = join(prefix, &format!("sys/h{h}.h"));
        fs.create(&p).expect("create hdr");
        fs.write(&p, 0, &vec![b'h'; 2048]).expect("write hdr");
    }
    for u in 0..cfg.units {
        let p = join(prefix, &format!("src/u{u}.c"));
        fs.create(&p).expect("create src");
        fs.write(&p, 0, &vec![b'c'; 6144]).expect("write src");
    }
    fs.drop_caches();

    let mut rng = XorShiftSource::new(0xC04F11E);
    let (_, t) = timed(fs, || {
        for u in 0..cfg.units {
            let src = join(prefix, &format!("src/u{u}.c"));
            fs.open(&src).expect("open src");
            fs.read(&src, 0, 6144).expect("read src");
            // Include-path probes that miss (the compiler searching -I
            // dirs): negative lookups are not cached by anyone.
            for p in 0..cfg.probe_misses {
                let ghost = join(prefix, &format!("src/missing-{u}-{p}.h"));
                let _ = fs.stat(&ghost); // ENOENT expected
            }
            // Header opens: close-to-open revalidation vs leases.
            let mut buf = [0u8; 4];
            for _ in 0..cfg.header_opens {
                rng.fill(&mut buf);
                let h = u32::from_be_bytes(buf) as usize % cfg.headers;
                let hp = join(prefix, &format!("sys/h{h}.h"));
                fs.open(&hp).expect("open hdr");
            }
            for r in 0..cfg.header_reads {
                let hp = join(prefix, &format!("sys/h{}.h", (u + r) % cfg.headers));
                fs.read(&hp, 0, 2048).expect("read hdr");
            }
            fs.cpu_burn(cfg.compile_cpu_ns);
            let obj = join(prefix, &format!("obj/u{u}.o"));
            fs.create(&obj).expect("create obj");
            fs.write(&obj, 0, &vec![0u8; 16384]).expect("write obj");
        }
    });
    t
}

// ------------------------------------------------------------- Figure 8

/// The Sprite LFS small-file benchmark (§4.4): create, read, and unlink
/// 1,000 1 KB files.
pub fn lfs_small(fs: &dyn FsBench, prefix: &str, n: usize) -> Vec<Phase> {
    let mut phases = Vec::new();
    let data = vec![b's'; 1024];
    fs.mkdir(&join(prefix, "small")).expect("mkdir");

    let (_, t) = timed(fs, || {
        for i in 0..n {
            let p = join(prefix, &format!("small/f{i}"));
            fs.create(&p).expect("create");
            fs.write(&p, 0, &data).expect("write");
            fs.stat(&p).expect("close-stat");
        }
    });
    phases.push(Phase {
        name: "create".into(),
        time: t,
    });

    // Fresh process: caches dropped, every file opened cold.
    fs.drop_caches();
    let (_, t) = timed(fs, || {
        for i in 0..n {
            let p = join(prefix, &format!("small/f{i}"));
            fs.open(&p).expect("open");
            fs.read(&p, 0, 1024).expect("read");
        }
    });
    phases.push(Phase {
        name: "read".into(),
        time: t,
    });

    let (_, t) = timed(fs, || {
        for i in 0..n {
            let p = join(prefix, &format!("small/f{i}"));
            fs.unlink(&p).expect("unlink");
        }
    });
    phases.push(Phase {
        name: "unlink".into(),
        time: t,
    });

    phases
}

// ------------------------------------------------------------- Figure 9

/// The Sprite LFS large-file benchmark (§4.4): write/read a 40,000 KB
/// file sequentially and randomly in 8 KB chunks, flushing at the end of
/// each write phase.
pub fn lfs_large(fs: &dyn FsBench, prefix: &str) -> Vec<Phase> {
    const CHUNK: usize = 8192;
    const TOTAL: usize = 40_000 * 1024;
    let n_chunks = TOTAL / CHUNK;
    let path = join(prefix, "large");
    let data = vec![b'L'; CHUNK];
    let mut phases = Vec::new();
    let mut rng = XorShiftSource::new(0x1F5);

    // Sequential write.
    fs.create(&path).expect("create");
    let (_, t) = timed(fs, || {
        for i in 0..n_chunks {
            fs.write(&path, (i * CHUNK) as u64, &data).expect("w");
        }
        fs.flush(&path).expect("flush");
    });
    phases.push(Phase {
        name: "seq write".into(),
        time: t,
    });

    // Sequential read (server cache warm; client page cache bypassed for
    // a file this large).
    fs.drop_caches();
    fs.open(&path).expect("open");
    let (_, t) = timed(fs, || {
        for i in 0..n_chunks {
            fs.read(&path, (i * CHUNK) as u64, CHUNK).expect("r");
        }
    });
    phases.push(Phase {
        name: "seq read".into(),
        time: t,
    });

    // Random write.
    let mut buf = [0u8; 4];
    let (_, t) = timed(fs, || {
        for _ in 0..n_chunks {
            rng.fill(&mut buf);
            let block = u32::from_be_bytes(buf) as usize % n_chunks;
            fs.write(&path, (block * CHUNK) as u64, &data).expect("w");
        }
        fs.flush(&path).expect("flush");
    });
    phases.push(Phase {
        name: "rand write".into(),
        time: t,
    });

    // Random read.
    let (_, t) = timed(fs, || {
        for _ in 0..n_chunks {
            rng.fill(&mut buf);
            let block = u32::from_be_bytes(buf) as usize % n_chunks;
            fs.read(&path, (block * CHUNK) as u64, CHUNK).expect("r");
        }
    });
    phases.push(Phase {
        name: "rand read".into(),
        time: t,
    });

    // Sequential read again.
    let (_, t) = timed(fs, || {
        for i in 0..n_chunks {
            fs.read(&path, (i * CHUNK) as u64, CHUNK).expect("r");
        }
    });
    phases.push(Phase {
        name: "seq read 2".into(),
        time: t,
    });

    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{build_fs, System};

    #[test]
    fn mab_produces_five_phases_in_order() {
        let (fs, _clock, prefix, _) = build_fs(System::Local);
        let cfg = MabConfig {
            files: 8,
            dirs: 4,
            compile_cpu_ns: 1_000_000,
            ..Default::default()
        };
        let phases = mab(fs.as_ref(), &prefix, &cfg);
        let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["directories", "copy", "attributes", "search", "compile"]
        );
        assert!(total(&phases).as_nanos() > 0);
    }

    #[test]
    fn lfs_small_phases_scale_with_file_count() {
        let (fs, _clock, prefix, _) = build_fs(System::Local);
        let a = lfs_small(fs.as_ref(), &prefix, 10);
        assert_eq!(a.len(), 3);
        // Create and unlink are disk-bound: 10 files cost something.
        assert!(a[0].time.as_nanos() > 0);
        assert!(a[2].time.as_nanos() > 0);
    }

    #[test]
    fn micro_latency_is_positive_and_stable() {
        let (fs, _clock, prefix, _) = build_fs(System::NfsUdp);
        let lat = micro_latency(fs.as_ref(), &prefix);
        assert!(lat > 50.0 && lat < 2_000.0, "latency {lat} µs out of range");
    }

    #[test]
    fn nfs_rpc_counts_exceed_local() {
        let (nfs, _c1, p1, _) = build_fs(System::NfsUdp);
        let cfg = MabConfig {
            files: 6,
            dirs: 3,
            compile_cpu_ns: 1_000_000,
            ..Default::default()
        };
        mab(nfs.as_ref(), &p1, &cfg);
        assert!(nfs.rpcs() > 20, "NFS must issue wire RPCs");
        let (local, _c2, p2, _) = build_fs(System::Local);
        mab(local.as_ref(), &p2, &cfg);
        assert_eq!(local.rpcs(), 0);
    }

    #[test]
    fn sfs_caching_cuts_rpcs_on_repeated_stats() {
        let (fs, _clock, prefix, _) = build_fs(System::Sfs);
        let p = format!("{prefix}/statme")
            .trim_start_matches('/')
            .to_string();
        fs.create(&p).unwrap();
        fs.write(&p, 0, b"x").unwrap();
        // Drain the write-behind queue so the flush RPC is not charged
        // to the first stat.
        fs.flush(&p).unwrap();
        let before = fs.rpcs();
        for _ in 0..20 {
            fs.stat(&p).unwrap();
        }
        assert!(fs.rpcs() - before <= 1, "leased stats must stay local");
        let (fs, _clock, prefix, _) = build_fs(System::SfsNoCache);
        let p = format!("{prefix}/statme")
            .trim_start_matches('/')
            .to_string();
        fs.create(&p).unwrap();
        fs.write(&p, 0, b"x").unwrap();
        // Drain the write-behind queue so the flush RPC is not charged
        // to the first stat.
        fs.flush(&p).unwrap();
        let before = fs.rpcs();
        for _ in 0..20 {
            fs.stat(&p).unwrap();
        }
        assert_eq!(fs.rpcs() - before, 20, "no caching ⇒ one RPC per stat");
    }
}
