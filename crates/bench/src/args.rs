//! A tiny shared command-line parser for the `fig*` binaries.
//!
//! The figure binaries take a small, stable set of options (`--trace
//! <path>`, `--faults <spec>`); each previously hand-parsed its own.
//! [`Args`] centralises the `--flag value` / `--flag=value` handling so
//! the option types ([`crate::trace::TraceOpt`], [`FaultOpt`]) stay thin
//! wrappers over it. Unknown arguments are ignored — the binaries take no
//! positional arguments, and ignoring extras keeps old invocations
//! working.

use std::collections::BTreeMap;

use sfs_sim::FaultPlan;

/// Parsed process arguments supporting `--flag value` and `--flag=value`.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures `std::env::args` (minus the program name).
    pub fn from_env() -> Self {
        Args {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(argv: Vec<&str>) -> Self {
        Args {
            argv: argv.into_iter().map(String::from).collect(),
        }
    }

    /// The value of `--<name> <value>` or `--<name>=<value>`; the last
    /// occurrence wins, matching conventional CLI override behaviour.
    pub fn opt(&self, name: &str) -> Option<String> {
        let flag = format!("--{name}");
        let prefix = format!("--{name}=");
        let mut found = None;
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if *a == flag {
                found = it.next().cloned();
            } else if let Some(v) = a.strip_prefix(&prefix) {
                found = Some(v.to_string());
            }
        }
        found
    }
}

/// `--faults <spec>` support: a seeded deterministic [`FaultPlan`]
/// threaded through every layer of the testbed (wire, server, disk), so
/// any figure can be regenerated under a degraded network. The spec
/// grammar is [`sfs_sim::FaultSpec::parse`]'s
/// (`seed=7,drop=20,delay=50,delay_ns=2ms,partition=1s+200ms,crash=3s`).
pub struct FaultOpt {
    plan: Option<FaultPlan>,
    spec: Option<String>,
}

impl FaultOpt {
    /// Parses `--faults <spec>` from the process arguments; a malformed
    /// spec aborts with the parse error.
    pub fn from_args() -> Self {
        Self::with_spec(Args::from_env().opt("faults")).unwrap_or_else(|e| {
            eprintln!("--faults: {e}");
            std::process::exit(2)
        })
    }

    /// Builds from an explicit spec (tests).
    pub fn with_spec(spec: Option<String>) -> Result<Self, String> {
        let plan = match &spec {
            Some(s) => Some(FaultPlan::from_spec(s)?),
            None => None,
        };
        Ok(FaultOpt { plan, spec })
    }

    /// Whether `--faults` was given.
    pub fn enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// The plan to thread through the testbed, when `--faults` was given.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Prints the injected-fault tally after a run (no-op without
    /// `--faults`), so chaos figures are self-describing.
    pub fn finish(&self) {
        let (Some(plan), Some(spec)) = (&self.plan, &self.spec) else {
            return;
        };
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in plan.events() {
            *by_kind.entry(ev.kind.label()).or_insert(0) += 1;
        }
        let tally: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!(
            "faults: spec \"{spec}\" (seed {}) injected {} events [{}]",
            plan.seed(),
            plan.injected(),
            tally.join(", ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_flag_forms_parse_and_last_wins() {
        let a = Args::from_vec(vec!["--trace", "a.json", "--trace=b.json"]);
        assert_eq!(a.opt("trace").as_deref(), Some("b.json"));
        let a = Args::from_vec(vec!["--faults=seed=1,drop=5", "ignored"]);
        assert_eq!(a.opt("faults").as_deref(), Some("seed=1,drop=5"));
        assert_eq!(a.opt("missing"), None);
    }

    #[test]
    fn fault_opt_builds_a_plan() {
        let f = FaultOpt::with_spec(Some("seed=9,drop=10".into())).unwrap();
        assert!(f.enabled());
        assert_eq!(f.plan().unwrap().seed(), 9);
        let off = FaultOpt::with_spec(None).unwrap();
        assert!(!off.enabled());
        assert!(off.plan().is_none());
    }

    #[test]
    fn fault_opt_rejects_bad_specs() {
        assert!(FaultOpt::with_spec(Some("drop=2000".into())).is_err());
        assert!(FaultOpt::with_spec(Some("nonsense".into())).is_err());
    }
}
