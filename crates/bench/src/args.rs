//! A tiny shared command-line parser for the `fig*` binaries.
//!
//! The figure binaries take a small, stable set of options (`--trace
//! <path>`, `--faults <spec>`); each previously hand-parsed its own.
//! [`Args`] centralises the `--flag value` / `--flag=value` handling so
//! the option types ([`crate::trace::TraceOpt`], [`FaultOpt`]) stay thin
//! wrappers over it. A binary declares the options it understands via
//! [`Args::reject_unknown`], which turns a typo (`--fauls=drop=20`) into
//! a clear error instead of a silently fault-free figure; the fault-spec
//! *keys* themselves are validated by [`sfs_sim::FaultSpec::parse`],
//! whose errors [`FaultOpt`] surfaces verbatim.

use std::collections::BTreeMap;

use sfs_sim::{FaultKind, FaultPlan};

/// Parsed process arguments supporting `--flag value` and `--flag=value`.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures `std::env::args` (minus the program name).
    pub fn from_env() -> Self {
        Args {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(argv: Vec<&str>) -> Self {
        Args {
            argv: argv.into_iter().map(String::from).collect(),
        }
    }

    /// The value of `--<name> <value>` or `--<name>=<value>`; the last
    /// occurrence wins, matching conventional CLI override behaviour.
    pub fn opt(&self, name: &str) -> Option<String> {
        let flag = format!("--{name}");
        let prefix = format!("--{name}=");
        let mut found = None;
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if *a == flag {
                found = it.next().cloned();
            } else if let Some(v) = a.strip_prefix(&prefix) {
                found = Some(v.to_string());
            }
        }
        found
    }

    /// Validates that every argument is an option the binary declared:
    /// `valued` options take a value (either form), `boolean` ones take
    /// none. Anything else — a misspelled flag, a stray positional, a
    /// missing value — is a clear error naming the offender, so a typo'd
    /// `--fauls=...` can never silently produce a fault-free figure.
    pub fn reject_unknown(&self, valued: &[&str], boolean: &[&str]) -> Result<(), String> {
        let known = || {
            let mut k: Vec<String> = valued
                .iter()
                .chain(boolean)
                .map(|k| format!("--{k}"))
                .collect();
            k.sort();
            k.join(", ")
        };
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            let Some(body) = a.strip_prefix("--") else {
                return Err(format!(
                    "unexpected positional argument {a:?} (known options: {})",
                    known()
                ));
            };
            let name = body.split('=').next().unwrap_or(body);
            let inline_value = body.contains('=');
            if valued.contains(&name) {
                if !inline_value && it.next().is_none() {
                    return Err(format!("--{name} expects a value"));
                }
            } else if boolean.contains(&name) {
                if inline_value {
                    return Err(format!("--{name} takes no value"));
                }
            } else {
                return Err(format!(
                    "unknown option --{name} (known options: {})",
                    known()
                ));
            }
        }
        Ok(())
    }

    /// [`Args::reject_unknown`] for binaries: aborts with exit status 2
    /// and the error on stderr, the same contract as a malformed
    /// `--faults` spec.
    pub fn enforce_known(&self, valued: &[&str], boolean: &[&str]) {
        if let Err(e) = self.reject_unknown(valued, boolean) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// `--faults <spec>` support: a seeded deterministic [`FaultPlan`]
/// threaded through every layer of the testbed (wire, server, disk), so
/// any figure can be regenerated under a degraded network. The spec
/// grammar is [`sfs_sim::FaultSpec::parse`]'s
/// (`seed=7,drop=20,delay=50,delay_ns=2ms,partition=1s+200ms,crash=3s,ccrash=4s,syncfail=10`).
pub struct FaultOpt {
    plan: Option<FaultPlan>,
    spec: Option<String>,
}

impl FaultOpt {
    /// Parses `--faults <spec>` from the process arguments; a malformed
    /// spec aborts with the parse error.
    pub fn from_args() -> Self {
        Self::with_spec(Args::from_env().opt("faults")).unwrap_or_else(|e| {
            eprintln!("--faults: {e}");
            std::process::exit(2)
        })
    }

    /// Builds from an explicit spec (tests).
    pub fn with_spec(spec: Option<String>) -> Result<Self, String> {
        let plan = match &spec {
            Some(s) => Some(FaultPlan::from_spec(s)?),
            None => None,
        };
        Ok(FaultOpt { plan, spec })
    }

    /// Whether `--faults` was given.
    pub fn enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// The plan to thread through the testbed, when `--faults` was given.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Prints the injected-fault tally after a run (no-op without
    /// `--faults`), so chaos figures are self-describing.
    pub fn finish(&self) {
        let (Some(plan), Some(spec)) = (&self.plan, &self.spec) else {
            return;
        };
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in plan.events() {
            *by_kind.entry(ev.kind.label()).or_insert(0) += 1;
        }
        let tally: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!(
            "faults: spec \"{spec}\" (seed {}) injected {} events [{}]",
            plan.seed(),
            plan.injected(),
            tally.join(", ")
        );
    }

    /// Checks the run's injected-fault tally against the envelope its
    /// spec promises, and aborts the process when a faulted run violated
    /// it — a figure produced under `--faults` must not silently have run
    /// fault-free (plan not wired into a layer) or injected faults its
    /// spec never enabled. `final_ns` is the latest virtual clock any
    /// testbed in the run reached; scheduled crashes due well before it
    /// must have fired. No-op without `--faults`.
    pub fn assert_envelope(&self, final_ns: u64) {
        if let Err(msg) = self.check_envelope(final_ns) {
            eprintln!("--faults envelope violated: {msg}");
            std::process::exit(1);
        }
    }

    fn check_envelope(&self, final_ns: u64) -> Result<(), String> {
        let Some(plan) = &self.plan else {
            return Ok(());
        };
        let spec = plan.spec();
        let events = plan.events();
        // 1. Every injected event must belong to an axis the spec enabled.
        for ev in &events {
            let enabled = match ev.kind {
                // Partitions inject drops for every packet in the window.
                FaultKind::Drop => spec.drop_pm > 0 || !spec.partitions.is_empty(),
                FaultKind::Duplicate => spec.duplicate_pm > 0,
                FaultKind::Reorder => spec.reorder_pm > 0,
                FaultKind::Corrupt => spec.corrupt_pm > 0,
                FaultKind::Delay => spec.delay_pm > 0,
                FaultKind::Partition => !spec.partitions.is_empty(),
                FaultKind::ServerCrash => !spec.server_crashes.is_empty(),
                FaultKind::ClientCrash => !spec.client_crashes.is_empty(),
                FaultKind::DiskSyncFail => spec.disk_sync_fail_pm > 0,
            };
            if !enabled {
                return Err(format!(
                    "injected {:?} at {}ns but the spec never enabled that fault kind",
                    ev.kind.label(),
                    ev.at.0
                ));
            }
        }
        // 2. Substantial probability mass with zero injected events means
        // the plan was not actually threaded through the testbed.
        let mass = spec.drop_pm
            + spec.duplicate_pm
            + spec.reorder_pm
            + spec.corrupt_pm
            + spec.delay_pm
            + spec.disk_sync_fail_pm;
        if events.is_empty() && mass >= 20 {
            return Err(format!(
                "spec enables {mass}‰ of per-packet faults but the run injected none — \
                 is the plan wired into the wire/disk layers?"
            ));
        }
        // 3. A scheduled server crash due well before the run ended must
        // have fired (the epoch bump is observed on first post-crash
        // access, so only complain when the run clearly outlived it).
        let fired = events
            .iter()
            .filter(|e| e.kind == FaultKind::ServerCrash)
            .count();
        let due = spec
            .server_crashes
            .iter()
            .filter(|t| t.0.saturating_mul(2) < final_ns)
            .count();
        if fired < due {
            return Err(format!(
                "{due} scheduled server crash(es) were due well before the final \
                 clock ({final_ns}ns) but only {fired} fired"
            ));
        }
        Ok(())
    }
}

/// One operation kind in a scenario op mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOp {
    /// `GETATTR` through the attribute cache.
    Stat,
    /// Read `io_bytes` from a committed region of a file.
    Read,
    /// Append `io_bytes` and flush (a synchronous commit point).
    Write,
    /// Create a fresh file instance in a retired slot.
    Create,
    /// Remove a live file instance.
    Unlink,
    /// Open: close-to-open attribute + access check.
    Open,
}

impl ScenarioOp {
    /// Every op kind, in canonical (encode) order.
    pub const ALL: [ScenarioOp; 6] = [
        ScenarioOp::Stat,
        ScenarioOp::Read,
        ScenarioOp::Write,
        ScenarioOp::Create,
        ScenarioOp::Unlink,
        ScenarioOp::Open,
    ];

    /// The spec-grammar name of this op.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioOp::Stat => "stat",
            ScenarioOp::Read => "read",
            ScenarioOp::Write => "write",
            ScenarioOp::Create => "create",
            ScenarioOp::Unlink => "unlink",
            ScenarioOp::Open => "open",
        }
    }

    /// Parses a spec-grammar op name.
    pub fn parse(s: &str) -> Option<ScenarioOp> {
        Self::ALL.iter().copied().find(|op| op.label() == s)
    }
}

/// A declarative workload scenario: op-mix percentages, file-set shape,
/// client count, and duration, in one comma-separated spec string the
/// `scenarios` binary and the engine share
/// (`seed=7,clients=4,dirs=8,files=64,file_bytes=8192,io_bytes=8192,ops=1200,cpu_ns=0,mix=stat:13+read:22+write:15+create:2+unlink:1+open:34`).
///
/// [`ScenarioSpec::encode`] is the canonical form: `parse(encode(s)) ==
/// s` for every valid spec, which is what the round-trip property tests
/// enforce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Seed for the deterministic op/file/client choices.
    pub seed: u64,
    /// Concurrent clients sharing the server (1–64).
    pub clients: usize,
    /// Directories the file set is spread over.
    pub dirs: usize,
    /// File slots (each slot holds one live file instance at a time).
    pub files: usize,
    /// Initial bytes per file instance.
    pub file_bytes: usize,
    /// Bytes per read/append.
    pub io_bytes: usize,
    /// Operations to execute after setup.
    pub ops: usize,
    /// CPU burned per write op, ns (models compilation between I/Os).
    pub cpu_ns: u64,
    /// Weighted op mix, in spec order. Non-empty; weights positive.
    pub mix: Vec<(ScenarioOp, u32)>,
}

/// Hard cap on `clients`: beyond this the simulated single-server world
/// stops resembling the testbed the cost model was calibrated for.
pub const MAX_SCENARIO_CLIENTS: usize = 64;

impl ScenarioSpec {
    /// Parses a scenario spec. Unknown keys, malformed numbers, and
    /// structurally invalid mixes are rejected with errors that name the
    /// offending key or entry.
    pub fn parse(s: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec {
            seed: 1,
            clients: 1,
            dirs: 1,
            files: 16,
            file_bytes: 4096,
            io_bytes: 1024,
            ops: 100,
            cpu_ns: 0,
            mix: Vec::new(),
        };
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!("scenario spec entry {part:?} is not of the form key=value")
            })?;
            let int = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{what}={value:?} is not a non-negative integer"))
            };
            match key {
                "seed" => spec.seed = int("seed")?,
                "clients" => spec.clients = int("clients")? as usize,
                "dirs" => spec.dirs = int("dirs")? as usize,
                "files" => spec.files = int("files")? as usize,
                "file_bytes" => spec.file_bytes = int("file_bytes")? as usize,
                "io_bytes" => spec.io_bytes = int("io_bytes")? as usize,
                "ops" => spec.ops = int("ops")? as usize,
                "cpu_ns" => spec.cpu_ns = parse_ns(value)?,
                "mix" => spec.mix = parse_mix(value)?,
                other => {
                    return Err(format!(
                        "unknown scenario spec key {other:?} (known keys: seed, clients, \
                         dirs, files, file_bytes, io_bytes, ops, cpu_ns, mix)"
                    ))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The canonical spec string: every field, fixed order, mix in
    /// stored order. `parse(encode(x)) == x`.
    pub fn encode(&self) -> String {
        let mix: Vec<String> = self
            .mix
            .iter()
            .map(|(op, w)| format!("{}:{}", op.label(), w))
            .collect();
        format!(
            "seed={},clients={},dirs={},files={},file_bytes={},io_bytes={},ops={},cpu_ns={},mix={}",
            self.seed,
            self.clients,
            self.dirs,
            self.files,
            self.file_bytes,
            self.io_bytes,
            self.ops,
            self.cpu_ns,
            mix.join("+")
        )
    }

    fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("clients=0: a scenario needs at least one client".into());
        }
        if self.clients > MAX_SCENARIO_CLIENTS {
            return Err(format!(
                "clients={} exceeds the maximum of {MAX_SCENARIO_CLIENTS}",
                self.clients
            ));
        }
        if self.dirs == 0 {
            return Err("dirs=0: the file set needs at least one directory".into());
        }
        if self.files < 2 {
            return Err(format!(
                "files={}: need at least 2 file slots so unlink can always leave one live file",
                self.files
            ));
        }
        if self.file_bytes == 0 || self.io_bytes == 0 {
            return Err("file_bytes and io_bytes must be at least 1".into());
        }
        if self.ops == 0 {
            return Err("ops=0: the scenario would do nothing after setup".into());
        }
        if self.mix.is_empty() {
            return Err(
                "scenario spec needs a mix= op table, e.g. mix=stat:30+read:50+write:20".into(),
            );
        }
        let total: u64 = self.mix.iter().map(|(_, w)| *w as u64).sum();
        if total > 100_000 {
            return Err(format!("mix weights sum to {total}, above the 100000 cap"));
        }
        Ok(())
    }
}

fn parse_mix(value: &str) -> Result<Vec<(ScenarioOp, u32)>, String> {
    let mut mix = Vec::new();
    for entry in value.split('+') {
        let (name, weight) = entry.split_once(':').ok_or_else(|| {
            format!("mix entry {entry:?} is not of the form op:weight (e.g. read:30)")
        })?;
        let op = ScenarioOp::parse(name).ok_or_else(|| {
            format!("unknown mix op {name:?} (known ops: stat, read, write, create, unlink, open)")
        })?;
        let w: u32 = weight
            .parse()
            .map_err(|_| format!("mix weight {weight:?} for {name} is not an integer"))?;
        if w == 0 {
            return Err(format!("mix weight for {name} must be positive"));
        }
        if mix.iter().any(|(o, _)| *o == op) {
            return Err(format!("mix lists {name} twice"));
        }
        mix.push((op, w));
    }
    Ok(mix)
}

/// Parses a duration as plain nanoseconds or with an `ns`/`us`/`ms`/`s`
/// suffix (`cpu_ns=2ms`).
fn parse_ns(value: &str) -> Result<u64, String> {
    let (digits, mult) = if let Some(v) = value.strip_suffix("ns") {
        (v, 1)
    } else if let Some(v) = value.strip_suffix("us") {
        (v, 1_000)
    } else if let Some(v) = value.strip_suffix("ms") {
        (v, 1_000_000)
    } else if let Some(v) = value.strip_suffix('s') {
        (v, 1_000_000_000)
    } else {
        (value, 1)
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| format!("duration {value:?} is not an integer with optional ns/us/ms/s"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_flag_forms_parse_and_last_wins() {
        let a = Args::from_vec(vec!["--trace", "a.json", "--trace=b.json"]);
        assert_eq!(a.opt("trace").as_deref(), Some("b.json"));
        let a = Args::from_vec(vec!["--faults=seed=1,drop=5", "ignored"]);
        assert_eq!(a.opt("faults").as_deref(), Some("seed=1,drop=5"));
        assert_eq!(a.opt("missing"), None);
    }

    #[test]
    fn fault_opt_builds_a_plan() {
        let f = FaultOpt::with_spec(Some("seed=9,drop=10".into())).unwrap();
        assert!(f.enabled());
        assert_eq!(f.plan().unwrap().seed(), 9);
        let off = FaultOpt::with_spec(None).unwrap();
        assert!(!off.enabled());
        assert!(off.plan().is_none());
    }

    #[test]
    fn fault_opt_rejects_bad_specs() {
        assert!(FaultOpt::with_spec(Some("drop=2000".into())).is_err());
        assert!(FaultOpt::with_spec(Some("nonsense".into())).is_err());
    }

    #[test]
    fn fault_opt_rejects_unknown_spec_keys_with_a_clear_error() {
        // A typo'd axis must fail loudly, not run fault-free: the error
        // names the offending key so the user can see the typo.
        let err = FaultOpt::with_spec(Some("seed=7,dorp=20".into()))
            .map(|_| ())
            .unwrap_err();
        assert!(
            err.contains("unknown fault spec key") && err.contains("dorp"),
            "error must name the unknown key: {err}"
        );
    }

    #[test]
    fn reject_unknown_accepts_declared_options_in_both_forms() {
        let a = Args::from_vec(vec!["--faults", "seed=1,drop=5", "--out=x.json", "--smoke"]);
        assert!(a.reject_unknown(&["faults", "out"], &["smoke"]).is_ok());
        assert!(Args::from_vec(vec![])
            .reject_unknown(&["faults"], &[])
            .is_ok());
    }

    #[test]
    fn reject_unknown_flags_typos_and_strays() {
        // Misspelled option: named in the error, known set listed.
        let a = Args::from_vec(vec!["--fauls=seed=1,drop=5"]);
        let err = a.reject_unknown(&["faults"], &["smoke"]).unwrap_err();
        assert!(
            err.contains("--fauls") && err.contains("--faults"),
            "error must name the typo and the known options: {err}"
        );
        // Stray positional argument.
        let a = Args::from_vec(vec!["extra"]);
        assert!(a.reject_unknown(&["faults"], &[]).is_err());
        // Valued option missing its value.
        let a = Args::from_vec(vec!["--faults"]);
        let err = a.reject_unknown(&["faults"], &[]).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
        // Boolean option given a value.
        let a = Args::from_vec(vec!["--smoke=yes"]);
        let err = a.reject_unknown(&[], &["smoke"]).unwrap_err();
        assert!(err.contains("takes no value"), "{err}");
    }

    #[test]
    fn envelope_passes_without_faults_and_within_spec() {
        // No --faults: always fine.
        let off = FaultOpt::with_spec(None).unwrap();
        assert!(off.check_envelope(1_000_000_000).is_ok());
        // Scheduled crash that fired: fine.
        let f = FaultOpt::with_spec(Some("seed=1,crash=1s".into())).unwrap();
        let plan = f.plan().unwrap();
        plan.note_server_crash(sfs_sim::SimTime(1_000_000_000));
        assert!(f.check_envelope(10_000_000_000).is_ok());
    }

    #[test]
    fn envelope_rejects_zero_events_under_substantial_mass() {
        // 50‰ of drops but nothing injected: the plan was not wired in.
        let f = FaultOpt::with_spec(Some("seed=2,drop=50".into())).unwrap();
        let err = f.check_envelope(5_000_000_000).unwrap_err();
        assert!(err.contains("injected none"), "{err}");
    }

    #[test]
    fn envelope_rejects_unscheduled_fault_kinds() {
        // The run recorded a client crash the spec never scheduled.
        let f = FaultOpt::with_spec(Some("seed=3,crash=5s".into())).unwrap();
        f.plan()
            .unwrap()
            .note_client_crash(sfs_sim::SimTime(1_000_000));
        let err = f.check_envelope(1_000_000_000).unwrap_err();
        assert!(err.contains("never enabled"), "{err}");
    }

    #[test]
    fn envelope_rejects_missed_scheduled_server_crash() {
        // The run ran far past the scheduled crash instant and it never
        // fired.
        let f = FaultOpt::with_spec(Some("seed=4,crash=1s".into())).unwrap();
        let err = f.check_envelope(60_000_000_000).unwrap_err();
        assert!(err.contains("server crash"), "{err}");
    }
}
