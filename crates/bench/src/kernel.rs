//! Simulated kernel file-system layers.
//!
//! The paper benchmarks application workloads through the whole OS stack:
//! system calls, the kernel page/name/attribute caches, and then one of
//! three transports — the local FFS, the in-kernel NFS3 client, or the
//! kernel NFS3 client talking to the user-level SFS daemons. This module
//! reproduces that stack. The page cache and name cache are shared
//! implementations so that all three systems benefit identically; what
//! differs is exactly what the paper says differs: where attribute caching
//! happens, how many RPCs reach the wire, and what each RPC costs.

use std::collections::HashMap;
use std::sync::Arc;

use sfs::client::{ClientError, SfsClient};
use sfs_nfs3::proto::{FileHandle, Nfs3Reply, Nfs3Request, Sattr3, StableHow, Status};
use sfs_nfs3::Nfs3Server;
use sfs_sim::{CpuCosts, SimClock, SimTime, Wire, WireError};
use sfs_telemetry::sync::Mutex;
use sfs_vfs::{Credentials, FsError, Vfs};

/// Errors surfaced by benchmark file operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchFsError {
    /// Underlying NFS error.
    Nfs(Status),
    /// Underlying local error.
    Local(FsError),
    /// SFS client error.
    Sfs(String),
}

impl std::fmt::Display for BenchFsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchFsError::Nfs(s) => write!(f, "nfs: {s:?}"),
            BenchFsError::Local(e) => write!(f, "local: {e}"),
            BenchFsError::Sfs(e) => write!(f, "sfs: {e}"),
        }
    }
}

impl std::error::Error for BenchFsError {}

type Result<T> = std::result::Result<T, BenchFsError>;

/// The whole-file page cache shared by every stack (the kernel's buffer
/// cache). Entries are validated against the file's modification time.
#[derive(Default)]
struct PageCache {
    files: HashMap<String, (u64, Arc<Vec<u8>>)>,
}

impl PageCache {
    fn get(&self, path: &str, mtime: u64) -> Option<Arc<Vec<u8>>> {
        match self.files.get(path) {
            Some((m, data)) if *m == mtime => Some(data.clone()),
            _ => None,
        }
    }

    fn put(&mut self, path: &str, mtime: u64, data: Arc<Vec<u8>>) {
        self.files.insert(path.to_string(), (mtime, data));
    }

    fn invalidate(&mut self, path: &str) {
        self.files.remove(path);
    }
}

/// The interface workloads drive (what applications would do through
/// system calls). Paths are `/`-separated, relative to the benchmark
/// root.
pub trait FsBench {
    /// Human-readable system name ("Local", "NFS 3 (UDP)", "SFS", …).
    fn name(&self) -> &str;

    /// The virtual clock.
    fn clock(&self) -> &SimClock;

    /// Creates a directory.
    fn mkdir(&self, path: &str) -> Result<()>;

    /// Creates an empty file (or truncates an existing one).
    fn create(&self, path: &str) -> Result<()>;

    /// Writes (appends/overwrites) at an offset.
    fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<()>;

    /// Reads up to `len` bytes at an offset (through the page cache).
    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Stats a file (what `ls -l`, `du`, and compilers do constantly).
    fn stat(&self, path: &str) -> Result<u64>;

    /// Opens a file for reading: name resolution plus the consistency
    /// revalidation each system performs. Kernel NFS3 implements
    /// close-to-open consistency — a GETATTR on *every* open, plus an
    /// ACCESS check — while SFS's leases and callbacks let its client
    /// skip revalidation while a lease is valid (§3.3). Returns the size.
    fn open(&self, path: &str) -> Result<u64>;

    /// Removes a file.
    fn unlink(&self, path: &str) -> Result<()>;

    /// Flushes dirty data to stable storage (close/fsync/COMMIT).
    fn flush(&self, path: &str) -> Result<()>;

    /// An operation that always requires a server round trip and never
    /// touches the disk: the paper's unauthorized `fchown` (§4.2).
    fn chown_fail(&self, path: &str) -> Result<()>;

    /// Sets how many RPCs the client may keep in flight on its channel
    /// (1 = strict blocking request/reply). Local and kernel-NFS stacks
    /// have no pipelined client and ignore it.
    fn set_pipeline_window(&self, _window: usize) {}

    /// Burns pure CPU time (compilation).
    fn cpu_burn(&self, ns: u64) {
        self.clock().advance_ns(ns);
    }

    /// Network RPCs issued so far (0 for local).
    fn rpcs(&self) -> u64 {
        0
    }

    /// Drops client-side caches (page + name + attr), keeping server
    /// state.
    fn drop_caches(&self);
}

/// Cost of a local system call on the testbed (entry/exit + VFS layer).
const SYSCALL_NS: u64 = 3_000;

// ---------------------------------------------------------------- Local

/// The local-FFS baseline: direct file-system access plus the page cache.
pub struct LocalFs {
    vfs: Vfs,
    clock: SimClock,
    creds: Credentials,
    cache: Mutex<PageCache>,
}

impl LocalFs {
    /// Wraps a (disk-attached) file system.
    pub fn new(vfs: Vfs, clock: SimClock) -> Self {
        LocalFs {
            vfs,
            clock,
            creds: Credentials::user(1000, 100),
            cache: Mutex::new(PageCache::default()),
        }
    }

    /// The underlying file system (for seeding).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    fn resolve(&self, path: &str) -> Result<u64> {
        self.vfs
            .lookup_path(&Credentials::root(), path)
            .map(|(ino, _)| ino)
            .map_err(BenchFsError::Local)
    }
}

impl FsBench for LocalFs {
    fn name(&self) -> &str {
        "Local"
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn mkdir(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let dino = self.resolve(dir)?;
        self.vfs
            .mkdir(&Credentials::root(), dino, leaf, 0o755)
            .map(|_| ())
            .map_err(BenchFsError::Local)
    }

    fn create(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let dino = self.resolve(dir)?;
        match self.vfs.create(&Credentials::root(), dino, leaf, 0o644) {
            Ok(_) => Ok(()),
            Err(FsError::Exists) => Ok(()),
            Err(e) => Err(BenchFsError::Local(e)),
        }
    }

    fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let ino = self.resolve(path)?;
        self.vfs
            .write(&Credentials::root(), ino, offset, data, false)
            .map(|_| ())
            .map_err(BenchFsError::Local)?;
        self.cache.lock().invalidate(path);
        Ok(())
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.clock.advance_ns(SYSCALL_NS);
        let ino = self.resolve(path)?;
        let attr = self.vfs.getattr(ino).map_err(BenchFsError::Local)?;
        if let Some(data) = self.cache.lock().get(path, attr.mtime) {
            let start = (offset as usize).min(data.len());
            let end = (start + len).min(data.len());
            return Ok(data[start..end].to_vec());
        }
        let whole = self
            .vfs
            .read_file(&Credentials::root(), ino)
            .map_err(BenchFsError::Local)?;
        let whole = Arc::new(whole);
        self.cache.lock().put(path, attr.mtime, whole.clone());
        let start = (offset as usize).min(whole.len());
        let end = (start + len).min(whole.len());
        Ok(whole[start..end].to_vec())
    }

    fn stat(&self, path: &str) -> Result<u64> {
        self.clock.advance_ns(SYSCALL_NS);
        let ino = self.resolve(path)?;
        self.vfs
            .getattr(ino)
            .map(|a| a.size)
            .map_err(BenchFsError::Local)
    }

    fn open(&self, path: &str) -> Result<u64> {
        // Local opens are a permission check against in-memory inodes.
        self.stat(path)
    }

    fn unlink(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let dino = self.resolve(dir)?;
        self.cache.lock().invalidate(path);
        self.vfs
            .remove(&Credentials::root(), dino, leaf)
            .map_err(BenchFsError::Local)
    }

    fn flush(&self, _path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        self.vfs.commit();
        Ok(())
    }

    fn chown_fail(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let ino = self.resolve(path)?;
        // A non-owner chown attempt: fails in the VFS layer, no disk.
        match self.vfs.setattr(
            &self.creds,
            ino,
            sfs_vfs::SetAttr {
                uid: Some(1),
                ..Default::default()
            },
        ) {
            Err(FsError::Perm) => Ok(()),
            Err(e) => Err(BenchFsError::Local(e)),
            Ok(_) => Err(BenchFsError::Local(FsError::Invalid)),
        }
    }

    fn drop_caches(&self) {
        *self.cache.lock() = PageCache::default();
    }
}

// ------------------------------------------------------------------ NFS

/// The in-kernel NFS3 client baseline with the classic heuristic
/// attribute cache (a fixed timeout, no leases, no callbacks).
pub struct KernelNfs {
    label: String,
    clock: SimClock,
    wire: Wire,
    server: Nfs3Server,
    creds: Credentials,
    cpu: CpuCosts,
    /// dnlc: path → file handle.
    names: Mutex<HashMap<String, FileHandle>>,
    /// Attribute cache: path → (size, mtime, fetched-at).
    attrs: Mutex<HashMap<String, (u64, u64, SimTime)>>,
    /// Attribute cache timeout (classic NFS heuristic, ~3 s).
    attr_timeout_ns: u64,
    cache: Mutex<PageCache>,
    /// Paths whose ACCESS rights have been checked (cleared when caches
    /// drop or attributes change).
    access_checked: Mutex<std::collections::HashSet<String>>,
}

impl KernelNfs {
    /// Builds an NFS client over `wire` against `server`.
    pub fn new(
        label: &str,
        clock: SimClock,
        wire: Wire,
        server: Nfs3Server,
        cpu: CpuCosts,
    ) -> Self {
        KernelNfs {
            label: label.to_string(),
            clock,
            wire,
            server,
            creds: Credentials::root(),
            cpu,
            names: Mutex::new(HashMap::new()),
            attrs: Mutex::new(HashMap::new()),
            attr_timeout_ns: 3_000_000_000,
            cache: Mutex::new(PageCache::default()),
            access_checked: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// The exported file system (for seeding).
    pub fn vfs(&self) -> &Vfs {
        self.server.vfs()
    }

    /// One wire call with bounded retransmission: like the in-kernel
    /// clients, a lost request or reply is simply retransmitted (NFS3
    /// procedures are idempotent or protected by the server's reply
    /// semantics), bounded so a dead server eventually surfaces as an
    /// I/O error.
    fn wire_call(
        &self,
        wire_len: usize,
        mut server: impl FnMut(Vec<u8>) -> Vec<u8>,
    ) -> Result<Vec<u8>> {
        const MAX_RETRANSMITS: u32 = 8;
        let mut attempt = 0;
        loop {
            match self.wire.call(vec![0u8; wire_len], &mut server) {
                Ok(r) => return Ok(r),
                Err(WireError::Timeout) if attempt < MAX_RETRANSMITS => attempt += 1,
                Err(_) => return Err(BenchFsError::Nfs(Status::Io)),
            }
        }
    }

    /// One NFS RPC over the wire, with kernel-side processing charges at
    /// both ends.
    fn rpc(&self, req: &Nfs3Request) -> Result<Nfs3Reply> {
        self.cpu.charge_rpc(&self.clock);
        let args = req.encode_args();
        let proc = req.proc();
        let wire_len = args.len() + 40; // RPC header overhead
        let results = self.wire_call(wire_len, |_| {
            self.cpu.charge_rpc(&self.clock);
            let reply = self.server.handle(&self.creds, req);
            let bytes = reply.encode_results();
            self.cpu.charge_server_copy(&self.clock, bytes.len());
            bytes
        })?;
        Nfs3Reply::decode_results(proc, &results).map_err(|_| BenchFsError::Nfs(Status::Io))
    }

    fn lookup(&self, path: &str) -> Result<FileHandle> {
        if let Some(fh) = self.names.lock().get(path) {
            return Ok(fh.clone());
        }
        // Walk from the root, consulting the dnlc per component.
        let mut cur = self.server.root_handle();
        let mut sofar = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            sofar.push('/');
            sofar.push_str(comp);
            if let Some(fh) = self.names.lock().get(sofar.trim_start_matches('/')) {
                cur = fh.clone();
                continue;
            }
            match self.rpc(&Nfs3Request::Lookup {
                dir: cur.clone(),
                name: comp.to_string(),
            })? {
                Nfs3Reply::Lookup { fh, attr, .. } => {
                    if let Some(a) = attr.attr {
                        self.attrs.lock().insert(
                            sofar.trim_start_matches('/').to_string(),
                            (a.size, a.mtime, self.clock.now()),
                        );
                    }
                    self.names
                        .lock()
                        .insert(sofar.trim_start_matches('/').to_string(), fh.clone());
                    cur = fh;
                }
                Nfs3Reply::Error { status, .. } => return Err(BenchFsError::Nfs(status)),
                other => return Err(BenchFsError::Nfs(unexpected(&other))),
            }
        }
        Ok(cur)
    }

    fn fresh_attr(&self, path: &str) -> Option<(u64, u64)> {
        let attrs = self.attrs.lock();
        let (size, mtime, at) = attrs.get(path)?;
        if self.clock.now().as_nanos() - at.as_nanos() < self.attr_timeout_ns {
            Some((*size, *mtime))
        } else {
            None
        }
    }

    fn getattr_rpc(&self, path: &str) -> Result<(u64, u64)> {
        let fh = self.lookup(path)?;
        match self.rpc(&Nfs3Request::GetAttr { fh })? {
            Nfs3Reply::GetAttr { attr, .. } => {
                self.attrs
                    .lock()
                    .insert(path.to_string(), (attr.size, attr.mtime, self.clock.now()));
                Ok((attr.size, attr.mtime))
            }
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }
}

fn unexpected(_r: &Nfs3Reply) -> Status {
    Status::Io
}

impl FsBench for KernelNfs {
    fn name(&self) -> &str {
        &self.label
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn mkdir(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let dfh = self.lookup(dir)?;
        match self.rpc(&Nfs3Request::Mkdir {
            dir: dfh,
            name: leaf.to_string(),
            attrs: Sattr3 {
                mode: Some(0o755),
                ..Default::default()
            },
        })? {
            Nfs3Reply::Mkdir { fh, .. } => {
                self.names.lock().insert(path.to_string(), fh);
                Ok(())
            }
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn create(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let dfh = self.lookup(dir)?;
        match self.rpc(&Nfs3Request::Create {
            dir: dfh,
            name: leaf.to_string(),
            attrs: Sattr3 {
                mode: Some(0o644),
                ..Default::default()
            },
        })? {
            Nfs3Reply::Create { fh, .. } => {
                self.names.lock().insert(path.to_string(), fh);
                self.cache.lock().invalidate(path);
                Ok(())
            }
            Nfs3Reply::Error {
                status: Status::Exist,
                ..
            } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let fh = self.lookup(path)?;
        match self.rpc(&Nfs3Request::Write {
            fh,
            offset,
            stable: StableHow::Unstable,
            data: data.to_vec(),
        })? {
            Nfs3Reply::Write { attr, .. } => {
                if let Some(a) = attr.attr {
                    self.attrs
                        .lock()
                        .insert(path.to_string(), (a.size, a.mtime, self.clock.now()));
                }
                self.cache.lock().invalidate(path);
                Ok(())
            }
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.clock.advance_ns(SYSCALL_NS);
        // Validate the page cache against (possibly cached) attributes.
        let (size, mtime) = match self.fresh_attr(path) {
            Some(v) => v,
            None => self.getattr_rpc(path)?,
        };
        if let Some(data) = self.cache.lock().get(path, mtime) {
            let start = (offset as usize).min(data.len());
            let end = (start + len).min(data.len());
            return Ok(data[start..end].to_vec());
        }
        // Page-cache miss: read the requested range over the wire. Whole
        // small files get cached; large sequential reads stream through.
        let fh = self.lookup(path)?;
        if size <= 65536 {
            let mut whole = Vec::with_capacity(size as usize);
            let mut off = 0u64;
            loop {
                match self.rpc(&Nfs3Request::Read {
                    fh: fh.clone(),
                    offset: off,
                    count: 8192,
                })? {
                    Nfs3Reply::Read { data, eof, .. } => {
                        off += data.len() as u64;
                        whole.extend_from_slice(&data);
                        if eof || data.is_empty() {
                            break;
                        }
                    }
                    Nfs3Reply::Error { status, .. } => return Err(BenchFsError::Nfs(status)),
                    other => return Err(BenchFsError::Nfs(unexpected(&other))),
                }
            }
            let whole = Arc::new(whole);
            self.cache.lock().put(path, mtime, whole.clone());
            let start = (offset as usize).min(whole.len());
            let end = (start + len).min(whole.len());
            Ok(whole[start..end].to_vec())
        } else {
            match self.rpc(&Nfs3Request::Read {
                fh,
                offset,
                count: len as u32,
            })? {
                Nfs3Reply::Read { data, .. } => Ok(data),
                Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
                other => Err(BenchFsError::Nfs(unexpected(&other))),
            }
        }
    }

    fn stat(&self, path: &str) -> Result<u64> {
        self.clock.advance_ns(SYSCALL_NS);
        if let Some((size, _)) = self.fresh_attr(path) {
            return Ok(size);
        }
        Ok(self.getattr_rpc(path)?.0)
    }

    fn open(&self, path: &str) -> Result<u64> {
        self.clock.advance_ns(SYSCALL_NS);
        // Close-to-open consistency: GETATTR on every open, regardless of
        // the attribute cache.
        let (size, _) = self.getattr_rpc(path)?;
        // ACCESS once per file while attributes stay fresh.
        if !self.access_checked.lock().contains(path) {
            let fh = self.lookup(path)?;
            match self.rpc(&Nfs3Request::Access { fh, mask: 0x3f })? {
                Nfs3Reply::Access { .. } => {
                    self.access_checked.lock().insert(path.to_string());
                }
                Nfs3Reply::Error { status, .. } => return Err(BenchFsError::Nfs(status)),
                other => return Err(BenchFsError::Nfs(unexpected(&other))),
            }
        }
        Ok(size)
    }

    fn unlink(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let dfh = self.lookup(dir)?;
        self.names.lock().remove(path);
        self.attrs.lock().remove(path);
        self.cache.lock().invalidate(path);
        self.access_checked.lock().remove(path);
        match self.rpc(&Nfs3Request::Remove {
            dir: dfh,
            name: leaf.to_string(),
        })? {
            Nfs3Reply::Remove { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn flush(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let fh = self.lookup(path)?;
        match self.rpc(&Nfs3Request::Commit {
            fh,
            offset: 0,
            count: 0,
        })? {
            Nfs3Reply::Commit { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn chown_fail(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let fh = self.lookup(path)?;
        // Issue as a non-owner user (failures are never cached).
        let user = Credentials::user(4321, 4321);
        self.cpu.charge_rpc(&self.clock);
        let req = Nfs3Request::SetAttr {
            fh,
            attrs: Sattr3 {
                uid: Some(1),
                ..Default::default()
            },
        };
        let results = self.wire_call(130, |_| {
            self.cpu.charge_rpc(&self.clock);
            let reply = self.server.handle(&user, &req);
            reply.encode_results()
        })?;
        match Nfs3Reply::decode_results(req.proc(), &results)
            .map_err(|_| BenchFsError::Nfs(Status::Io))?
        {
            Nfs3Reply::Error {
                status: Status::Perm,
                ..
            } => Ok(()),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn rpcs(&self) -> u64 {
        self.wire.round_trips()
    }

    fn drop_caches(&self) {
        *self.cache.lock() = PageCache::default();
        self.attrs.lock().clear();
        self.names.lock().clear();
        self.access_checked.lock().clear();
    }
}

// ------------------------------------------------------------------ SFS

/// SFS through the kernel: the page/name caches sit in the kernel exactly
/// as for NFS, but attribute caching is the SFS client's lease-based one
/// and every RPC goes through the user-level daemons and the secure
/// channel.
pub struct SfsBench {
    label: String,
    clock: SimClock,
    client: Arc<SfsClient>,
    uid: u32,
    /// Absolute prefix: `/sfs/Location:HostID`.
    prefix: String,
    names: Mutex<HashMap<String, (Arc<sfs::client::Mount>, FileHandle)>>,
    cache: Mutex<PageCache>,
}

impl SfsBench {
    /// Wraps an SFS client pointed at `prefix` (a mounted self-certifying
    /// path).
    pub fn new(label: &str, client: Arc<SfsClient>, uid: u32, prefix: &str) -> Self {
        SfsBench {
            label: label.to_string(),
            clock: client.clock().clone(),
            client,
            uid,
            prefix: prefix.trim_end_matches('/').to_string(),
            names: Mutex::new(HashMap::new()),
            cache: Mutex::new(PageCache::default()),
        }
    }

    /// The wrapped client.
    pub fn client(&self) -> &Arc<SfsClient> {
        &self.client
    }

    /// Resolves a path to a handle with per-component caching (the
    /// kernel's dnlc sits in front of sfscd exactly as it does for NFS).
    fn handle_of(&self, path: &str) -> Result<(Arc<sfs::client::Mount>, FileHandle)> {
        let path = path.trim_matches('/');
        if let Some(entry) = self.names.lock().get(path) {
            return Ok(entry.clone());
        }
        if path.is_empty() {
            let (mount, fh, _) = self
                .client
                .resolve(self.uid, &self.prefix)
                .map_err(sfs_err)?;
            self.names
                .lock()
                .insert(String::new(), (mount.clone(), fh.clone()));
            return Ok((mount, fh));
        }
        let (dir, leaf) = split(path);
        let (mount, dir_fh) = self.handle_of(dir)?;
        match self.nfs(
            &mount,
            &Nfs3Request::Lookup {
                dir: dir_fh,
                name: leaf.to_string(),
            },
        )? {
            Nfs3Reply::Lookup { fh, .. } => {
                self.names
                    .lock()
                    .insert(path.to_string(), (mount.clone(), fh.clone()));
                Ok((mount, fh))
            }
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn nfs(&self, mount: &sfs::client::Mount, req: &Nfs3Request) -> Result<Nfs3Reply> {
        self.client.call_nfs(mount, self.uid, req).map_err(sfs_err)
    }
}

fn sfs_err(e: ClientError) -> BenchFsError {
    match e {
        ClientError::Nfs(s) => BenchFsError::Nfs(s),
        other => BenchFsError::Sfs(other.to_string()),
    }
}

impl FsBench for SfsBench {
    fn name(&self) -> &str {
        &self.label
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn mkdir(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let (mount, dfh) = self.handle_of(dir)?;
        match self.nfs(
            &mount,
            &Nfs3Request::Mkdir {
                dir: dfh,
                name: leaf.to_string(),
                attrs: Sattr3 {
                    mode: Some(0o755),
                    ..Default::default()
                },
            },
        )? {
            Nfs3Reply::Mkdir { fh, .. } => {
                self.names
                    .lock()
                    .insert(path.trim_matches('/').to_string(), (mount, fh));
                Ok(())
            }
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn create(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let (mount, dfh) = self.handle_of(dir)?;
        match self.nfs(
            &mount,
            &Nfs3Request::Create {
                dir: dfh,
                name: leaf.to_string(),
                attrs: Sattr3 {
                    mode: Some(0o644),
                    ..Default::default()
                },
            },
        )? {
            Nfs3Reply::Create { fh, .. } => {
                self.names
                    .lock()
                    .insert(path.trim_matches('/').to_string(), (mount, fh));
                self.cache.lock().invalidate(path);
                Ok(())
            }
            Nfs3Reply::Error {
                status: Status::Exist,
                ..
            } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (mount, fh) = self.handle_of(path)?;
        // Write-behind: the data is queued and rides out as part of a
        // pipelined window; any failure surfaces at the next barrier
        // (flush, or the next synchronous RPC on the mount).
        self.client
            .write_behind(&mount, self.uid, &fh, offset, data.to_vec())
            .map_err(sfs_err)?;
        self.cache.lock().invalidate(path);
        Ok(())
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.clock.advance_ns(SYSCALL_NS);
        let (mount, fh) = self.handle_of(path)?;
        let attr = self
            .client
            .getattr(&mount, self.uid, &fh)
            .map_err(sfs_err)?;
        if let Some(data) = self.cache.lock().get(path, attr.mtime) {
            let start = (offset as usize).min(data.len());
            let end = (start + len).min(data.len());
            return Ok(data[start..end].to_vec());
        }
        if attr.size <= 65536 {
            let mut whole = Vec::with_capacity(attr.size as usize);
            let mut off = 0u64;
            loop {
                match self.nfs(
                    &mount,
                    &Nfs3Request::Read {
                        fh: fh.clone(),
                        offset: off,
                        count: 8192,
                    },
                )? {
                    Nfs3Reply::Read { data, eof, .. } => {
                        off += data.len() as u64;
                        whole.extend_from_slice(&data);
                        if eof || data.is_empty() {
                            break;
                        }
                    }
                    Nfs3Reply::Error { status, .. } => return Err(BenchFsError::Nfs(status)),
                    other => return Err(BenchFsError::Nfs(unexpected(&other))),
                }
            }
            let whole = Arc::new(whole);
            self.cache.lock().put(path, attr.mtime, whole.clone());
            let start = (offset as usize).min(whole.len());
            let end = (start + len).min(whole.len());
            Ok(whole[start..end].to_vec())
        } else {
            // Large files stream through the client's read-ahead path:
            // sequential access keeps a whole pipeline window of READs
            // in flight.
            let (data, _eof) = self
                .client
                .read(&mount, self.uid, &fh, offset, len as u32)
                .map_err(sfs_err)?;
            Ok(data)
        }
    }

    fn stat(&self, path: &str) -> Result<u64> {
        self.clock.advance_ns(SYSCALL_NS);
        let (mount, fh) = self.handle_of(path)?;
        self.client
            .getattr(&mount, self.uid, &fh)
            .map(|a| a.size)
            .map_err(sfs_err)
    }

    fn open(&self, path: &str) -> Result<u64> {
        self.clock.advance_ns(SYSCALL_NS);
        let (mount, fh) = self.handle_of(path)?;
        // Leases + invalidation callbacks replace close-to-open
        // revalidation: while the lease is live, no RPC is needed.
        let attr = self
            .client
            .getattr(&mount, self.uid, &fh)
            .map_err(sfs_err)?;
        self.client
            .access(&mount, self.uid, &fh, 0x3f)
            .map_err(sfs_err)?;
        Ok(attr.size)
    }

    fn unlink(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (dir, leaf) = split(path);
        let (mount, dfh) = self.handle_of(dir)?;
        self.names.lock().remove(path.trim_matches('/'));
        self.cache.lock().invalidate(path);
        match self.nfs(
            &mount,
            &Nfs3Request::Remove {
                dir: dfh,
                name: leaf.to_string(),
            },
        )? {
            Nfs3Reply::Remove { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn flush(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (mount, fh) = self.handle_of(path)?;
        // call_nfs barriers first, so the COMMIT cannot pass queued
        // write-behind data.
        match self.nfs(
            &mount,
            &Nfs3Request::Commit {
                fh,
                offset: 0,
                count: 0,
            },
        )? {
            Nfs3Reply::Commit { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(BenchFsError::Nfs(status)),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn chown_fail(&self, path: &str) -> Result<()> {
        self.clock.advance_ns(SYSCALL_NS);
        let (mount, fh) = self.handle_of(path)?;
        match self.nfs(
            &mount,
            &Nfs3Request::SetAttr {
                fh,
                attrs: Sattr3 {
                    uid: Some(1),
                    ..Default::default()
                },
            },
        )? {
            Nfs3Reply::Error {
                status: Status::Perm,
                ..
            }
            | Nfs3Reply::Error {
                status: Status::Acces,
                ..
            } => Ok(()),
            other => Err(BenchFsError::Nfs(unexpected(&other))),
        }
    }

    fn set_pipeline_window(&self, window: usize) {
        self.client.set_pipeline_window(window);
    }

    fn rpcs(&self) -> u64 {
        self.client.network_rpcs()
    }

    fn drop_caches(&self) {
        *self.cache.lock() = PageCache::default();
        self.names.lock().clear();
    }
}

fn split(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    }
}
