//! Table formatting and paper-vs-measured reporting.

use sfs_sim::SimTime;

/// One cell comparing a measurement with the paper's published value.
#[derive(Debug, Clone)]
pub struct Compared {
    /// Measured value.
    pub measured: f64,
    /// The paper's value, when published.
    pub paper: Option<f64>,
}

impl Compared {
    /// Builds a comparison.
    pub fn new(measured: f64, paper: Option<f64>) -> Self {
        Compared { measured, paper }
    }

    /// measured / paper, when the paper value exists.
    pub fn ratio(&self) -> Option<f64> {
        self.paper.map(|p| self.measured / p)
    }
}

/// A complete figure/table reproduction.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title ("Figure 5: micro-benchmarks").
    pub title: String,
    /// Unit of the cells ("µs", "MB/s", "s").
    pub unit: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: (label, cells).
    pub rows: Vec<(String, Vec<Compared>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, unit: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            unit: unit.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: &str, cells: Vec<Compared>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.to_string(), cells));
    }

    /// Renders the table with measured values and paper values side by
    /// side.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} (unit: {}) ==\n", self.title, self.unit));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(6))
            .max()
            .unwrap_or(8);
        out.push_str(&format!("{:label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" | {c:>22}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(label_w + self.columns.len() * 25));
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for cell in cells {
                let m = format_val(cell.measured);
                match cell.paper {
                    Some(p) => out.push_str(&format!(" | {m:>8} (paper {:>6})", format_val(p))),
                    None => out.push_str(&format!(" | {m:>8} {:>14}", "")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_val(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Seconds from a [`SimTime`], for table cells.
pub fn secs(t: SimTime) -> f64 {
    t.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_render() {
        let mut t = Table::new("Figure X", "s", &["total"]);
        t.push_row("NFS 3 (UDP)", vec![Compared::new(5.2, Some(5.3))]);
        t.push_row("SFS", vec![Compared::new(6.0, None)]);
        let c = &t.rows[0].1[0];
        assert!((c.ratio().unwrap() - 0.981).abs() < 0.01);
        let s = t.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("paper"));
        assert!(s.contains("SFS"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "s", &["a", "b"]);
        t.push_row("x", vec![Compared::new(1.0, None)]);
    }
}
