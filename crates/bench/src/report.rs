//! Table formatting and paper-vs-measured reporting.

use std::collections::BTreeMap;

use sfs_sim::SimTime;
use sfs_telemetry::Telemetry;

/// One cell comparing a measurement with the paper's published value.
#[derive(Debug, Clone)]
pub struct Compared {
    /// Measured value.
    pub measured: f64,
    /// The paper's value, when published.
    pub paper: Option<f64>,
}

impl Compared {
    /// Builds a comparison.
    pub fn new(measured: f64, paper: Option<f64>) -> Self {
        Compared { measured, paper }
    }

    /// measured / paper, when the paper value exists.
    pub fn ratio(&self) -> Option<f64> {
        self.paper.map(|p| self.measured / p)
    }
}

/// A complete figure/table reproduction.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title ("Figure 5: micro-benchmarks").
    pub title: String,
    /// Unit of the cells ("µs", "MB/s", "s").
    pub unit: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: (label, cells).
    pub rows: Vec<(String, Vec<Compared>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, unit: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            unit: unit.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: &str, cells: Vec<Compared>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.to_string(), cells));
    }

    /// Renders the table with measured values and paper values side by
    /// side.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} (unit: {}) ==\n", self.title, self.unit));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(6))
            .max()
            .unwrap_or(8);
        out.push_str(&format!("{:label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" | {c:>22}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(label_w + self.columns.len() * 25));
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for cell in cells {
                let m = format_val(cell.measured);
                match cell.paper {
                    Some(p) => out.push_str(&format!(" | {m:>8} (paper {:>6})", format_val(p))),
                    None => out.push_str(&format!(" | {m:>8} {:>14}", "")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_val(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Seconds from a [`SimTime`], for table cells.
pub fn secs(t: SimTime) -> f64 {
    t.as_secs_f64()
}

/// The NFS3 procedures the server keeps service-time histograms for, in
/// RFC 1813 procedure-number order (how the table lists them).
pub const NFS3_PROCS: &[&str] = &[
    "NULL",
    "GETATTR",
    "SETATTR",
    "LOOKUP",
    "ACCESS",
    "READLINK",
    "READ",
    "WRITE",
    "CREATE",
    "MKDIR",
    "SYMLINK",
    "REMOVE",
    "RMDIR",
    "RENAME",
    "LINK",
    "READDIR",
    "READDIRPLUS",
    "FSSTAT",
    "FSINFO",
    "PATHCONF",
    "COMMIT",
];

/// Renders the per-procedure NFS3 latency breakdown from a tracing
/// sink's histograms: one block per process (system/server), one row
/// per procedure in wire order, quantiles in microseconds. Integer-only
/// formatting, so two identical virtual-time runs render byte-identical
/// tables.
pub fn latency_table(tel: &Telemetry) -> String {
    let hists = tel.histograms();
    let mut by_proc: BTreeMap<String, Vec<(usize, &sfs_telemetry::Histogram)>> = BTreeMap::new();
    for (process, name, h) in &hists {
        if let Some(i) = NFS3_PROCS.iter().position(|n| n == name) {
            by_proc.entry(process.clone()).or_default().push((i, h));
        }
    }
    let mut out = String::new();
    out.push_str("== NFS3 per-procedure latency breakdown (unit: µs) ==\n");
    if by_proc.is_empty() {
        out.push_str("(no per-procedure histograms recorded — is tracing enabled?)\n");
        return out;
    }
    for (process, mut rows) in by_proc {
        rows.sort_by_key(|(i, _)| *i);
        out.push_str(&format!("\n{process}:\n"));
        out.push_str(&format!(
            "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "procedure", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for (i, h) in rows {
            out.push_str(&format!(
                "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                NFS3_PROCS[i],
                h.count(),
                us(h.mean()),
                us(h.quantile(0.5).unwrap_or(0)),
                us(h.quantile(0.9).unwrap_or(0)),
                us(h.quantile(0.99).unwrap_or(0)),
                us(h.max()),
            ));
        }
    }
    out.push_str(&shard_table(tel, &hists));
    out
}

/// Renders the multi-core shard breakdown when a `ShardEngine` recorded
/// any per-shard series: CPU busy time per simulated core
/// (`server.shard.busy_ticks`), the disk commit queue's depth high-water
/// mark (`server.shard.queue_depth`), and the group-commit batch-size
/// histogram (`server.disk.batch_size`). Empty string when no shard
/// engine ran, so single-core tables stay byte-identical.
fn shard_table(
    tel: &Telemetry,
    hists: &[(String, &'static str, sfs_telemetry::Histogram)],
) -> String {
    let mut busy: BTreeMap<String, u64> = BTreeMap::new();
    for (process, name, total) in tel.counters_snapshot() {
        if name == "server.shard.busy_ticks" {
            busy.insert(process, total);
        }
    }
    let mut queue_hwm: BTreeMap<String, u64> = BTreeMap::new();
    for (process, name, _current, hwm) in tel.gauges_snapshot() {
        if name == "server.shard.queue_depth" {
            queue_hwm.insert(process, hwm);
        }
    }
    let mut batches: BTreeMap<String, &sfs_telemetry::Histogram> = BTreeMap::new();
    for (process, name, h) in hists {
        if *name == "server.disk.batch_size" {
            batches.insert(process.clone(), h);
        }
    }
    let shards: std::collections::BTreeSet<&String> = busy
        .keys()
        .chain(queue_hwm.keys())
        .chain(batches.keys())
        .collect();
    if shards.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("\n== Multi-core shard breakdown ==\n");
    out.push_str(&format!(
        "  {:<24} {:>12} {:>10} {:>8} {:>11} {:>10}\n",
        "shard", "busy (µs)", "queue hwm", "batches", "batch mean", "batch max"
    ));
    for shard in shards {
        let (count, mean, max) = match batches.get(shard) {
            Some(h) => (
                h.count().to_string(),
                h.mean().to_string(),
                h.max().to_string(),
            ),
            None => ("0".into(), "-".into(), "-".into()),
        };
        out.push_str(&format!(
            "  {:<24} {:>12} {:>10} {:>8} {:>11} {:>10}\n",
            shard,
            us(busy.get(shard).copied().unwrap_or(0)),
            queue_hwm.get(shard).copied().unwrap_or(0),
            count,
            mean,
            max,
        ));
    }
    out
}

/// Nanoseconds rendered as decimal microseconds, integer math only.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_render() {
        let mut t = Table::new("Figure X", "s", &["total"]);
        t.push_row("NFS 3 (UDP)", vec![Compared::new(5.2, Some(5.3))]);
        t.push_row("SFS", vec![Compared::new(6.0, None)]);
        let c = &t.rows[0].1[0];
        assert!((c.ratio().unwrap() - 0.981).abs() < 0.01);
        let s = t.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("paper"));
        assert!(s.contains("SFS"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "s", &["a", "b"]);
        t.push_row("x", vec![Compared::new(1.0, None)]);
    }

    #[test]
    fn latency_table_orders_procedures_and_is_deterministic() {
        let render = || {
            let t = Telemetry::recording(sfs_telemetry::ZeroClock);
            t.record("NFS 3 (UDP)/server", "WRITE", 250_000);
            t.record("NFS 3 (UDP)/server", "GETATTR", 180_000);
            t.record("NFS 3 (UDP)/server", "GETATTR", 190_000);
            t.record("NFS 3 (UDP)/server", "not_a_proc", 1);
            latency_table(&t)
        };
        let s = render();
        assert_eq!(s, render());
        let getattr = s.find("GETATTR").unwrap();
        let write = s.find("WRITE").unwrap();
        assert!(getattr < write, "wire order: GETATTR before WRITE");
        assert!(!s.contains("not_a_proc"));
        assert!(s.contains("180.000"), "{s}");
    }

    #[test]
    fn latency_table_smoke_over_a_real_workload() {
        // End to end: run a little I/O through the kernel-NFS stack and
        // render the breakdown from the histograms the server recorded.
        let tel = Telemetry::recording(sfs_telemetry::ZeroClock);
        let scoped = tel.scoped("NFS 3 (UDP)");
        let (fs, _clock, prefix, _) =
            crate::calib::build_fs_chaos(crate::calib::System::NfsUdp, &scoped, None);
        let p = format!("{prefix}/smoke");
        fs.create(&p).unwrap();
        fs.write(&p, 0, b"breakdown").unwrap();
        fs.read(&p, 0, 9).unwrap();
        // `open` forces the close-to-open GETATTR regardless of the
        // attribute cache.
        fs.open(&p).unwrap();
        let s = latency_table(&tel);
        for proc in ["LOOKUP", "CREATE", "WRITE", "GETATTR"] {
            assert!(s.contains(proc), "missing {proc} in:\n{s}");
        }
        assert!(s.contains("NFS 3 (UDP)/server"));
    }

    #[test]
    fn latency_table_empty_without_tracing() {
        let s = latency_table(&Telemetry::disabled());
        assert!(s.contains("no per-procedure histograms"));
    }

    #[test]
    fn latency_table_surfaces_shard_series_when_present() {
        let t = Telemetry::recording(sfs_telemetry::ZeroClock);
        t.record("SFS/server", "READ", 90_000);
        // No shard series recorded: the shard section must not render,
        // so single-core tables stay byte-identical to the pre-shard
        // format.
        assert!(!latency_table(&t).contains("Multi-core shard breakdown"));

        t.count("SFS/shard0", "server.shard.busy_ticks", 1_250_000);
        t.count("SFS/shard1", "server.shard.busy_ticks", 980_000);
        t.gauge_set("SFS/shard0", "server.shard.queue_depth", 3);
        t.gauge_set("SFS/shard0", "server.shard.queue_depth", 1);
        t.record("SFS/shard0", "server.disk.batch_size", 4);
        t.record("SFS/shard0", "server.disk.batch_size", 2);
        let s = latency_table(&t);
        assert!(s.contains("Multi-core shard breakdown"), "{s}");
        assert!(s.contains("SFS/shard0"), "{s}");
        assert!(s.contains("SFS/shard1"), "{s}");
        // busy_ticks rendered in µs; queue hwm keeps the peak (3), not
        // the final level (1); batch stats come from the histogram.
        assert!(s.contains("1250.000"), "{s}");
        let shard0_row = s.lines().find(|l| l.contains("SFS/shard0")).unwrap();
        assert!(shard0_row.contains(" 3 "), "{shard0_row}");
        assert_eq!(s, latency_table(&t), "deterministic render");
    }
}
