//! `--trace <path>` support for the `fig*` binaries.
//!
//! Every figure binary accepts `--trace <path>`: when given, the run
//! records spans and counters from every layer (wire, disk, NFS3
//! procedures, secure channel, client caches) into one shared sink and
//! writes a Chrome `chrome://tracing` / Perfetto-compatible JSON file at
//! exit, plus a per-layer summary table on stdout. Without the flag the
//! sink is disabled and every instrumentation point is a no-op, so the
//! virtual-time results are unchanged.

use sfs_telemetry::{Telemetry, ZeroClock};

use crate::args::Args;

/// Command-line tracing options, parsed from `std::env::args`.
pub struct TraceOpt {
    path: Option<String>,
    tel: Telemetry,
}

impl TraceOpt {
    /// Parses `--trace <path>` (or `--trace=<path>`) from the process
    /// arguments via the shared [`Args`] parser.
    pub fn from_args() -> Self {
        Self::with_path(Args::from_env().opt("trace"))
    }

    /// Builds a [`TraceOpt`] directly (for tests).
    pub fn with_path(path: Option<String>) -> Self {
        // The base sink carries a zero clock: each instrumented component
        // re-stamps its handle with its own `SimClock` when attached, so
        // one sink can trace several simulated systems at once.
        let tel = if path.is_some() {
            Telemetry::recording(ZeroClock)
        } else {
            Telemetry::disabled()
        };
        TraceOpt { path, tel }
    }

    /// Whether tracing was requested.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// The shared sink (disabled when `--trace` was not given).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// A handle scoped to one benchmarked system: its process names are
    /// prefixed `label/…` so traces of several systems stay separable in
    /// the viewer.
    pub fn for_system(&self, label: &str) -> Telemetry {
        self.tel.scoped(label)
    }

    /// Writes the Chrome trace JSON (if `--trace` was given) and prints
    /// the per-layer summary table.
    pub fn finish(&self) {
        let Some(path) = &self.path else { return };
        let json = self.tel.chrome_trace();
        std::fs::write(path, &json)
            .unwrap_or_else(|e| panic!("failed to write trace to {path}: {e}"));
        println!("\n{}", self.tel.summary());
        println!(
            "trace written to {path} ({} bytes) — open in chrome://tracing",
            json.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_without_path() {
        let t = TraceOpt::with_path(None);
        assert!(!t.enabled());
        assert!(!t.telemetry().is_enabled());
        assert!(!t.for_system("sfs").is_enabled());
    }

    #[test]
    fn enabled_with_path_and_scopes_systems() {
        let t = TraceOpt::with_path(Some("/dev/null".into()));
        assert!(t.enabled());
        assert!(t.telemetry().is_tracing());
        let scoped = t.for_system("sfs");
        scoped.count("client", "x", 2);
        assert_eq!(scoped.counter("client", "x"), 2);
        // The scope prefixes the process name in the shared sink.
        assert_eq!(t.telemetry().counter("sfs/client", "x"), 2);
    }
}
