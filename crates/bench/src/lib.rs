//! Benchmark harness reproducing every table and figure in §4 of the SFS
//! paper.
//!
//! - [`kernel`]: the simulated kernel file-system layers — page cache,
//!   name cache, and attribute caching — over three stacks: the local FFS
//!   baseline, kernel NFS3 (UDP or TCP), and SFS;
//! - [`calib`]: testbed assembly with the calibrated Pentium III / 100
//!   Mbit cost model;
//! - [`workloads`]: the paper's workloads — the §4.2 micro-benchmarks, the
//!   Modified Andrew Benchmark (§4.3), the FreeBSD kernel build (§4.3),
//!   and the Sprite LFS small/large-file benchmarks (§4.4);
//! - [`report`]: table formatting and paper-vs-measured comparison.
//!
//! Each `fig*` binary regenerates one figure; `all_figures` runs
//! everything and prints the deltas recorded in EXPERIMENTS.md.

pub mod alloc_count;
pub mod args;
pub mod calib;
pub mod kernel;
pub mod microbench;
pub mod report;
pub mod scenario;
pub mod trace;
pub mod workloads;

pub use calib::{System, Testbed};
pub use kernel::FsBench;
