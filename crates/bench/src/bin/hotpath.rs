//! `hotpath`: the per-RPC data-path baseline.
//!
//! Measures the layers every sealed NFS3 RPC crosses — XDR encode,
//! secure-channel seal/open, and the full client↔server relay — and
//! reports three numbers per stage and payload size: wall-clock ns per
//! operation, throughput in MiB/s, and (the regression-proof one)
//! allocations per operation under a counting global allocator.
//!
//! Results land in `BENCH_hotpath.json` (see EXPERIMENTS.md for the
//! schema) so later PRs can diff against this baseline. `--smoke` runs a
//! few iterations with no timing claims and validates only the JSON
//! shape and the allocation invariants; CI runs that mode.
//!
//! Usage: `cargo run --release -p sfs-bench --bin hotpath [-- --smoke] [--out PATH]`

use std::sync::Arc;
use std::time::Instant;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bench::alloc_count::{count_allocs, CountingAlloc};
use sfs_bench::args::Args;
use sfs_bench::microbench;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{FileHandle, Nfs3Reply, Nfs3Request, StableHow};
use sfs_proto::channel::{SecureChannelEnd, SuiteId, FRAME_HEADER_LEN};
use sfs_proto::keyneg::SessionKeys;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, Vfs};
use sfs_xdr::XdrEncoder;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Payload sizes exercised at every stage (8 B … 8 KiB).
const PAYLOAD_SIZES: [usize; 5] = [8, 64, 512, 4096, 8192];

/// Iterations for allocation counting (exact, so few are enough).
const ALLOC_ITERS: u64 = 64;
const ALLOC_ITERS_SMOKE: u64 = 16;

/// Steady-state allocation ceilings validated in `--smoke` (and always).
/// The channel and encode stages must be allocation-free once buffers
/// are warm; the full relay crosses the VFS and NFS server so it keeps
/// a small budget. Measured after the direct-encode change (client
/// marshals `InnerCall::Nfs` straight into the pooled plaintext, the
/// server decrypts handles on the stack and borrows session
/// credentials): 7 allocs per GETATTR RPC and 9 per READ RPC (down
/// from 11/14, and from 36/39 before pooling). Raising these numbers
/// is a perf regression — justify it in the PR that does.
const MICRO_ALLOC_CEILING: f64 = 0.0;
const RELAY_GETATTR_ALLOC_CEILING: f64 = 8.0;
const RELAY_READ_ALLOC_CEILING: f64 = 12.0;

/// The negotiated AEAD fast path must beat the paper-baseline
/// ARC4+SHA-1 channel by at least this factor on the 8 KiB
/// seal+open round trip.
const CHACHA_MIN_SPEEDUP: f64 = 3.0;

struct Micro {
    name: &'static str,
    payload: usize,
    ns_per_op: u128,
    mib_per_s: f64,
    allocs_per_op: f64,
}

fn measure(name: &'static str, payload: usize, smoke: bool, mut f: impl FnMut()) -> Micro {
    for _ in 0..8 {
        f(); // warm buffers, caches, and freelists out of the measurement
    }
    let iters = if smoke {
        ALLOC_ITERS_SMOKE
    } else {
        ALLOC_ITERS
    };
    let (_, allocs) = count_allocs(|| {
        for _ in 0..iters {
            f();
        }
    });
    let allocs_per_op = allocs as f64 / iters as f64;
    let ns_per_op = if smoke {
        let t0 = Instant::now();
        for _ in 0..8 {
            f();
        }
        (t0.elapsed().as_nanos() / 8).max(1)
    } else {
        microbench::bench(&format!("{name}/{payload}B"), &mut f).max(1)
    };
    let mib_per_s = payload as f64 * 1e9 / ns_per_op as f64 / (1024.0 * 1024.0);
    println!("  {name:<24} {payload:>5} B   {ns_per_op:>9} ns/op   {mib_per_s:>9.1} MiB/s   {allocs_per_op:>7.2} allocs/op");
    Micro {
        name,
        payload,
        ns_per_op,
        mib_per_s,
        allocs_per_op,
    }
}

fn channel_pair(suite: SuiteId) -> (SecureChannelEnd, SecureChannelEnd) {
    let keys = SessionKeys {
        kcs: *b"hotpath-kcs-12345678",
        ksc: *b"hotpath-ksc-87654321",
        session_id: [7u8; 20],
    };
    (
        SecureChannelEnd::client_with_suite(&keys, suite),
        SecureChannelEnd::server_with_suite(&keys, suite),
    )
}

/// The full simulated SFS stack: server with one registered user, one
/// client with the user's key loaded, one 8 KiB file to read.
struct RelayWorld {
    client: Arc<SfsClient>,
    mount: Arc<sfs::client::Mount>,
    data_fh: FileHandle,
}

fn build_relay_world() -> RelayWorld {
    const UID: u32 = 1000;
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let bench_dir = vfs.mkdir_p("/bench").unwrap();
    vfs.setattr(
        &Credentials::root(),
        bench_dir,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            uid: Some(UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();

    let mut rng = XorShiftSource::new(0x407);
    let srp_group = SrpGroup::generate(128, &mut rng);
    let auth = Arc::new(AuthServer::new(srp_group, 2));
    let user_key = generate_keypair(512, &mut rng);
    auth.register_user(UserRecord {
        user: "bench".into(),
        uid: UID,
        gids: vec![100],
        public_key: user_key.public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("server.hotpath"),
        generate_keypair(768, &mut rng),
        vfs,
        auth,
        SfsPrg::from_entropy(b"hotpath-server"),
    );
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::new(net, b"hotpath-client");
    client.agent(UID).lock().add_key(user_key);

    let path = server.path();
    let mount = client.mount(UID, path).expect("mount");
    let data = vec![0xABu8; *PAYLOAD_SIZES.last().unwrap()];
    client
        .write_file(UID, &format!("{}/bench/data", path.full_path()), &data)
        .expect("write data file");
    let (_, data_fh, _) = client
        .resolve(UID, &format!("{}/bench/data", path.full_path()))
        .expect("resolve data file");
    // Every measured RPC must cross the wire, not the attribute cache.
    client.set_caching(false);
    RelayWorld {
        client,
        mount,
        data_fh,
    }
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn write_json(path: &str, mode: &str, micros: &[Micro]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/hotpath/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"unit\": {\"ns_per_op\": \"nanoseconds\", \"mib_per_s\": \"MiB/s\", \"allocs_per_op\": \"heap allocations\"},\n");
    out.push_str("  \"benches\": [\n");
    for (i, m) in micros.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"payload_bytes\": {}, \"ns_per_op\": {}, \"mib_per_s\": {:.2}, \"allocs_per_op\": {:.3}}}{}\n",
            json_escape_free(m.name),
            m.payload,
            m.ns_per_op,
            m.mib_per_s,
            m.allocs_per_op,
            if i + 1 == micros.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let args = Args::from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = args
        .opt("out")
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let mut micros: Vec<Micro> = Vec::new();

    println!("== hotpath: XDR encode ==");
    // One reused encoder; `reset` keeps the allocation.
    let fh = FileHandle(vec![0x42; 32]);
    for n in PAYLOAD_SIZES {
        let req = Nfs3Request::Write {
            fh: fh.clone(),
            offset: 0,
            stable: StableHow::FileSync,
            data: vec![0x5A; n],
        };
        let mut enc = XdrEncoder::new();
        micros.push(measure("encode_write", n, smoke, || {
            enc.reset();
            req.encode_args_into(&mut enc);
            std::hint::black_box(enc.bytes().len());
        }));
    }

    // Both negotiable suites sweep the same stages: `seal_into` /
    // `seal_open_roundtrip` keep their historical names for the
    // paper-baseline ARC4+SHA-1 channel so JSON diffs line up across
    // PRs; the chacha20-poly1305 fast path lands under a `chacha_`
    // prefix.
    for (prefix, suite) in [
        ("", SuiteId::Arc4Sha1),
        ("chacha_", SuiteId::ChaCha20Poly1305),
    ] {
        println!("== hotpath: secure channel ({}) ==", suite.label());
        let seal_name: &'static str = if prefix.is_empty() {
            "seal_into"
        } else {
            "chacha_seal_into"
        };
        let rt_name: &'static str = if prefix.is_empty() {
            "seal_open_roundtrip"
        } else {
            "chacha_seal_open_roundtrip"
        };
        for n in PAYLOAD_SIZES {
            let (mut tx, _) = channel_pair(suite);
            let payload = vec![0x33u8; n];
            let mut buf: Vec<u8> = Vec::new();
            micros.push(measure(seal_name, n, smoke, || {
                buf.clear();
                buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
                buf.extend_from_slice(&payload);
                tx.seal_into(&mut buf, 0).expect("seal");
                std::hint::black_box(buf.len());
            }));
        }
        for n in PAYLOAD_SIZES {
            let (mut tx, mut rx) = channel_pair(suite);
            let payload = vec![0x44u8; n];
            let mut buf: Vec<u8> = Vec::new();
            micros.push(measure(rt_name, n, smoke, || {
                buf.clear();
                buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
                buf.extend_from_slice(&payload);
                tx.seal_into(&mut buf, 0).expect("seal");
                let plain = rx.open_in_place(&mut buf).expect("open");
                std::hint::black_box(plain.len());
            }));
        }
    }

    println!("== hotpath: sealed NFS3 relay ==");
    let world = build_relay_world();
    micros.push(measure("relay_getattr", 8, smoke, || {
        let attr = world
            .client
            .getattr(&world.mount, 1000, &world.data_fh)
            .expect("getattr");
        std::hint::black_box(attr.size);
    }));
    for n in PAYLOAD_SIZES {
        micros.push(measure("relay_read", n, smoke, || {
            let reply = world
                .client
                .call_nfs(
                    &world.mount,
                    1000,
                    &Nfs3Request::Read {
                        fh: world.data_fh.clone(),
                        offset: 0,
                        count: n as u32,
                    },
                )
                .expect("read");
            match reply {
                Nfs3Reply::Read { data, .. } => assert_eq!(data.len(), n),
                other => panic!("unexpected reply {other:?}"),
            }
        }));
    }

    write_json(&out_path, if smoke { "smoke" } else { "full" }, &micros);

    // Allocation invariants: exact counts, so they hold in smoke mode too.
    let mut failures = Vec::new();
    for m in &micros {
        let ceiling = match m.name {
            "relay_getattr" => RELAY_GETATTR_ALLOC_CEILING,
            // READ replies materialise the payload on both sides of the
            // relay, so reads carry a few more per-RPC allocations.
            "relay_read" => RELAY_READ_ALLOC_CEILING,
            _ => MICRO_ALLOC_CEILING,
        };
        if m.allocs_per_op > ceiling {
            failures.push(format!(
                "{}/{}B: {:.2} allocs/op exceeds ceiling {:.2}",
                m.name, m.payload, m.allocs_per_op, ceiling
            ));
        }
    }
    if failures.is_empty() {
        println!("allocation invariants OK");
    } else {
        for f in &failures {
            eprintln!("allocation regression: {f}");
        }
        std::process::exit(1);
    }

    // Suite-sweep invariant: the chacha fast path must hold its speedup
    // over the paper baseline at the largest payload. The gap is wide
    // enough (an order of magnitude in practice) that even the
    // low-iteration smoke timing clears the bar with margin.
    let rt_ns = |name: &str| {
        micros
            .iter()
            .find(|m| m.name == name && m.payload == 8192)
            .map(|m| m.ns_per_op as f64)
            .expect("8 KiB roundtrip measured")
    };
    let speedup = rt_ns("seal_open_roundtrip") / rt_ns("chacha_seal_open_roundtrip");
    println!("chacha 8KiB seal+open speedup over arc4-sha1: {speedup:.1}x");
    if speedup < CHACHA_MIN_SPEEDUP {
        eprintln!(
            "suite regression: chacha20-poly1305 8 KiB roundtrip is only \
             {speedup:.2}x the arc4-sha1 baseline (floor {CHACHA_MIN_SPEEDUP}x)"
        );
        std::process::exit(1);
    }
}
