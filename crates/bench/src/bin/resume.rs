//! `resume`: the post-restart reconnect storm — session-resumption
//! tickets against the full Figure-3 re-handshake.
//!
//! A fleet of clients, each on its own virtual clock, mounts one
//! server, banks a resumption ticket per session, and keeps working.
//! The server then crash-restarts (all session state gone; only its
//! private key survives, and with it the ticket-sealing key), and the
//! whole fleet reconnects at once through the first post-restart
//! operation. The experiment runs twice:
//!
//! - **resumed** arm: tickets on — every reconnect should present its
//!   banked single-use ticket and pay one round trip;
//! - **full-handshake** arm: `set_resumption(false)` — every reconnect
//!   repeats the 2-RT key negotiation, Rabin decryption included.
//!
//! Self-asserting envelope (exit nonzero on regression):
//!
//! - ≥ 90% of the resumed arm's reconnects are ticket hits (here every
//!   client banked a ticket, so anything less means the machinery
//!   dropped some);
//! - the resumed arm's **worst-client** storm latency beats the
//!   full-handshake arm's — the tail is what a restart storm is about;
//! - the entire experiment, rerun from fresh worlds, reproduces every
//!   row byte-for-byte (virtual time: same storm, same nanoseconds).
//!
//! Options: `--suite NAME` (default `chacha20-poly1305`), `--clients N`
//! (default 64, smoke 8), `--smoke`, `--out PATH` (default
//! `BENCH_resume.json`).

use std::sync::{Arc, OnceLock};

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bench::args::Args;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::channel::SuiteId;
use sfs_sim::{CpuCosts, NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, Vfs};

const BENCH_UID: u32 = 4242;

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x7E5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x7E6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x7E7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

struct Member {
    clock: SimClock,
    client: Arc<SfsClient>,
    path: String,
}

/// One server, `clients` fleet members each on an independent clock and
/// network (a restart storm is many machines reconnecting at once, not
/// one shared timeline).
fn build_fleet(clients: usize, suite: SuiteId, resumption: bool) -> (Arc<SfsServer>, Vec<Member>) {
    let server_clock = SimClock::new();
    let vfs = Vfs::new(7, server_clock);
    let root = Credentials::root();
    let dir = vfs.mkdir_p("/bench").unwrap();
    vfs.setattr(
        &root,
        dir,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            uid: Some(BENCH_UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "bench".into(),
        uid: BENCH_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("resume.bench"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"resume-bench-server"),
    );
    let prefix = format!("{}/bench", server.path().full_path());
    let fleet = (0..clients)
        .map(|c| {
            let clock = SimClock::new();
            let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
            net.register(server.clone());
            let client = SfsClient::with_costs(
                net,
                format!("resume-client-{c}").as_bytes(),
                CpuCosts::pentium_iii_550(),
            );
            client.set_suite_offer(&[suite]);
            client.set_resumption(resumption);
            client.install_agent_key(BENCH_UID, user_key());
            Member {
                clock,
                client,
                path: format!("{prefix}/f{c}"),
            }
        })
        .collect();
    (server, fleet)
}

struct ArmResult {
    arm: &'static str,
    clients: usize,
    hits: u64,
    misses: u64,
    rejected: u64,
    reconnects: u64,
    storm_rts: u64,
    worst_ns: u64,
    mean_ns: u64,
}

/// Runs one arm: warm the fleet (mount + bank tickets), crash-restart
/// the server, then drive every client through one post-restart write —
/// the reconnect storm — measuring each client's latency on its own
/// clock.
fn run_arm(arm: &'static str, clients: usize, suite: SuiteId, resumption: bool) -> ArmResult {
    let (server, fleet) = build_fleet(clients, suite, resumption);
    for (c, m) in fleet.iter().enumerate() {
        let body = format!("warm-{c}");
        m.client
            .write_file(BENCH_UID, &m.path, body.as_bytes())
            .unwrap();
    }
    let rts_before: u64 = fleet
        .iter()
        .map(|m| {
            let (mount, _, _) = m.client.resolve(BENCH_UID, &m.path).unwrap();
            mount.round_trips()
        })
        .sum();

    server.crash_restart();

    let mut latencies: Vec<u64> = Vec::with_capacity(clients);
    for (c, m) in fleet.iter().enumerate() {
        let start = m.clock.now().as_nanos();
        let body = format!("storm-{c}");
        m.client
            .write_file(BENCH_UID, &m.path, body.as_bytes())
            .unwrap();
        latencies.push(m.clock.now().as_nanos() - start);
    }

    let (mut hits, mut misses, mut rejected, mut reconnects, mut rts_after) = (0, 0, 0, 0, 0u64);
    for m in &fleet {
        let (h, mi, rj) = m.client.resume_stats();
        hits += h;
        misses += mi;
        rejected += rj;
        let (mount, _, _) = m.client.resolve(BENCH_UID, &m.path).unwrap();
        reconnects += mount.reconnects();
        rts_after += mount.round_trips();
    }
    let worst_ns = *latencies.iter().max().unwrap();
    let mean_ns = latencies.iter().sum::<u64>() / clients as u64;
    ArmResult {
        arm,
        clients,
        hits,
        misses,
        rejected,
        reconnects,
        storm_rts: rts_after - rts_before,
        worst_ns,
        mean_ns,
    }
}

fn encode_rows(rows: &[ArmResult]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"clients\": {}, \"ticket_hits\": {}, \"ticket_misses\": {}, \"ticket_rejected\": {}, \"reconnects\": {}, \"storm_round_trips\": {}, \"worst_client_ns\": {}, \"mean_client_ns\": {}}}{}\n",
            r.arm,
            r.clients,
            r.hits,
            r.misses,
            r.rejected,
            r.reconnects,
            r.storm_rts,
            r.worst_ns,
            r.mean_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out
}

fn run_experiment(clients: usize, suite: SuiteId) -> Vec<ArmResult> {
    vec![
        run_arm("resumed", clients, suite, true),
        run_arm("full-handshake", clients, suite, false),
    ]
}

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["suite", "clients", "out"], &["smoke"]);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let suite = match args.opt("suite") {
        None => SuiteId::ChaCha20Poly1305,
        Some(label) => SuiteId::parse(&label).unwrap_or_else(|| {
            eprintln!("resume: unknown suite {label:?} (arc4-sha1 | chacha20-poly1305)");
            std::process::exit(2)
        }),
    };
    let clients: usize = args
        .opt("clients")
        .map(|v| v.parse().expect("--clients takes a number"))
        .unwrap_or(if smoke { 8 } else { 64 });
    let out_path = args
        .opt("out")
        .unwrap_or_else(|| "BENCH_resume.json".into());

    println!(
        "== resume: {clients}-client post-restart reconnect storm ({}) ==",
        suite.label()
    );
    let rows = run_experiment(clients, suite);
    let encoded = encode_rows(&rows);
    // Same storm from fresh worlds must reproduce every row
    // byte-for-byte — virtual time leaves nothing for the host to vary.
    let again = encode_rows(&run_experiment(clients, suite));
    if encoded != again {
        eprintln!("FAIL: reconnect storm is not deterministic across reruns");
        eprintln!("--- first ---\n{encoded}--- second ---\n{again}");
        std::process::exit(1);
    }

    for r in &rows {
        println!(
            "  {:>14}: {} reconnects, tickets {}h/{}m/{}r, {} storm RTs, worst client {:.1} µs, mean {:.1} µs",
            r.arm,
            r.reconnects,
            r.hits,
            r.misses,
            r.rejected,
            r.storm_rts,
            r.worst_ns as f64 / 1_000.0,
            r.mean_ns as f64 / 1_000.0,
        );
    }

    let resumed = &rows[0];
    let control = &rows[1];
    if resumed.reconnects != clients as u64 || control.reconnects != clients as u64 {
        eprintln!("FAIL: every client must reconnect exactly once after the restart");
        std::process::exit(1);
    }
    let hit_rate = resumed.hits as f64 / resumed.reconnects as f64;
    if hit_rate < 0.90 {
        eprintln!(
            "FAIL: ticket-resume hit rate {:.0}% is below the 90% floor ({} hits / {} reconnects)",
            hit_rate * 100.0,
            resumed.hits,
            resumed.reconnects
        );
        std::process::exit(1);
    }
    if control.hits != 0 {
        eprintln!("FAIL: the full-handshake arm must never touch the ticket machinery");
        std::process::exit(1);
    }
    if resumed.worst_ns >= control.worst_ns {
        eprintln!(
            "FAIL: resumed worst-client latency {} ns must beat the full-handshake arm's {} ns",
            resumed.worst_ns, control.worst_ns
        );
        std::process::exit(1);
    }
    if resumed.storm_rts + resumed.reconnects != control.storm_rts {
        eprintln!(
            "FAIL: each resumed reconnect must save exactly one round trip \
             (resumed {} RTs + {} reconnects != control {} RTs)",
            resumed.storm_rts, resumed.reconnects, control.storm_rts
        );
        std::process::exit(1);
    }
    println!(
        "resume storm: {:.0}% ticket hits; worst client {:.1} µs vs {:.1} µs full handshake ({:.2}x)",
        hit_rate * 100.0,
        resumed.worst_ns as f64 / 1_000.0,
        control.worst_ns as f64 / 1_000.0,
        control.worst_ns as f64 / resumed.worst_ns as f64
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/resume/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"suite\": \"{}\",\n", suite.label()));
    out.push_str("  \"hit_rate_floor\": 0.90,\n");
    out.push_str(&format!("  \"hit_rate\": {hit_rate:.4},\n"));
    out.push_str(
        "  \"determinism\": \"both arms reran from fresh worlds; every row was byte-identical\",\n",
    );
    out.push_str("  \"rows\": [\n");
    out.push_str(&encoded);
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, out).unwrap_or_else(|e| {
        eprintln!("resume: write {out_path}: {e}");
        std::process::exit(2)
    });
    println!("wrote {out_path}");
}
