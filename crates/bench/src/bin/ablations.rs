//! §4.3's ablation experiments:
//!
//! - "Without enhanced caching, MAB takes a total of 6.6 seconds, 0.7
//!   seconds slower than with caching and 1.3 seconds slower than NFS 3
//!   over UDP."
//! - "We disabled encryption in SFS and observed only an 0.2 second
//!   performance improvement [on MAB]."
//! - "Disabling software encryption in SFS sped up the \[kernel\] compile
//!   by only 3 seconds or 1.5%."
//! - (Figure 8) "without attribute caching SFS performs 1 second worse
//!   [than NFS 3 on the LFS create phase]."

use sfs_bench::calib::{build_fs_traced, System};
use sfs_bench::report::secs;
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{kernel_build, lfs_small, mab, total, KernelBuildConfig, MabConfig};

fn mab_total(trace: &TraceOpt, system: System) -> f64 {
    let tel = trace.for_system(&format!("mab/{}", system.label()));
    let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
    secs(total(&mab(fs.as_ref(), &prefix, &MabConfig::default())))
}

fn main() {
    let trace = TraceOpt::from_args();
    println!("== Ablations (§4.3, §4.4) ==\n");

    let sfs = mab_total(&trace, System::Sfs);
    let nocache = mab_total(&trace, System::SfsNoCache);
    let noenc = mab_total(&trace, System::SfsNoEncrypt);
    let nfs = mab_total(&trace, System::NfsUdp);
    println!("MAB totals (s):");
    println!("  NFS 3 (UDP)                {nfs:6.2}");
    println!("  SFS                        {sfs:6.2}");
    println!(
        "  SFS w/o enhanced caching   {nocache:6.2}   (paper: 6.6; +{:.1}s over SFS, paper +0.7)",
        nocache - sfs
    );
    println!(
        "  SFS w/o encryption         {noenc:6.2}   (paper: SFS −0.2; measured −{:.1}s)",
        sfs - noenc
    );

    println!("\nLFS small-file create phase (s):");
    for system in [System::NfsUdp, System::Sfs, System::SfsNoCache] {
        let tel = trace.for_system(&format!("lfs/{}", system.label()));
        let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
        let phases = lfs_small(fs.as_ref(), &prefix, 1000);
        let create = phases.iter().find(|p| p.name == "create").unwrap();
        println!("  {:26} {:6.2}", system.label(), secs(create.time));
    }
    println!("  (paper: SFS ≈ NFS; w/o attribute caching ≈ 1 s worse)");

    println!("\nKernel compile (s):");
    let cfg = KernelBuildConfig::default();
    for (system, note) in [
        (System::Sfs, ""),
        (System::SfsNoEncrypt, "(paper: 3 s / 1.5% faster than SFS)"),
    ] {
        let tel = trace.for_system(&format!("kernel/{}", system.label()));
        let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
        let t = kernel_build(fs.as_ref(), &prefix, &cfg);
        println!("  {:26} {:6.1} {note}", system.label(), secs(t));
    }
    trace.finish();
}
