//! `failover`: time-to-recover and cold-start stampede cost for the
//! replicated write path.
//!
//! Two phases, one story: what does a primary crash cost the clients,
//! and what keeps the recovery itself from becoming the next outage?
//!
//! **Phase A — recovery.** The full stack, for real: a three-member
//! [`sfs_relay::ReplGroup`] (quorum 2) behind the relay, one client
//! streaming durable one-byte appends. Mid-burst the bench kills the
//! primary outright. The next append rides the client's transparent
//! reconnect through the relay, which observes the epoch bump, promotes
//! the most-caught-up backup (replaying its log first), and serves the
//! retried call. Time-to-recover is that one op's virtual-time cost;
//! the bench asserts it stays inside a fixed envelope and — the
//! acknowledged-commit guarantee — that not one acked byte is missing
//! afterwards.
//!
//! **Phase B — stampede.** When a whole replica set restarts, every
//! client redials at once and each admission costs the server a
//! private-key operation (§3.4: the Rabin decryption dominating SFS
//! connection setup). The storm is a deterministic processor-sharing
//! model over [`sfs_sim::ChurnSchedule`] reconnect waves: concurrent
//! rekeys timeslice the primary's one key CPU, and a handshake that
//! joins an already-busy server pays a *convoy penalty* on top — its
//! RPCs ride a queue deep enough to time out and retransmit, so its
//! total work grows with the number of rekeys already in flight. That
//! superlinearity is the whole case for admission control: a wave
//! admitted whole costs more total CPU than the same wave admitted in
//! file. Run once uncontrolled and once behind the relay's production
//! [`sfs_relay::AdmissionControl`] token bucket (throttled dials retry
//! on a fixed tick, exactly like `ClientError::Busy`). The bench
//! asserts the controlled storm's worst-client latency beats the
//! uncontrolled stampede, and that both phases reproduce byte-for-byte
//! when rerun.
//!
//! Results land in `BENCH_failover.json`; `--smoke` shrinks both phases
//! for CI. `--faults <spec>` threads a fault plan through Phase A's
//! wire (the recovery envelope and the rerun-determinism check are
//! skipped — a stateful plan shared across reruns legitimately
//! diverges — and the fault envelope is asserted instead).
//!
//! Usage: `cargo run --release -p sfs-bench --bin failover [-- --smoke] [--out PATH] [--faults SPEC]`

use std::sync::Arc;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bench::args::{Args, FaultOpt};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{Nfs3Reply, Nfs3Request, StableHow};
use sfs_relay::{AdmissionControl, ReplGroup};
use sfs_sim::{
    ChurnSchedule, DiskParams, FaultPlan, JournalDisk, NetParams, SimClock, SimDisk, SimTime,
    Transport,
};
use sfs_vfs::{Credentials, Vfs};

const LOCATION: &str = "sfs.lcs.mit.edu";
const ALICE_UID: u32 = 1000;

/// Replica-group shape in both phases.
const MEMBERS: usize = 3;
const QUORUM: usize = 2;

/// Phase A: appends in the burst; the primary dies halfway through.
const WRITES_FULL: usize = 32;
const WRITES_SMOKE: usize = 12;

/// Phase A envelope: promotion + reconnect + replay must fit here.
const RECOVERY_BOUND_NS: u64 = 1_000_000_000;

/// Phase B: the redialling population and its churn waves.
const STORM_CLIENTS_FULL: usize = 24;
const STORM_WAVES_FULL: usize = 4;
const STORM_CLIENTS_SMOKE: usize = 8;
const STORM_WAVES_SMOKE: usize = 2;

/// Server-side cost of admitting one cold client onto an idle server:
/// the private-key (Rabin) decryption in the session-key negotiation,
/// plus the handshake's wire round trips.
const HANDSHAKE_WORK_NS: u64 = 26_000_000;

/// Convoy penalty, per rekey already in flight at admission, in
/// per-mille of [`HANDSHAKE_WORK_NS`]: joining a server with `k`
/// handshakes running costs `(1 + k/2)×` the idle-server work, because
/// the newcomer's RPCs queue long enough to time out and retransmit.
const CONVOY_PM: u64 = 500;

/// Token bucket for the controlled runs; throttled dials retry on a
/// fixed tick (the client's `Busy` backoff, simplified to its floor).
const ADMIT_CAPACITY_FULL: u64 = 4;
const ADMIT_CAPACITY_SMOKE: u64 = 2;
const ADMIT_REFILL_PER_SEC: u64 = 25;
const RETRY_TICK_NS: u64 = 20_000_000;

#[derive(Debug, Clone, PartialEq)]
struct RecoveryRow {
    writes: usize,
    baseline_max_ns: u64,
    recovery_ns: u64,
    promotions: u64,
    commit_lsn: u64,
    reconnects: u64,
    lost_acked_writes: u64,
    total_ns: u64,
}

/// Phase A, end to end on the real stack.
fn run_recovery(writes: usize, plan: Option<&FaultPlan>) -> RecoveryRow {
    let clock = SimClock::new();
    let mut rng = XorShiftSource::new(0xFA11);
    let key = generate_keypair(768, &mut rng);
    let user = generate_keypair(512, &mut rng);
    let ephemeral = generate_keypair(768, &mut rng);
    let srp = SrpGroup::generate(128, &mut rng);

    let auth = Arc::new(AuthServer::new(srp, 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user.public().to_bytes(),
    });

    let member_vfs = || {
        let vfs = Vfs::new(7, clock.clone());
        let public = vfs.mkdir_p("/public").unwrap();
        vfs.setattr(
            &Credentials::root(),
            public,
            sfs_vfs::SetAttr {
                mode: Some(0o777),
                ..Default::default()
            },
        )
        .unwrap();
        vfs
    };
    let mut servers = Vec::new();
    for r in 0..MEMBERS {
        let mut config = ServerConfig::new(LOCATION);
        config.lease_ns = 250_000_000;
        servers.push(SfsServer::new(
            config,
            key.clone(),
            member_vfs(),
            auth.clone(),
            SfsPrg::from_entropy(format!("failover-bench-server-{r}").as_bytes()),
        ));
    }
    let group = ReplGroup::new(servers[0].path().clone(), clock.clone(), QUORUM);
    for (r, server) in servers.iter().enumerate() {
        let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
        group.add_member(
            server.clone(),
            JournalDisk::new(disk, (0x200 + r as u64) << 32),
        );
    }
    let path = group.path().clone();

    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    if let Some(p) = plan {
        net.set_fault_plan(p.clone());
    }
    net.register_relay(&path.location, group.clone());

    let client = SfsClient::with_ephemeral(net, b"failover-bench-client", ephemeral);
    client.install_agent_key(ALICE_UID, user);
    let mount = client.mount(ALICE_UID, &path).unwrap();
    let file = format!("{}/public/burst", path.full_path());
    client.write_file(ALICE_UID, &file, b"").unwrap();
    let (_, fh, _) = client.resolve(ALICE_UID, &file).unwrap();

    let mut expected = Vec::new();
    let mut baseline_max_ns = 0u64;
    let mut recovery_ns = 0u64;
    for k in 0..writes {
        if k == writes / 2 {
            // The primary dies between two acked appends of the burst.
            group.member_server(0).crash_restart();
        }
        let byte = b'a' + (k % 26) as u8;
        let t0 = clock.now().as_nanos();
        let reply = client
            .call_nfs(
                &mount,
                ALICE_UID,
                &Nfs3Request::Write {
                    fh: fh.clone(),
                    offset: expected.len() as u64,
                    stable: StableHow::FileSync,
                    data: vec![byte],
                },
            )
            .unwrap();
        assert!(matches!(reply, Nfs3Reply::Write { count: 1, .. }));
        expected.push(byte);
        let dt = clock.now().as_nanos() - t0;
        if k == writes / 2 {
            recovery_ns = dt;
        } else if k < writes / 2 {
            baseline_max_ns = baseline_max_ns.max(dt);
        }
    }

    // The acknowledged-commit guarantee, audited byte-for-byte: the
    // promoted backup serves every acked append, in order.
    let served = client.read_file(ALICE_UID, &file).unwrap();
    let lost = expected.len().saturating_sub(
        served
            .iter()
            .zip(expected.iter())
            .take_while(|(a, b)| a == b)
            .count(),
    ) as u64;
    assert_eq!(
        served, expected,
        "the promoted backup must serve exactly the acked history"
    );
    RecoveryRow {
        writes,
        baseline_max_ns,
        recovery_ns,
        promotions: group.promotions(),
        commit_lsn: group.commit_lsn(),
        reconnects: mount.reconnects(),
        lost_acked_writes: lost,
        total_ns: clock.now().as_nanos(),
    }
}

#[derive(Debug, Clone, PartialEq)]
struct StormRow {
    admission: bool,
    clients: usize,
    waves: usize,
    worst_client_ns: u64,
    mean_client_ns: u64,
    throttled: u64,
    completed: usize,
    total_ns: u64,
}

/// Phase B: a deterministic processor-sharing storm. Every in-flight
/// rekey timeslices the primary's single key CPU, and a handshake
/// admitted onto a busy server is inflated by [`CONVOY_PM`] per rekey
/// already running; the token bucket trades a short queueing delay for
/// never forming that convoy.
fn run_storm(m: usize, schedule: &ChurnSchedule, admission: Option<&AdmissionControl>) -> StormRow {
    let waves = schedule.waves();
    let mut arrival: Vec<Option<u64>> = vec![None; m];
    for (w, wave) in waves.iter().enumerate() {
        for (c, slot) in arrival.iter_mut().enumerate() {
            if slot.is_none() && schedule.selects(w, c) {
                *slot = Some(wave.at.as_nanos());
            }
        }
    }
    // Anyone the waves never picked redials in the last wave: the storm
    // must account for the whole population.
    let last_wave = waves.last().map(|w| w.at.as_nanos()).unwrap_or(0);
    let arrivals: Vec<u64> = arrival
        .into_iter()
        .map(|a| a.unwrap_or(last_wave))
        .collect();

    struct Flight {
        client: usize,
        remaining_ns: u64,
    }
    let mut pending: Vec<(u64, usize)> = arrivals.iter().copied().zip(0..m).collect();
    pending.sort_unstable();
    pending.reverse(); // pop earliest from the back
    let mut retry: Vec<(u64, usize)> = Vec::new();
    let mut in_flight: Vec<Flight> = Vec::new();
    let mut done = vec![0u64; m];
    let mut throttled = 0u64;
    let mut now = 0u64;

    loop {
        let t_arrival = pending.last().map(|&(t, _)| t);
        let t_retry = retry.iter().map(|&(t, _)| t).min();
        let t_finish = in_flight
            .iter()
            .map(|f| f.remaining_ns)
            .min()
            .map(|w| now + w.saturating_mul(in_flight.len() as u64));
        let Some(next) = [t_arrival, t_retry, t_finish].into_iter().flatten().min() else {
            break;
        };
        if next > now && !in_flight.is_empty() {
            // Processor sharing: k concurrent rekeys each progress at 1/k.
            let share = (next - now) / in_flight.len() as u64;
            for f in &mut in_flight {
                f.remaining_ns = f.remaining_ns.saturating_sub(share);
            }
        }
        now = next;
        in_flight.retain(|f| {
            if f.remaining_ns == 0 {
                done[f.client] = now;
                false
            } else {
                true
            }
        });
        let mut due: Vec<usize> = Vec::new();
        while pending.last().is_some_and(|&(t, _)| t <= now) {
            due.push(pending.pop().unwrap().1);
        }
        retry.retain(|&(t, c)| {
            if t <= now {
                due.push(c);
                false
            } else {
                true
            }
        });
        due.sort_unstable();
        for c in due {
            let admitted = admission
                .map(|ac| ac.admit(SimTime::from_micros(now / 1_000)))
                .unwrap_or(true);
            if admitted {
                let convoy = in_flight.len() as u64 * CONVOY_PM;
                in_flight.push(Flight {
                    client: c,
                    remaining_ns: HANDSHAKE_WORK_NS * (1000 + convoy) / 1000,
                });
            } else {
                throttled += 1;
                retry.push((now + RETRY_TICK_NS, c));
            }
        }
    }

    let latencies: Vec<u64> = done
        .iter()
        .zip(arrivals.iter())
        .map(|(&d, &a)| d.saturating_sub(a))
        .collect();
    assert!(
        done.iter().all(|&d| d > 0),
        "every redialling client must eventually be admitted and finish"
    );
    StormRow {
        admission: admission.is_some(),
        clients: m,
        waves: waves.len(),
        worst_client_ns: latencies.iter().copied().max().unwrap_or(0),
        mean_client_ns: latencies.iter().sum::<u64>() / m.max(1) as u64,
        throttled,
        completed: done.len(),
        total_ns: now,
    }
}

fn write_json(path: &str, mode: &str, capacity: u64, recovery: &RecoveryRow, storms: &[StormRow]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/failover/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"replication\": {{\"members\": {MEMBERS}, \"quorum\": {QUORUM}}},\n"
    ));
    out.push_str(&format!(
        "  \"admission\": {{\"capacity\": {capacity}, \"refill_per_sec\": {ADMIT_REFILL_PER_SEC}, \"retry_tick_ns\": {RETRY_TICK_NS}, \"handshake_work_ns\": {HANDSHAKE_WORK_NS}, \"convoy_pm\": {CONVOY_PM}}},\n"
    ));
    out.push_str("  \"unit\": {\"*_ns\": \"nanoseconds of virtual time\"},\n");
    out.push_str(&format!(
        "  \"recovery\": {{\"writes\": {}, \"baseline_max_ns\": {}, \"recovery_ns\": {}, \"promotions\": {}, \"commit_lsn\": {}, \"reconnects\": {}, \"lost_acked_writes\": {}, \"total_ns\": {}}},\n",
        recovery.writes,
        recovery.baseline_max_ns,
        recovery.recovery_ns,
        recovery.promotions,
        recovery.commit_lsn,
        recovery.reconnects,
        recovery.lost_acked_writes,
        recovery.total_ns,
    ));
    out.push_str("  \"storm\": [\n");
    for (i, s) in storms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"admission\": {}, \"clients\": {}, \"waves\": {}, \"worst_client_ns\": {}, \"mean_client_ns\": {}, \"throttled\": {}, \"completed\": {}, \"total_ns\": {}}}{}\n",
            s.admission,
            s.clients,
            s.waves,
            s.worst_client_ns,
            s.mean_client_ns,
            s.throttled,
            s.completed,
            s.total_ns,
            if i + 1 == storms.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["out", "faults"], &["smoke"]);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let faults = FaultOpt::from_args();
    let out_path = args
        .opt("out")
        .unwrap_or_else(|| "BENCH_failover.json".into());
    let (writes, storm_clients, storm_waves, capacity) = if smoke {
        (
            WRITES_SMOKE,
            STORM_CLIENTS_SMOKE,
            STORM_WAVES_SMOKE,
            ADMIT_CAPACITY_SMOKE,
        )
    } else {
        (
            WRITES_FULL,
            STORM_CLIENTS_FULL,
            STORM_WAVES_FULL,
            ADMIT_CAPACITY_FULL,
        )
    };

    println!("== failover: {MEMBERS}-member group, quorum {QUORUM} ==");
    let recovery = run_recovery(writes, faults.plan());
    // A fault plan is stateful (its RNG advances as it injects), so a
    // faulted rerun legitimately diverges; determinism is only asserted
    // on clean runs.
    let recovery_again = (!faults.enabled()).then(|| run_recovery(writes, faults.plan()));
    println!(
        "  recovery: {} writes, baseline max {} ns/op, crash-to-ack {} ns, {} promotion(s), 0 acked writes lost",
        recovery.writes, recovery.baseline_max_ns, recovery.recovery_ns, recovery.promotions,
    );

    let schedule = ChurnSchedule::generate(0x57AB, storm_waves, 300_000_000, 80_000_000);
    let uncontrolled = run_storm(storm_clients, &schedule, None);
    let controlled = run_storm(
        storm_clients,
        &schedule,
        Some(&AdmissionControl::new(capacity, ADMIT_REFILL_PER_SEC)),
    );
    let uncontrolled_again = run_storm(storm_clients, &schedule, None);
    let controlled_again = run_storm(
        storm_clients,
        &schedule,
        Some(&AdmissionControl::new(capacity, ADMIT_REFILL_PER_SEC)),
    );
    for s in [&uncontrolled, &controlled] {
        println!(
            "  storm ({}): {} clients in {} waves, worst {} ns, mean {} ns, {} throttles",
            if s.admission { "admission" } else { "stampede" },
            s.clients,
            s.waves,
            s.worst_client_ns,
            s.mean_client_ns,
            s.throttled,
        );
    }

    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        capacity,
        &recovery,
        &[uncontrolled.clone(), controlled.clone()],
    );

    let mut failed = false;
    if recovery_again.as_ref().is_some_and(|r| *r != recovery)
        || uncontrolled != uncontrolled_again
        || controlled != controlled_again
    {
        eprintln!("FAIL: a rerun diverged — the failover bench must be deterministic");
        failed = true;
    }
    if recovery.promotions != 1 {
        eprintln!(
            "FAIL: the crash must cause exactly one promotion, saw {}",
            recovery.promotions
        );
        failed = true;
    }
    if recovery.lost_acked_writes != 0 {
        eprintln!(
            "FAIL: {} acked writes missing after failover",
            recovery.lost_acked_writes
        );
        failed = true;
    }

    faults.finish();
    faults.assert_envelope(recovery.total_ns);
    if faults.enabled() {
        println!("perf envelope skipped under --faults");
        if failed {
            std::process::exit(1);
        }
        return;
    }

    if recovery.recovery_ns > RECOVERY_BOUND_NS {
        eprintln!(
            "FAIL: crash-to-ack recovery took {} ns, envelope is {} ns",
            recovery.recovery_ns, RECOVERY_BOUND_NS
        );
        failed = true;
    }
    if recovery.reconnects == 0 {
        eprintln!(
            "FAIL: the burst never reconnected — the crash was not actually in the measurement"
        );
        failed = true;
    }
    if controlled.worst_client_ns >= uncontrolled.worst_client_ns {
        eprintln!(
            "FAIL: admission control must beat the stampede: worst {} ns (controlled) vs {} ns (uncontrolled)",
            controlled.worst_client_ns, uncontrolled.worst_client_ns
        );
        failed = true;
    }
    if controlled.throttled == 0 {
        eprintln!("FAIL: the controlled storm never throttled — the bucket did nothing");
        failed = true;
    }
    println!(
        "admission control: worst-client {:.1} ms vs {:.1} ms uncontrolled ({:.2}x better)",
        controlled.worst_client_ns as f64 / 1e6,
        uncontrolled.worst_client_ns as f64 / 1e6,
        uncontrolled.worst_client_ns as f64 / controlled.worst_client_ns.max(1) as f64,
    );
    if failed {
        std::process::exit(1);
    }
}
