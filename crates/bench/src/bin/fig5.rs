//! Figure 5: micro-benchmarks for basic operations — RPC latency
//! (unauthorized `fchown`, µs) and sequential-read throughput (MB/s).

use sfs_bench::args::{Args, FaultOpt};
use sfs_bench::calib::{build_fs_chaos, System};
use sfs_bench::report::{Compared, Table};
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{micro_latency, micro_throughput};

fn main() {
    let trace = TraceOpt::from_args();
    let faults = FaultOpt::from_args();
    // `--window N` overrides the client pipeline depth (default 8);
    // `--window 1` reruns the figure under the blocking protocol.
    let window: Option<usize> = Args::from_env().opt("window").map(|w| w.parse().unwrap());
    let mut table = Table::new(
        "Figure 5: micro-benchmarks for basic operations",
        "µs / MB/s",
        &["latency (µs)", "throughput (MB/s)"],
    );
    let rows: [(System, Option<f64>, Option<f64>); 4] = [
        (System::NfsUdp, Some(200.0), Some(9.3)),
        (System::NfsTcp, Some(220.0), Some(7.6)),
        (System::Sfs, Some(790.0), Some(4.1)),
        (System::SfsNoEncrypt, Some(770.0), Some(7.1)),
    ];
    let mut final_ns = 0u64;
    for (system, paper_lat, paper_tp) in rows {
        let tel = trace.for_system(&format!("{}/latency", system.label()));
        let (fs, clock, prefix, _) = build_fs_chaos(system, &tel, faults.plan());
        if let Some(w) = window {
            fs.set_pipeline_window(w);
        }
        let lat = micro_latency(fs.as_ref(), &prefix);
        final_ns = final_ns.max(clock.now().as_nanos());
        let tel2 = trace.for_system(&format!("{}/throughput", system.label()));
        let (fs2, clock2, prefix2, _) = build_fs_chaos(system, &tel2, faults.plan());
        if let Some(w) = window {
            fs2.set_pipeline_window(w);
        }
        let tp = micro_throughput(fs2.as_ref(), &prefix2);
        final_ns = final_ns.max(clock2.now().as_nanos());
        table.push_row(
            system.label(),
            vec![Compared::new(lat, paper_lat), Compared::new(tp, paper_tp)],
        );
    }
    println!("{}", table.render());
    trace.finish();
    faults.finish();
    // A faulted figure that silently ran outside its fault envelope is
    // worthless as a chaos artefact: fail loudly instead.
    faults.assert_envelope(final_ns);
}
