//! Figure 9: the Sprite LFS large-file benchmark — sequential and random
//! writes/reads of a 40,000 KB file in 8 KB chunks.
//!
//! Shapes from §4.4: "On the sequential write phase, SFS is … 44% slower
//! than NFS 3 over UDP. On the sequential read phase, it is … 145%
//! slower. Without encryption, SFS is only … 17% slower on sequential
//! writes and … 31% slower on sequential reads."

use sfs_bench::calib::{build_fs_traced, System};
use sfs_bench::report::{secs, Compared, Table};
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::lfs_large;

fn main() {
    let trace = TraceOpt::from_args();
    let mut table = Table::new(
        "Figure 9: Sprite LFS large-file benchmark (40,000 KB, 8 KB chunks)",
        "s",
        &[
            "seq write",
            "seq read",
            "rand write",
            "rand read",
            "seq read 2",
        ],
    );
    let mut results = Vec::new();
    let systems = [
        System::Local,
        System::NfsUdp,
        System::NfsTcp,
        System::Sfs,
        System::SfsNoEncrypt,
    ];
    for system in systems {
        let tel = trace.for_system(system.label());
        let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
        let phases = lfs_large(fs.as_ref(), &prefix);
        let cells: Vec<Compared> = phases
            .iter()
            .map(|p| Compared::new(secs(p.time), None))
            .collect();
        results.push((system, phases));
        table.push_row(system.label(), cells);
    }
    println!("{}", table.render());
    let phase_of = |sys: System, name: &str| {
        results
            .iter()
            .find(|(s, _)| *s == sys)
            .unwrap()
            .1
            .iter()
            .find(|p| p.name == name)
            .unwrap()
            .time
            .as_secs_f64()
    };
    for (phase, paper) in [("seq write", 44.0), ("seq read", 145.0)] {
        println!(
            "SFS {phase} vs NFS 3 (UDP): {:+.0}% (paper: +{paper:.0}%)",
            (phase_of(System::Sfs, phase) / phase_of(System::NfsUdp, phase) - 1.0) * 100.0
        );
    }
    for (phase, paper) in [("seq write", 17.0), ("seq read", 31.0)] {
        println!(
            "SFS w/o encryption {phase} vs NFS 3 (UDP): {:+.0}% (paper: +{paper:.0}%)",
            (phase_of(System::SfsNoEncrypt, phase) / phase_of(System::NfsUdp, phase) - 1.0) * 100.0
        );
    }
    trace.finish();
}
