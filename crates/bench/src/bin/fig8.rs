//! Figure 8: the Sprite LFS small-file benchmark — create, read, and
//! unlink 1,000 1 KB files.
//!
//! Shapes from §4.4: "On the create phase, SFS performs about the same as
//! NFS 3 over UDP … On the read phase, SFS is 3 times slower than NFS 3
//! over UDP … The unlink phase is almost completely dominated by
//! synchronous writes to the disk \[so\] all file systems have roughly the
//! same performance."

use sfs_bench::calib::{build_fs_traced, System};
use sfs_bench::report::{secs, Compared, Table};
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::lfs_small;

fn main() {
    let trace = TraceOpt::from_args();
    let mut table = Table::new(
        "Figure 8: Sprite LFS small-file benchmark (1,000 × 1 KB)",
        "s",
        &["create", "read", "unlink"],
    );
    let mut results = Vec::new();
    for system in System::main_four() {
        let tel = trace.for_system(system.label());
        let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
        let phases = lfs_small(fs.as_ref(), &prefix, 1000);
        let cells: Vec<Compared> = phases
            .iter()
            .map(|p| Compared::new(secs(p.time), None))
            .collect();
        results.push((system, phases));
        table.push_row(system.label(), cells);
    }
    println!("{}", table.render());
    let read_of = |sys: System| {
        results
            .iter()
            .find(|(s, _)| *s == sys)
            .unwrap()
            .1
            .iter()
            .find(|p| p.name == "read")
            .unwrap()
            .time
            .as_secs_f64()
    };
    println!(
        "SFS read phase vs NFS 3 (UDP): {:.1}x (paper: ~3x)",
        read_of(System::Sfs) / read_of(System::NfsUdp)
    );
    trace.finish();
}
