//! Figure 7: compiling the GENERIC FreeBSD 3.3 kernel.
//!
//! Paper values: Local 140 s, NFS 3/UDP 178 s, NFS 3/TCP 207 s,
//! SFS 197 s. "SFS performs 16% worse (29 seconds) than NFS 3 over UDP
//! and 5% better (10 seconds) than NFS 3 over TCP."

use sfs_bench::calib::{build_fs_traced, System};
use sfs_bench::report::{secs, Compared, Table};
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{kernel_build, KernelBuildConfig};

fn main() {
    let trace = TraceOpt::from_args();
    let cfg = KernelBuildConfig::default();
    let mut table = Table::new(
        "Figure 7: compiling the GENERIC FreeBSD 3.3 kernel",
        "s",
        &["time (s)"],
    );
    let rows: [(System, Option<f64>); 4] = [
        (System::Local, Some(140.0)),
        (System::NfsUdp, Some(178.0)),
        (System::NfsTcp, Some(207.0)),
        (System::Sfs, Some(197.0)),
    ];
    for (system, paper) in rows {
        let tel = trace.for_system(system.label());
        let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
        let t = kernel_build(fs.as_ref(), &prefix, &cfg);
        table.push_row(system.label(), vec![Compared::new(secs(t), paper)]);
    }
    println!("{}", table.render());
    trace.finish();
}
