//! Figure 6: the Modified Andrew Benchmark — wall-clock execution time per
//! phase on Local, NFS 3 (UDP), NFS 3 (TCP), and SFS.
//!
//! Headline shape from §4.3: "SFS is only 11% (0.6 seconds) slower than
//! NFS 3 over UDP."

use sfs_bench::args::{Args, FaultOpt};
use sfs_bench::calib::{build_fs_chaos, System};
use sfs_bench::report::{secs, Compared, Table};
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{mab, total, MabConfig};

fn main() {
    let trace = TraceOpt::from_args();
    let faults = FaultOpt::from_args();
    // `--window N` overrides the client pipeline depth (default 8);
    // `--window 1` reruns the figure under the blocking protocol.
    let window: Option<usize> = Args::from_env().opt("window").map(|w| w.parse().unwrap());
    let cfg = MabConfig::default();
    let mut table = Table::new(
        "Figure 6: Modified Andrew Benchmark phases",
        "s",
        &[
            "directories",
            "copy",
            "attributes",
            "search",
            "compile",
            "total",
        ],
    );
    // The paper presents Figure 6 as a bar chart; the quantified anchors
    // in the text are the NFS/UDP-vs-SFS total gap (11%, 0.6 s ⇒ totals
    // ≈5.4 s and ≈6.0 s).
    let paper_total: [(System, Option<f64>); 4] = [
        (System::Local, None),
        (System::NfsUdp, Some(5.4)),
        (System::NfsTcp, None),
        (System::Sfs, Some(6.0)),
    ];
    let mut totals = Vec::new();
    let mut final_ns = 0u64;
    for (system, paper) in paper_total {
        let tel = trace.for_system(system.label());
        let (fs, clock, prefix, _) = build_fs_chaos(system, &tel, faults.plan());
        if let Some(w) = window {
            fs.set_pipeline_window(w);
        }
        let phases = mab(fs.as_ref(), &prefix, &cfg);
        final_ns = final_ns.max(clock.now().as_nanos());
        let mut cells: Vec<Compared> = phases
            .iter()
            .map(|p| Compared::new(secs(p.time), None))
            .collect();
        let tot = secs(total(&phases));
        cells.push(Compared::new(tot, paper));
        totals.push((system, tot));
        table.push_row(system.label(), cells);
    }
    println!("{}", table.render());
    let nfs_udp = totals.iter().find(|(s, _)| *s == System::NfsUdp).unwrap().1;
    let sfs = totals.iter().find(|(s, _)| *s == System::Sfs).unwrap().1;
    println!(
        "SFS vs NFS 3 (UDP) total: {:+.1}% (paper: +11%)",
        (sfs / nfs_udp - 1.0) * 100.0
    );
    trace.finish();
    faults.finish();
    // A faulted figure that silently ran outside its fault envelope is
    // worthless as a chaos artefact: fail loudly instead.
    faults.assert_envelope(final_ns);
}
