//! Runs every §4 reproduction in sequence (Figures 5–9 plus the
//! ablations) — the one-shot regeneration backing EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let bins = [
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "ablations",
        "hardware_trend",
        "rpc_counts",
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let dir = self_path.parent().expect("bin dir");
    for bin in bins {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
