//! `pipeline`: windowed-RPC throughput sweep.
//!
//! Measures sequential-read throughput through the full SFS stack (the
//! Figure-5 cost model: Pentium III 550 costs on a switched 100 Mbit
//! wire) as a function of the client's pipeline window. Window 1 is the
//! strict blocking request/reply protocol — the pre-pipelining
//! baseline — and each larger window keeps that many sealed READs in
//! flight, so the sweep shows exactly how much latency the overlap of
//! client crypto, wire transfer, and server work hides.
//!
//! Results land in `BENCH_pipeline.json`. The binary asserts its own
//! envelope and exits nonzero on regression: virtual throughput must be
//! monotone non-decreasing from window 1 through 8, and window 8 must
//! be at least twice window 1. `--smoke` reads a smaller file (CI runs
//! that mode); the assertions hold there too because virtual time is
//! deterministic at any scale.
//!
//! `--faults <spec>` threads a seeded fault plan through the wire,
//! server, and disk; the perf envelope is skipped (dropped packets make
//! the window sweep non-monotone by design) but the fault envelope is
//! asserted instead — a faulted run must actually inject what its spec
//! promises.
//!
//! Usage: `cargo run --release -p sfs-bench --bin pipeline [-- --smoke] [--out PATH] [--faults SPEC]`

use std::time::Instant;

use sfs_bench::args::{Args, FaultOpt};
use sfs_bench::calib::{build_fs_chaos, System};
use sfs_sim::FaultPlan;
use sfs_telemetry::{Telemetry, ZeroClock};

/// The windows swept; 1 doubles as the blocking baseline row.
const WINDOWS: [usize; 5] = [1, 2, 4, 8, 16];

/// Sequential-read chunk size (the NFS3 READ payload of Figure 5).
const CHUNK: usize = 8192;

/// File size: full mode streams 8 MiB per window, smoke 512 KiB.
const TOTAL: usize = 8 * 1024 * 1024;
const TOTAL_SMOKE: usize = 512 * 1024;

/// Window 8 must beat the blocking baseline by at least this factor.
const REQUIRED_SPEEDUP: f64 = 2.0;

struct Row {
    window: usize,
    virtual_ns: u64,
    virtual_mb_per_s: f64,
    virtual_ns_per_read: u64,
    wall_ns_per_read: u128,
    rpcs: u64,
    final_clock_ns: u64,
}

/// One full-stack sequential read of `total` bytes with the given
/// pipeline window, on a fresh testbed sharing the run's fault plan.
fn run_window(window: usize, total: usize, tel: &Telemetry, plan: Option<&FaultPlan>) -> Row {
    let (fs, clock, prefix, _) = build_fs_chaos(System::Sfs, tel, plan);
    fs.set_pipeline_window(window);
    let path = if prefix.is_empty() {
        "pipefile".to_string()
    } else {
        format!("{prefix}/pipefile")
    };
    fs.create(&path).expect("create");
    let block = vec![0x5Au8; 64 * 1024];
    let mut off = 0u64;
    while (off as usize) < total {
        fs.write(&path, off, &block).expect("fill");
        off += block.len() as u64;
    }
    fs.flush(&path).expect("flush");
    fs.drop_caches();
    fs.open(&path).expect("open");

    let n_reads = total / CHUNK;
    let rpcs_before = fs.rpcs();
    let t0 = clock.now();
    let wall0 = Instant::now();
    let mut off = 0u64;
    while (off as usize) < total {
        let data = fs.read(&path, off, CHUNK).expect("read");
        assert!(!data.is_empty(), "short stream at offset {off}");
        off += data.len() as u64;
    }
    let wall_ns = wall0.elapsed().as_nanos();
    let virtual_ns = clock.now().since(t0).as_nanos();
    let virtual_secs = virtual_ns as f64 / 1e9;
    Row {
        window,
        virtual_ns,
        virtual_mb_per_s: total as f64 / 1_000_000.0 / virtual_secs,
        virtual_ns_per_read: virtual_ns / n_reads as u64,
        wall_ns_per_read: wall_ns / n_reads as u128,
        rpcs: fs.rpcs() - rpcs_before,
        final_clock_ns: clock.now().as_nanos(),
    }
}

fn write_json(path: &str, mode: &str, total: usize, rows: &[Row]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/pipeline/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"workload\": {{\"kind\": \"sequential_read\", \"chunk_bytes\": {CHUNK}, \"total_bytes\": {total}}},\n"
    ));
    out.push_str(
        "  \"unit\": {\"virtual_mb_per_s\": \"MB/s of virtual time\", \"virtual_ns_per_read\": \"nanoseconds\", \"wall_ns_per_read\": \"nanoseconds\"},\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"window\": {}, \"blocking\": {}, \"virtual_ns\": {}, \"virtual_mb_per_s\": {:.3}, \"virtual_ns_per_read\": {}, \"wall_ns_per_read\": {}, \"rpcs\": {}}}{}\n",
            r.window,
            r.window == 1,
            r.virtual_ns,
            r.virtual_mb_per_s,
            r.virtual_ns_per_read,
            r.wall_ns_per_read,
            r.rpcs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["out", "faults"], &["smoke"]);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let faults = FaultOpt::from_args();
    let tel = Telemetry::recording(ZeroClock);
    let out_path = args
        .opt("out")
        .unwrap_or_else(|| "BENCH_pipeline.json".into());
    let total = if smoke { TOTAL_SMOKE } else { TOTAL };

    println!("== pipeline: sequential 8 KiB reads, window sweep ==");
    let mut rows = Vec::new();
    for window in WINDOWS {
        let row = run_window(window, total, &tel, faults.plan());
        println!(
            "  window {:>2}{}  {:>12} ns virtual   {:>8.2} MB/s   {:>8} ns/read (virtual)   {:>8} ns/read (wall)   {} RPCs",
            row.window,
            if row.window == 1 { " (blocking)" } else { "          " },
            row.virtual_ns,
            row.virtual_mb_per_s,
            row.virtual_ns_per_read,
            row.wall_ns_per_read,
            row.rpcs,
        );
        rows.push(row);
    }
    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        total,
        &rows,
    );

    // Under --faults the perf envelope does not apply (a dropped or
    // delayed packet can legitimately slow any window), but the fault
    // envelope must hold: the plan actually injected what it promised.
    let final_ns = rows.iter().map(|r| r.final_clock_ns).max().unwrap_or(0);
    faults.finish();
    faults.assert_envelope(final_ns);
    if faults.enabled() {
        println!("perf envelope skipped under --faults");
        return;
    }

    // Regression envelope. Virtual time is deterministic, so these are
    // exact checks, not statistical ones.
    let mut failed = false;
    for pair in rows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.window <= 8 && b.virtual_mb_per_s < a.virtual_mb_per_s {
            eprintln!(
                "FAIL: throughput not monotone: window {} = {:.3} MB/s < window {} = {:.3} MB/s",
                b.window, b.virtual_mb_per_s, a.window, a.virtual_mb_per_s
            );
            failed = true;
        }
    }
    let w1 = rows.iter().find(|r| r.window == 1).expect("window 1 row");
    let w8 = rows.iter().find(|r| r.window == 8).expect("window 8 row");
    let speedup = w8.virtual_mb_per_s / w1.virtual_mb_per_s;
    println!("window 8 vs blocking: {speedup:.2}x");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!(
            "FAIL: window 8 must be at least {REQUIRED_SPEEDUP}x the blocking baseline, got {speedup:.2}x"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
