//! The mechanism behind §4.2's caching claim: "SFS's enhanced caching
//! improves performance by reducing the number of RPCs that need to
//! travel over the network." This harness counts actual wire RPCs for the
//! MAB and LFS-small workloads across NFS, SFS, and SFS without the
//! enhanced caching.
//!
//! The counts come from the `sfs-telemetry` counter sink attached to the
//! simulated wire — the same single counting path that backs
//! `Wire::round_trips` — so the figure binaries, the summary tables, and
//! this harness can never disagree.

use sfs_bench::calib::{build_fs_traced, System};
use sfs_bench::workloads::{lfs_small, mab, MabConfig};
use sfs_telemetry::Telemetry;

fn counts(system: System) -> (u64, u64) {
    let tel = Telemetry::counters();
    let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
    mab(fs.as_ref(), &prefix, &MabConfig::default());
    let mab_rpcs = tel.counter("wire", "net.round_trips");
    drop(fs);

    let tel = Telemetry::counters();
    let (fs, _clock, prefix, _) = build_fs_traced(system, &tel);
    lfs_small(fs.as_ref(), &prefix, 1000);
    (mab_rpcs, tel.counter("wire", "net.round_trips"))
}

fn main() {
    println!("== Wire RPC counts (lower is better) ==\n");
    println!("  {:26} {:>10} {:>12}", "system", "MAB", "LFS small");
    let mut rows = Vec::new();
    for system in [System::NfsUdp, System::Sfs, System::SfsNoCache] {
        let (mab_rpcs, lfs_rpcs) = counts(system);
        println!("  {:26} {mab_rpcs:>10} {lfs_rpcs:>12}", system.label());
        rows.push((system, mab_rpcs, lfs_rpcs));
    }
    let nfs = rows[0];
    let sfs = rows[1];
    let nocache = rows[2];
    println!(
        "\nSFS issues {:.0}% of NFS 3's MAB RPCs (leases + callbacks replace\n\
         close-to-open GETATTR/ACCESS revalidation); disabling the enhanced\n\
         caching costs {} extra RPCs on MAB and {} on the LFS create/read/unlink\n\
         run — the RPCs whose latency the §4.3 ablations measure.",
        sfs.1 as f64 / nfs.1 as f64 * 100.0,
        nocache.1 - sfs.1,
        nocache.2 - sfs.2,
    );
}
