//! `scenarios`: the trace-driven workload engine and churn-storm driver.
//!
//! Replays the built-in declarative workloads — the LADDIS-style op mix,
//! the compile-a-tree mix, the mail-spool mix — and the "million-user
//! day" churn storms (mass remount waves, agent key rollover, lease-
//! expiry stampedes, a §2.5 revocation broadcast) through the full SFS
//! stack under virtual time. Every scenario is self-asserting: the
//! coherence oracle checks each observation against the committed file
//! history, and each scenario runs **twice** so the binary can prove the
//! run is deterministic byte-for-byte (op log, final clock, and latency
//! table all identical).
//!
//! Options:
//!
//! - `--scenario NAME|SPEC`: run one scenario — a built-in name (see
//!   `--list`) or an inline `ScenarioSpec` (`seed=7,clients=2,...,mix=...`);
//!   default runs every built-in mix and storm;
//! - `--faults SPEC`: thread a seeded fault plan through the wire,
//!   server, and disk of every run; the envelope is asserted per run;
//! - `--suite NAME`: cipher suite every client offers (`arc4-sha1` |
//!   `chacha20-poly1305`; default the negotiated AEAD fast path) — the
//!   suite changes virtual-time results because the simulator charges
//!   crypto at the suite's measured per-byte rate;
//! - `--smoke`: shrink op counts and populations for CI;
//! - `--out PATH`: results JSON (default `BENCH_scenarios.json`);
//! - `--latency-out PATH`: per-procedure latency tables (default
//!   `BENCH_scenarios_latency.txt`);
//! - `--record PATH`: write the byte-replayable request trace of a mix
//!   scenario (requires `--scenario` naming a mix);
//! - `--replay PATH`: replay a recorded trace against a fresh world and
//!   verify the re-recorded trace is byte-identical;
//! - `--list`: print the built-in scenario names.

use sfs_bench::args::{Args, FaultOpt, ScenarioSpec};
use sfs_bench::kernel::SfsBench;
use sfs_bench::scenario::{
    build_world, builtin_mixes, encode_trace, parse_trace, replay_trace, run_mix, run_storm,
    scenario_suite, set_scenario_suite, RecordingFs, ScenarioOutcome, TraceSink, STORM_NAMES,
};
use sfs_proto::channel::SuiteId;
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::{Telemetry, ZeroClock};
use std::sync::Arc;

use sfs_bench::calib::BENCH_UID;
use sfs_bench::kernel::FsBench;

/// FNV-1a 64-bit, used to commit the op log compactly into the JSON.
fn fnv64(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Row {
    name: String,
    kind: &'static str,
    clients: usize,
    ops: usize,
    final_ns: u64,
    oracle_checks: u64,
    oplog_fnv64: u64,
    injected_faults: u64,
}

fn die(msg: String) -> ! {
    eprintln!("scenarios: {msg}");
    std::process::exit(2)
}

/// Builds a fresh fault option from the run's `--faults` spec; each of
/// the two determinism runs needs its own plan so injected-event
/// tallies don't leak between them.
fn fresh_faults(spec: &Option<String>) -> FaultOpt {
    FaultOpt::with_spec(spec.clone()).unwrap_or_else(|e| die(format!("--faults: {e}")))
}

/// One scenario execution with its own telemetry and fault plan.
/// Returns the outcome, the rendered latency table, and the injected-
/// fault count; asserts the fault envelope before returning.
fn execute(
    name: &str,
    kind: &'static str,
    fault_spec: &Option<String>,
    smoke: bool,
    spec: Option<&ScenarioSpec>,
    trace: Option<&TraceSink>,
) -> (ScenarioOutcome, String, u64) {
    let faults = fresh_faults(fault_spec);
    let tel = Telemetry::recording(ZeroClock);
    let outcome = match kind {
        "mix" => run_mix(name, spec.expect("mix spec"), &tel, faults.plan(), trace),
        _ => run_storm(name, &tel, faults.plan(), smoke)
            .unwrap_or_else(|| die(format!("unknown storm {name:?}"))),
    };
    faults.finish();
    faults.assert_envelope(outcome.final_ns);
    let injected = faults.plan().map(|p| p.injected() as u64).unwrap_or(0);
    (outcome, tel.histograms_json(), injected)
}

/// Runs one scenario twice and verifies the two runs agree on every
/// observable byte. Returns the first run's row and latency table.
fn run_twice(
    name: &str,
    kind: &'static str,
    fault_spec: &Option<String>,
    smoke: bool,
    spec: Option<&ScenarioSpec>,
    trace: Option<&TraceSink>,
) -> (Row, String) {
    println!("== scenario {name} ({kind}) ==");
    let (a, table_a, injected) = execute(name, kind, fault_spec, smoke, spec, trace);
    let (b, table_b, _) = execute(name, kind, fault_spec, smoke, spec, None);
    if a.op_log != b.op_log {
        let divergence = a
            .op_log
            .iter()
            .zip(b.op_log.iter())
            .position(|(x, y)| x != y)
            .map(|i| {
                format!(
                    "first divergence at op {i}: {:?} vs {:?}",
                    a.op_log[i], b.op_log[i]
                )
            })
            .unwrap_or_else(|| {
                format!("op counts differ: {} vs {}", a.op_log.len(), b.op_log.len())
            });
        eprintln!("FAIL: scenario {name} is not deterministic ({divergence})");
        std::process::exit(1);
    }
    if a.final_ns != b.final_ns {
        eprintln!(
            "FAIL: scenario {name} final clock differs between runs: {} vs {}",
            a.final_ns, b.final_ns
        );
        std::process::exit(1);
    }
    if table_a != table_b {
        eprintln!("FAIL: scenario {name} latency table differs between identical runs");
        std::process::exit(1);
    }
    let (clients, ops) = match spec {
        Some(s) => (s.clients, s.ops),
        None => (0, a.op_log.len()),
    };
    println!(
        "  {} ops, final clock {} ns, {} oracle checks, deterministic across 2 runs{}",
        a.op_log.len(),
        a.final_ns,
        a.oracle_checks,
        if injected > 0 {
            format!(", {injected} faults injected")
        } else {
            String::new()
        }
    );
    (
        Row {
            name: name.to_string(),
            kind,
            clients,
            ops,
            final_ns: a.final_ns,
            oracle_checks: a.oracle_checks,
            oplog_fnv64: fnv64(&a.op_log),
            injected_faults: injected,
        },
        table_a,
    )
}

fn write_results(path: &str, mode: &str, fault_spec: &Option<String>, rows: &[Row]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/scenarios/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"suite\": \"{}\",\n", scenario_suite().label()));
    match fault_spec {
        Some(s) => out.push_str(&format!("  \"faults\": \"{s}\",\n")),
        None => out.push_str("  \"faults\": null,\n"),
    }
    out.push_str("  \"determinism\": \"each scenario ran twice; op log, final clock, and latency table were byte-identical\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"clients\": {}, \"ops\": {}, \"final_ns\": {}, \"oracle_checks\": {}, \"oplog_fnv64\": \"{:016x}\", \"injected_faults\": {}, \"deterministic\": true}}{}\n",
            r.name,
            r.kind,
            r.clients,
            r.ops,
            r.final_ns,
            r.oracle_checks,
            r.oplog_fnv64,
            r.injected_faults,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| die(format!("write {path}: {e}")));
    println!("wrote {path}");
}

/// Replays a recorded trace against a fresh single-client world while
/// re-recording it, then verifies the re-recording is byte-identical to
/// the input — the trace format's round-trip guarantee through the real
/// stack, not just the parser.
fn replay_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("read {path}: {e}")));
    let ops = parse_trace(&text).unwrap_or_else(|e| die(format!("{path}: {e}")));
    let tel = Telemetry::recording(ZeroClock);
    let world = build_world(1, 1, None, &tel, None);
    let prefix = world.prefix(0);
    let bench: Box<dyn FsBench> = Box::new(SfsBench::new(
        "SFS",
        world.clients[0].clone(),
        BENCH_UID,
        &prefix,
    ));
    let sink: TraceSink = Arc::new(Mutex::new(Vec::new()));
    let rec = RecordingFs::new(bench, sink.clone());
    replay_trace(&rec, &ops).unwrap_or_else(|e| die(format!("replaying {path}: {e:?}")));
    let replayed = encode_trace(&sink.lock());
    if replayed != encode_trace(&ops) {
        eprintln!("FAIL: replay of {path} did not reproduce the trace byte-for-byte");
        std::process::exit(1);
    }
    println!(
        "replayed {} ops from {path}; re-recorded trace is byte-identical",
        ops.len()
    );
}

fn main() {
    let args = Args::from_env();
    args.enforce_known(
        &[
            "scenario",
            "faults",
            "suite",
            "out",
            "latency-out",
            "record",
            "replay",
        ],
        &["smoke", "list"],
    );
    let smoke = std::env::args().any(|a| a == "--smoke");
    if let Some(label) = args.opt("suite") {
        let suite = SuiteId::parse(&label).unwrap_or_else(|| {
            die(format!(
                "unknown suite {label:?} (arc4-sha1 | chacha20-poly1305)"
            ))
        });
        set_scenario_suite(suite);
    }
    if std::env::args().any(|a| a == "--list") {
        for (name, spec) in builtin_mixes() {
            println!("{name:<18} mix    {}", spec.encode());
        }
        for name in STORM_NAMES {
            println!("{name:<18} storm");
        }
        return;
    }
    // Validate the fault spec once up front, then rebuild per run.
    let fault_spec = args.opt("faults");
    let _ = fresh_faults(&fault_spec);

    if let Some(path) = args.opt("replay") {
        replay_file(&path);
        return;
    }

    // Resolve the scenario set: everything by default, or one chosen by
    // name / inline spec.
    let mut mixes: Vec<(String, ScenarioSpec)> = Vec::new();
    let mut storms: Vec<String> = Vec::new();
    match args.opt("scenario") {
        None => {
            mixes = builtin_mixes()
                .into_iter()
                .map(|(n, s)| (n.to_string(), s))
                .collect();
            storms = STORM_NAMES.iter().map(|s| s.to_string()).collect();
        }
        Some(sel) => {
            if let Some((_, spec)) = builtin_mixes().iter().find(|(n, _)| *n == sel) {
                mixes.push((sel.clone(), spec.clone()));
            } else if STORM_NAMES.contains(&sel.as_str()) {
                storms.push(sel.clone());
            } else if sel.contains('=') {
                let spec =
                    ScenarioSpec::parse(&sel).unwrap_or_else(|e| die(format!("--scenario: {e}")));
                mixes.push(("custom".to_string(), spec));
            } else {
                die(format!(
                    "unknown scenario {sel:?} (see --list for built-ins, or pass an inline spec)"
                ));
            }
        }
    }
    if smoke {
        for (_, spec) in &mut mixes {
            spec.ops = spec.ops.min(120);
            spec.clients = spec.clients.min(2);
        }
    }

    let record = args.opt("record");
    if record.is_some() && mixes.len() != 1 {
        die("--record requires --scenario naming exactly one mix scenario".into());
    }

    let out_path = args
        .opt("out")
        .unwrap_or_else(|| "BENCH_scenarios.json".into());
    let latency_path = args
        .opt("latency-out")
        .unwrap_or_else(|| "BENCH_scenarios_latency.txt".into());

    let mut rows = Vec::new();
    let mut tables = String::new();
    for (name, spec) in &mixes {
        let sink: Option<TraceSink> = record.as_ref().map(|_| Arc::new(Mutex::new(Vec::new())));
        let (row, table) = run_twice(name, "mix", &fault_spec, smoke, Some(spec), sink.as_ref());
        if let (Some(path), Some(sink)) = (&record, &sink) {
            let text = encode_trace(&sink.lock());
            std::fs::write(path, &text).unwrap_or_else(|e| die(format!("write {path}: {e}")));
            println!("recorded {} trace ops to {path}", sink.lock().len());
        }
        tables.push_str(&format!(
            "== {name} (mix: {}) ==\n{table}\n\n",
            spec.encode()
        ));
        rows.push(row);
    }
    for name in &storms {
        let (row, table) = run_twice(name, "storm", &fault_spec, smoke, None, None);
        tables.push_str(&format!("== {name} (storm) ==\n{table}\n\n"));
        rows.push(row);
    }

    std::fs::write(&latency_path, &tables)
        .unwrap_or_else(|e| die(format!("write {latency_path}: {e}")));
    println!("wrote {latency_path}");
    write_results(
        &out_path,
        if smoke { "smoke" } else { "full" },
        &fault_spec,
        &rows,
    );
}
