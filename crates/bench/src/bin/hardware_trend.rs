//! §4.5's forward-looking claim: "We expect SFS's performance penalty to
//! decline as hardware improves. The relative performance difference of
//! SFS and NFS 3 on MAB shrunk by a factor of two when we moved from
//! 200 MHz Pentium Pros to 550 MHz Pentium IIIs. We expect this trend to
//! continue."
//!
//! This harness runs MAB on three generations of CPU (network and disk
//! held constant) and reports the SFS-over-NFS/UDP penalty at each.
//!
//! Modeling note: the *protocol-stack* CPU costs (daemon crossings,
//! crypto, RPC processing) scale with the processor generation while the
//! application's own compile time is held constant. This isolates what
//! the paper's claim is about — the protocol overhead's hardware
//! sensitivity; scaling the application CPU too would mix in the
//! workload's own speedup.

use sfs_bench::calib::{build_fs_traced_cpu, System};
use sfs_bench::report::secs;
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{mab, total, MabConfig};
use sfs_sim::CpuCosts;

fn mab_total(trace: &TraceOpt, name: &str, system: System, cpu: CpuCosts) -> f64 {
    let tel = trace.for_system(&format!("{name}/{}", system.label()));
    let (fs, _clock, prefix, _) = build_fs_traced_cpu(system, cpu, &tel);
    secs(total(&mab(fs.as_ref(), &prefix, &MabConfig::default())))
}

fn main() {
    let trace = TraceOpt::from_args();
    println!("== §4.5 hardware trend: MAB penalty of SFS vs NFS 3 (UDP) ==\n");
    let generations: [(&str, CpuCosts); 3] = [
        ("Pentium Pro 200", CpuCosts::pentium_pro_200()),
        ("Pentium III 550", CpuCosts::pentium_iii_550()),
        (
            "hypothetical 2x PIII",
            CpuCosts::pentium_iii_550().scaled(0.5),
        ),
    ];
    let mut penalties = Vec::new();
    for (name, cpu) in generations {
        let nfs = mab_total(&trace, name, System::NfsUdp, cpu);
        let sfs = mab_total(&trace, name, System::Sfs, cpu);
        let penalty = (sfs / nfs - 1.0) * 100.0;
        penalties.push(penalty);
        println!("  {name:22} NFS/UDP {nfs:6.2}s   SFS {sfs:6.2}s   penalty {penalty:+5.1}%");
    }
    println!(
        "\nPPro→PIII penalty ratio: {:.2}x (paper: \"shrunk by a factor of two\")",
        penalties[0] / penalties[1]
    );
    println!(
        "PIII→2x penalty ratio:   {:.2}x (\"we expect this trend to continue\")",
        penalties[1] / penalties[2]
    );
}
