//! `latency_table`: the `--trace`-driven per-procedure latency breakdown.
//!
//! Runs the Modified Andrew Benchmark on each of the paper's four systems
//! with the tracing sink attached, then renders the NFS3 servers'
//! service-time histograms as one table per system — where GETATTR storms
//! and synchronous WRITEs spend their time (§4.2–§4.3). Options:
//!
//! - `--trace <path>`: also write the full Chrome trace JSON;
//! - `--faults <spec>`: thread a seeded fault plan through every layer,
//!   showing the breakdown under a degraded network;
//! - `--window N`: override the client pipeline depth (default 8);
//!   `--window 1` shows the breakdown under the blocking protocol;
//! - `--cores N`: install the multi-core shard engine on the SFS
//!   server, so the table (and any `--trace` dump) also carries the
//!   per-shard `server.shard.*` / `server.disk.batch_size` series.

use sfs_bench::args::{Args, FaultOpt};
use sfs_bench::calib::{build_fs_chaos_cores, System};
use sfs_bench::report::latency_table;
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{mab, MabConfig};
use sfs_telemetry::{Telemetry, ZeroClock};

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["trace", "faults", "window", "cores"], &[]);
    let trace = TraceOpt::from_args();
    let faults = FaultOpt::from_args();
    let window: Option<usize> = args.opt("window").map(|w| {
        w.parse().unwrap_or_else(|_| {
            eprintln!("--window: not a positive integer: {w:?}");
            std::process::exit(2)
        })
    });
    let cores: Option<usize> = args.opt("cores").map(|c| {
        c.parse().unwrap_or_else(|_| {
            eprintln!("--cores: not a positive integer: {c:?}");
            std::process::exit(2)
        })
    });
    // The table needs histograms whether or not `--trace` asked for the
    // JSON dump, so fall back to a standalone recording sink.
    let tel = if trace.enabled() {
        trace.telemetry().clone()
    } else {
        Telemetry::recording(ZeroClock)
    };
    let cfg = MabConfig::default();
    let mut final_ns = 0u64;
    for system in System::main_four() {
        let scoped = tel.scoped(system.label());
        let (fs, clock, prefix, _, engine) =
            build_fs_chaos_cores(system, &scoped, faults.plan(), cores);
        if let Some(w) = window {
            fs.set_pipeline_window(w);
        }
        let _ = mab(fs.as_ref(), &prefix, &cfg);
        if let Some(engine) = engine {
            // The MAB's files are small enough that every RPC degenerates
            // to a single-frame (blocking) exchange, which never consults
            // the shard engine. Stream one large file through the
            // write-behind queue so the table actually has per-shard
            // series to show.
            let p = format!("{prefix}/shard-stream");
            fs.create(&p).expect("create shard-stream");
            let chunk: Vec<u8> = (0..32_768u32).map(|i| (i % 249) as u8).collect();
            for i in 0..8u64 {
                fs.write(&p, i * 32_768, &chunk)
                    .expect("write shard-stream");
            }
            fs.flush(&p).expect("flush shard-stream");
            // `--window 1` forces the blocking protocol, which never
            // consults the engine — only multi-frame windows dispatch.
            if window.is_none_or(|w| w > 1) {
                assert!(
                    engine.frames_scheduled() > 0,
                    "--cores was given but no frame ever reached the shard engine"
                );
            }
            engine.finish(&scoped);
        }
        final_ns = final_ns.max(clock.now().as_nanos());
    }
    println!("{}", latency_table(&tel));
    trace.finish();
    faults.finish();
    // A faulted figure that silently ran outside its fault envelope is
    // worthless as a chaos artefact: fail loudly instead.
    faults.assert_envelope(final_ns);
}
