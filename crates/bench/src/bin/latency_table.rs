//! `latency_table`: the `--trace`-driven per-procedure latency breakdown.
//!
//! Runs the Modified Andrew Benchmark on each of the paper's four systems
//! with the tracing sink attached, then renders the NFS3 servers'
//! service-time histograms as one table per system — where GETATTR storms
//! and synchronous WRITEs spend their time (§4.2–§4.3). Options:
//!
//! - `--trace <path>`: also write the full Chrome trace JSON;
//! - `--faults <spec>`: thread a seeded fault plan through every layer,
//!   showing the breakdown under a degraded network;
//! - `--window N`: override the client pipeline depth (default 8);
//!   `--window 1` shows the breakdown under the blocking protocol.

use sfs_bench::args::{Args, FaultOpt};
use sfs_bench::calib::{build_fs_chaos, System};
use sfs_bench::report::latency_table;
use sfs_bench::trace::TraceOpt;
use sfs_bench::workloads::{mab, MabConfig};
use sfs_telemetry::{Telemetry, ZeroClock};

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["trace", "faults", "window"], &[]);
    let trace = TraceOpt::from_args();
    let faults = FaultOpt::from_args();
    let window: Option<usize> = args.opt("window").map(|w| {
        w.parse().unwrap_or_else(|_| {
            eprintln!("--window: not a positive integer: {w:?}");
            std::process::exit(2)
        })
    });
    // The table needs histograms whether or not `--trace` asked for the
    // JSON dump, so fall back to a standalone recording sink.
    let tel = if trace.enabled() {
        trace.telemetry().clone()
    } else {
        Telemetry::recording(ZeroClock)
    };
    let cfg = MabConfig::default();
    let mut final_ns = 0u64;
    for system in System::main_four() {
        let scoped = tel.scoped(system.label());
        let (fs, clock, prefix, _) = build_fs_chaos(system, &scoped, faults.plan());
        if let Some(w) = window {
            fs.set_pipeline_window(w);
        }
        let _ = mab(fs.as_ref(), &prefix, &cfg);
        final_ns = final_ns.max(clock.now().as_nanos());
    }
    println!("{}", latency_table(&tel));
    trace.finish();
    faults.finish();
    // A faulted figure that silently ran outside its fault envelope is
    // worthless as a chaos artefact: fail loudly instead.
    faults.assert_envelope(final_ns);
}
