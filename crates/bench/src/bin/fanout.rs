//! `fanout`: read-throughput sweep over read-only replica count.
//!
//! The §2.4 read-only dialect exists for exactly one reason: read
//! bandwidth should scale with *machines*, not with the private key.
//! A publisher signs the hash tree once, offline; after that, any
//! number of keyless replicas can serve it, and clients verify every
//! block against the HostID rather than trusting the machine.
//!
//! The sweep publishes one file tree, stands up `R ∈ {1, 2, 4, 8}`
//! keyless replicas behind a [`sfs_relay::ReplicaGroup`], and aims a
//! fixed fleet of 8 verifying clients at the group. Each client runs on
//! its own virtual clock (the fleet is concurrent in wall-clock terms),
//! while per-machine contention is modelled by `sfs_sim::ServerLoad`:
//! a replica serving 8 streams serializes replies 8× slower than one
//! serving a single stream. Aggregate throughput is total bytes
//! delivered divided by the *slowest* client's virtual time — the
//! makespan of the fleet.
//!
//! Results land in `BENCH_fanout.json`. The binary asserts its own
//! envelope and exits nonzero on regression: aggregate MB/s must be
//! monotone non-decreasing in replica count, and 4 replicas must beat
//! 1 replica by at least 2×. `--smoke` publishes a smaller tree (CI
//! runs that mode); the assertions hold there too because virtual time
//! is deterministic at any scale.
//!
//! `--faults <spec>` threads a seeded fault plan through every client's
//! wire; the perf envelope is skipped (drops legitimately break
//! monotone scaling and force failovers) but the fault envelope is
//! asserted instead — a faulted run must actually inject what its spec
//! promises.
//!
//! Usage: `cargo run --release -p sfs-bench --bin fanout [-- --smoke] [--out PATH] [--faults SPEC]`

use sfs::client::Router;
use sfs::roclient::RoMount;
use sfs::server::RoReplicaServer;
use sfs_bench::args::{Args, FaultOpt};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::readonly::RoDatabase;
use sfs_relay::ReplicaGroup;
use sfs_sim::{FaultPlan, NetParams, SimClock, Transport, Wire};
use sfs_vfs::{Credentials, Vfs};

const LOCATION: &str = "ro.lcs.mit.edu";

/// Verifying clients aimed at the group in every configuration.
const CLIENTS: usize = 8;

/// Replica counts swept; 1 doubles as the no-fan-out baseline row.
const REPLICAS: [usize; 4] = [1, 2, 4, 8];

/// Published tree: full mode 48 files × 32 KiB, smoke 12 × 8 KiB.
const FILES_FULL: usize = 48;
const FILE_BYTES_FULL: usize = 32 * 1024;
const FILES_SMOKE: usize = 12;
const FILE_BYTES_SMOKE: usize = 8 * 1024;

/// 4 replicas must beat 1 replica by at least this factor.
const REQUIRED_SPEEDUP: f64 = 2.0;

struct Row {
    replicas: usize,
    clients: usize,
    virtual_ns: u64,
    aggregate_mb_per_s: f64,
    per_client_mb_per_s: f64,
    total_bytes: u64,
    round_trips: u64,
    failovers: u64,
}

fn file_body(f: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((f * 131 + i) % 251) as u8).collect()
}

/// Publishes the tree once and exports the signed distribution bundle.
fn published_bundle(key: &RabinPrivateKey, files: usize, file_bytes: usize) -> Vec<u8> {
    let vfs = Vfs::new(17, SimClock::new());
    let creds = Credentials::root();
    let data = vfs.mkdir_p("/data").unwrap();
    for f in 0..files {
        vfs.write_file(&creds, data, &format!("f{f}"), &file_body(f, file_bytes))
            .unwrap();
    }
    RoDatabase::publish(&vfs, key, 1).export()
}

/// One sweep point: `r` keyless replicas of the bundle behind a relay,
/// the full client fleet reading the entire tree with verification on.
fn run_replicas(
    r: usize,
    key: &RabinPrivateKey,
    bundle: &[u8],
    files: usize,
    plan: Option<&FaultPlan>,
) -> Row {
    let path = SelfCertifyingPath::for_server(LOCATION, key.public());
    let group = ReplicaGroup::new(path.clone());
    for _ in 0..r {
        group.add_ro(RoReplicaServer::from_bundle(LOCATION, key.public(), bundle).expect("bundle"));
    }

    // Attach the whole fleet first so every read below runs under the
    // steady-state per-replica stream count (CLIENTS / r).
    let mut fleet: Vec<(SimClock, RoMount)> = Vec::new();
    for c in 0..CLIENTS {
        // Under faults the handshake itself can time out; retry a few
        // times (each attempt re-routes), and only then drop the client
        // from the fleet.
        let attempts = if plan.is_some() { 3 } else { 1 };
        let mut connected = false;
        for _ in 0..attempts {
            let clock = SimClock::new();
            let mut wire = Wire::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
            if let Some(p) = plan {
                wire.set_fault_plan(p.clone());
            }
            let routed = group.route_ro().expect("group has live replicas");
            if let Some(load) = routed.load {
                wire.set_server_load(load);
            }
            match RoMount::connect(path.clone(), wire, routed.conn) {
                Ok(mount) => {
                    fleet.push((clock, mount));
                    connected = true;
                    break;
                }
                Err(e) if plan.is_some() => {
                    eprintln!("  client {c} handshake failed under faults: {e:?}");
                }
                Err(e) => panic!("handshake: {e:?}"),
            }
        }
        if !connected {
            eprintln!("  client {c} never connected under faults; running without it");
        }
    }

    let mut total_bytes = 0u64;
    let mut makespan_ns = 0u64;
    let mut round_trips = 0u64;
    let mut failovers = 0u64;
    for (clock, mount) in &fleet {
        for f in 0..files {
            // Under faults a read may fail outright once retries and
            // failover are exhausted; what must never happen — faults
            // or not — is an unverified byte getting through.
            let data = match mount.read_file(&format!("/data/f{f}")) {
                Ok(data) => data,
                Err(e) if plan.is_some() => {
                    eprintln!("  read of f{f} failed under faults: {e:?}");
                    continue;
                }
                Err(e) => panic!("verified read of f{f}: {e:?}"),
            };
            assert_eq!(
                data,
                file_body(f, data.len()),
                "replica served bytes that cannot have passed verification"
            );
            total_bytes += data.len() as u64;
        }
        makespan_ns = makespan_ns.max(clock.now().as_nanos());
        round_trips += mount.round_trips();
        failovers += mount.failovers();
    }
    let secs = makespan_ns as f64 / 1e9;
    Row {
        replicas: r,
        clients: CLIENTS,
        virtual_ns: makespan_ns,
        aggregate_mb_per_s: total_bytes as f64 / 1_000_000.0 / secs,
        per_client_mb_per_s: total_bytes as f64 / CLIENTS as f64 / 1_000_000.0 / secs,
        total_bytes,
        round_trips,
        failovers,
    }
}

fn write_json(path: &str, mode: &str, files: usize, file_bytes: usize, rows: &[Row]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/fanout/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"workload\": {{\"kind\": \"verified_tree_read\", \"clients\": {CLIENTS}, \"files\": {files}, \"file_bytes\": {file_bytes}}},\n"
    ));
    out.push_str(
        "  \"unit\": {\"aggregate_mb_per_s\": \"MB/s of virtual time, fleet makespan\", \"virtual_ns\": \"nanoseconds\"},\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replicas\": {}, \"clients\": {}, \"virtual_ns\": {}, \"aggregate_mb_per_s\": {:.3}, \"per_client_mb_per_s\": {:.3}, \"total_bytes\": {}, \"round_trips\": {}, \"failovers\": {}}}{}\n",
            r.replicas,
            r.clients,
            r.virtual_ns,
            r.aggregate_mb_per_s,
            r.per_client_mb_per_s,
            r.total_bytes,
            r.round_trips,
            r.failovers,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["out", "faults"], &["smoke"]);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let faults = FaultOpt::from_args();
    let out_path = args
        .opt("out")
        .unwrap_or_else(|| "BENCH_fanout.json".into());
    let (files, file_bytes) = if smoke {
        (FILES_SMOKE, FILE_BYTES_SMOKE)
    } else {
        (FILES_FULL, FILE_BYTES_FULL)
    };

    // The publisher's one offline signing pass; replicas get the bundle
    // and never see the key.
    let mut rng = XorShiftSource::new(0xFA17);
    let key = generate_keypair(768, &mut rng);
    let bundle = published_bundle(&key, files, file_bytes);
    println!(
        "== fanout: {CLIENTS} verifying clients, {files} × {file_bytes} B tree, replica sweep =="
    );
    println!("   bundle: {} bytes, no key material", bundle.len());

    let mut rows = Vec::new();
    for r in REPLICAS {
        let row = run_replicas(r, &key, &bundle, files, faults.plan());
        println!(
            "  replicas {:>2}  {:>12} ns makespan   {:>8.2} MB/s aggregate   {:>6.2} MB/s per client   {} RPCs   {} failovers",
            row.replicas,
            row.virtual_ns,
            row.aggregate_mb_per_s,
            row.per_client_mb_per_s,
            row.round_trips,
            row.failovers,
        );
        rows.push(row);
    }
    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        files,
        file_bytes,
        &rows,
    );

    // Under --faults the perf envelope does not apply — drops break
    // monotone scaling and legitimately force failovers — but the fault
    // envelope must hold: the plan actually injected what it promised.
    let final_ns = rows.iter().map(|r| r.virtual_ns).max().unwrap_or(0);
    faults.finish();
    faults.assert_envelope(final_ns);
    if faults.enabled() {
        println!("perf envelope skipped under --faults");
        return;
    }

    // Regression envelope. Virtual time is deterministic, so these are
    // exact checks, not statistical ones.
    let mut failed = false;
    for pair in rows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.aggregate_mb_per_s < a.aggregate_mb_per_s {
            eprintln!(
                "FAIL: aggregate throughput not monotone: {} replicas = {:.3} MB/s < {} replicas = {:.3} MB/s",
                b.replicas, b.aggregate_mb_per_s, a.replicas, a.aggregate_mb_per_s
            );
            failed = true;
        }
    }
    let r1 = rows
        .iter()
        .find(|r| r.replicas == 1)
        .expect("1-replica row");
    let r4 = rows
        .iter()
        .find(|r| r.replicas == 4)
        .expect("4-replica row");
    let speedup = r4.aggregate_mb_per_s / r1.aggregate_mb_per_s;
    println!("4 replicas vs 1: {speedup:.2}x aggregate");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!(
            "FAIL: 4 read-only replicas must deliver at least {REQUIRED_SPEEDUP}x the \
             single-replica aggregate, got {speedup:.2}x"
        );
        failed = true;
    }
    if rows.iter().any(|r| r.failovers != 0) {
        eprintln!("FAIL: a healthy fleet must not fail over");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
