//! `scale`: multi-core server throughput sweep (clients × cores).
//!
//! The single-machine cost model serializes every frame's seal/open on
//! one simulated CPU; DESIGN.md §15's [`sfs::ShardEngine`] lifts that
//! limit by scheduling each frame's server-side work on the
//! earliest-free core of an N-core calendar and each request's disk
//! work on a per-shard commit queue with group commit. This sweep
//! measures what that buys: a fleet of clients (each on its own virtual
//! clock, all dialing the same server) drives two workloads against a
//! server swept over core counts:
//!
//! - **crypto-bound**: windowed batches of 1 KiB READs of a warm file.
//!   Per-frame CPU (user crossing + RPC processing + copies, ~325 µs on
//!   the Pentium III 550 model) dwarfs the 1 KiB wire time, so
//!   aggregate MB/s tracks core count nearly linearly until the fleet's
//!   own reply links saturate.
//! - **disk-bound**: streamed rewrites of a 64 KiB file, each closed
//!   with a sync commit. The spindle dominates, so extra cores buy
//!   little beyond what per-shard group commit amortizes — the curve
//!   flattens exactly where the simulated disk saturates.
//!
//! Aggregate throughput is total payload bytes over the fleet makespan
//! (the slowest client's elapsed virtual time). Every sweep point runs
//! twice and must reproduce byte-for-byte — the engine's placement is
//! deterministic (earliest start, lowest core index) and holds no
//! wall-clock state.
//!
//! Results land in `BENCH_scale.json`. The binary asserts its own
//! envelope and exits nonzero on regression: the crypto-bound workload
//! at the full fleet must scale ≥ 3× from 1 to 4 cores (≥ 1.8× in
//! `--smoke`, which CI runs), stay monotone in cores, and the
//! disk-bound workload must actually exercise group commit (joined
//! commits > 0).
//!
//! Usage: `cargo run --release -p sfs-bench --bin scale [-- --smoke] [--out PATH]`

use std::sync::Arc;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bench::args::Args;
use sfs_bench::calib::{bench_disk_params, BENCH_UID};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{Nfs3Reply, Nfs3Request};
use sfs_proto::channel::SuiteId;
use sfs_sim::{CpuCosts, NetParams, SimClock, SimDisk, Transport};
use sfs_telemetry::{Telemetry, ZeroClock};
use sfs_vfs::{Credentials, Vfs};

/// Frames kept in flight per client batch.
const WINDOW: usize = 16;

/// Crypto-bound READ size: small enough that per-frame CPU dominates
/// the wire.
const READ_CHUNK: usize = 1024;

/// The warm file each client re-reads, one window per round.
const READ_FILE_BYTES: usize = WINDOW * READ_CHUNK;

/// Disk-bound rewrite payload per round (streamed, then sync-committed).
const WRITE_BYTES: usize = 64 * 1024;

/// Cores swept; 1 doubles as the single-core baseline row.
const CORES: [usize; 4] = [1, 2, 4, 8];

/// 4 cores must beat 1 core by at least this factor on the crypto-bound
/// workload at the full fleet.
const REQUIRED_SPEEDUP_FULL: f64 = 3.0;
const REQUIRED_SPEEDUP_SMOKE: f64 = 1.8;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    CryptoReads,
    DiskWrites,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::CryptoReads => "crypto_reads",
            Workload::DiskWrites => "disk_writes",
        }
    }
}

#[derive(Clone, PartialEq)]
struct Row {
    workload: &'static str,
    clients: usize,
    cores: usize,
    virtual_ns: u64,
    total_bytes: u64,
    ops: u64,
    aggregate_mb_per_s: f64,
    per_client_mb_per_s: f64,
    mean_op_us: f64,
    frames_scheduled: u64,
    disk_commits: u64,
    disk_batches: u64,
    disk_joined: u64,
}

fn server_key() -> RabinPrivateKey {
    let mut rng = XorShiftSource::new(0x5CA1E);
    generate_keypair(768, &mut rng)
}

fn user_key() -> RabinPrivateKey {
    let mut rng = XorShiftSource::new(0x5CA1E + 1);
    generate_keypair(512, &mut rng)
}

fn srp_group() -> SrpGroup {
    let mut rng = XorShiftSource::new(0x5CA1E + 2);
    SrpGroup::generate(128, &mut rng)
}

fn body(c: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((c * 137 + i) % 251) as u8).collect()
}

/// One fleet member: a client on its own virtual clock, dialed into the
/// shared server through its own network.
struct Member {
    clock: SimClock,
    client: Arc<SfsClient>,
    path: String,
}

/// Builds the shared N-core server plus a fleet of `clients` windowed
/// clients, each on an independent clock. The server's VFS sits on its
/// own clock with the benchmark disk attached, so measured-phase disk
/// work flows through the engine's per-shard commit queues.
fn build_fleet(
    clients: usize,
    cores: usize,
    suite: SuiteId,
    tel: &Telemetry,
) -> (Arc<SfsServer>, Vec<Member>) {
    let server_clock = SimClock::new();
    let disk = SimDisk::new(server_clock.clone(), bench_disk_params());
    let vfs = Vfs::new(7, server_clock).with_disk(disk);
    let root = Credentials::root();
    let bench_dir = vfs.mkdir_p("/bench").unwrap();
    vfs.setattr(
        &root,
        bench_dir,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            uid: Some(BENCH_UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();

    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "bench".into(),
        uid: BENCH_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("scale.bench"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"scale-server"),
    );
    server.set_cores(cores);
    server.set_telemetry(tel);
    let prefix = format!("{}/bench", server.path().full_path());

    let fleet = (0..clients)
        .map(|c| {
            let clock = SimClock::new();
            let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
            net.register(server.clone());
            let client = SfsClient::with_costs(
                net,
                format!("scale-client-{c}").as_bytes(),
                CpuCosts::pentium_iii_550(),
            );
            client.set_pipeline_window(WINDOW);
            client.set_suite_offer(&[suite]);
            client.agent(BENCH_UID).lock().add_key(user_key());
            Member {
                clock,
                client,
                path: format!("{prefix}/scale-{c}"),
            }
        })
        .collect();
    (server, fleet)
}

/// One sweep point: builds a fresh world, warms every client's file and
/// caches, then runs `rounds` measured rounds interleaved across the
/// fleet so their service windows overlap on the engine's calendars.
fn run_point(
    workload: Workload,
    clients: usize,
    cores: usize,
    suite: SuiteId,
    rounds: usize,
) -> Row {
    let tel = Telemetry::recording(ZeroClock);
    let (server, fleet) = build_fleet(clients, cores, suite, &tel);

    // Warm-up (unmeasured): mount + auth handshakes, file creation, and
    // one read so attribute caches and stream detectors are hot.
    for (c, m) in fleet.iter().enumerate() {
        m.client
            .write_file(BENCH_UID, &m.path, &body(c, READ_FILE_BYTES))
            .unwrap();
        assert_eq!(
            m.client.read_file(BENCH_UID, &m.path).unwrap(),
            body(c, READ_FILE_BYTES)
        );
    }

    let resolved: Vec<_> = fleet
        .iter()
        .map(|m| {
            let (mount, fh, _) = m.client.resolve(BENCH_UID, &m.path).unwrap();
            (mount, fh)
        })
        .collect();
    let t0: Vec<u64> = fleet.iter().map(|m| m.clock.now().as_nanos()).collect();

    let mut total_bytes = 0u64;
    let mut ops = 0u64;
    for round in 0..rounds {
        for (c, m) in fleet.iter().enumerate() {
            match workload {
                Workload::CryptoReads => {
                    let (mount, fh) = &resolved[c];
                    let reqs: Vec<Nfs3Request> = (0..WINDOW)
                        .map(|i| Nfs3Request::Read {
                            fh: fh.clone(),
                            offset: (i * READ_CHUNK) as u64,
                            count: READ_CHUNK as u32,
                        })
                        .collect();
                    let replies = m.client.call_nfs_window(mount, BENCH_UID, &reqs).unwrap();
                    let want = body(c, READ_FILE_BYTES);
                    for (i, reply) in replies.iter().enumerate() {
                        match reply {
                            Nfs3Reply::Read { data, .. } => {
                                assert_eq!(
                                    data.as_slice(),
                                    &want[i * READ_CHUNK..(i + 1) * READ_CHUNK],
                                    "client {c} round {round} read {i}: payload mismatch"
                                );
                                total_bytes += data.len() as u64;
                            }
                            other => panic!("client {c}: unexpected reply {other:?}"),
                        }
                        ops += 1;
                    }
                }
                Workload::DiskWrites => {
                    let data = body(c + round, WRITE_BYTES);
                    m.client.write_file(BENCH_UID, &m.path, &data).unwrap();
                    total_bytes += data.len() as u64;
                    ops += 1;
                }
            }
        }
    }

    let engine = server.shard_engine().expect("engine installed");
    engine.finish(&tel);
    assert!(
        engine.frames_scheduled() > 0,
        "the shard engine never scheduled any work"
    );
    let elapsed: Vec<u64> = fleet
        .iter()
        .zip(&t0)
        .map(|(m, t)| m.clock.now().as_nanos() - t)
        .collect();
    let makespan = *elapsed.iter().max().unwrap();
    let secs = makespan as f64 / 1e9;
    let disk = engine.disk_stats();
    Row {
        workload: workload.label(),
        clients,
        cores,
        virtual_ns: makespan,
        total_bytes,
        ops,
        aggregate_mb_per_s: total_bytes as f64 / 1_000_000.0 / secs,
        per_client_mb_per_s: total_bytes as f64 / clients as f64 / 1_000_000.0 / secs,
        mean_op_us: elapsed.iter().sum::<u64>() as f64 / 1_000.0 / ops as f64,
        frames_scheduled: engine.frames_scheduled(),
        disk_commits: disk.iter().map(|s| s.commits).sum(),
        disk_batches: disk.iter().map(|s| s.batches).sum(),
        disk_joined: disk.iter().map(|s| s.joined).sum(),
    }
}

fn write_json(path: &str, mode: &str, suite: SuiteId, rows: &[Row]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfs-bench/scale/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"suite\": \"{}\",\n", suite.label()));
    out.push_str(&format!(
        "  \"workloads\": {{\"crypto_reads\": {{\"window\": {WINDOW}, \"read_bytes\": {READ_CHUNK}}}, \"disk_writes\": {{\"rewrite_bytes\": {WRITE_BYTES}}}}},\n"
    ));
    out.push_str(
        "  \"unit\": {\"aggregate_mb_per_s\": \"MB/s of virtual time, fleet makespan\", \"virtual_ns\": \"nanoseconds\", \"mean_op_us\": \"microseconds per op, fleet mean\"},\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"clients\": {}, \"cores\": {}, \"virtual_ns\": {}, \"aggregate_mb_per_s\": {:.3}, \"per_client_mb_per_s\": {:.3}, \"mean_op_us\": {:.1}, \"total_bytes\": {}, \"ops\": {}, \"frames_scheduled\": {}, \"disk_commits\": {}, \"disk_batches\": {}, \"disk_joined\": {}}}{}\n",
            r.workload,
            r.clients,
            r.cores,
            r.virtual_ns,
            r.aggregate_mb_per_s,
            r.per_client_mb_per_s,
            r.mean_op_us,
            r.total_bytes,
            r.ops,
            r.frames_scheduled,
            r.disk_commits,
            r.disk_batches,
            r.disk_joined,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let args = Args::from_env();
    args.enforce_known(&["out", "suite"], &["smoke"]);
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = args.opt("out").unwrap_or_else(|| "BENCH_scale.json".into());
    // The sweep runs the negotiated fast suite end-to-end by default;
    // `--suite arc4-sha1` keeps the paper-parity baseline reachable.
    let suite_label = args
        .opt("suite")
        .unwrap_or_else(|| SuiteId::ChaCha20Poly1305.label().into());
    let suite = SuiteId::parse(&suite_label)
        .unwrap_or_else(|| panic!("unknown suite {suite_label:?} (arc4-sha1 | chacha20-poly1305)"));
    let (client_sweep, rounds_read, rounds_write): (&[usize], usize, usize) =
        if smoke { (&[4], 4, 2) } else { (&[2, 8], 8, 4) };
    let fleet_max = *client_sweep.iter().max().unwrap();

    println!("== scale: clients × cores sweep, windowed fleet against one server ==");
    let mut rows: Vec<Row> = Vec::new();
    for &workload in &[Workload::CryptoReads, Workload::DiskWrites] {
        let rounds = match workload {
            Workload::CryptoReads => rounds_read,
            Workload::DiskWrites => rounds_write,
        };
        for &clients in client_sweep {
            for cores in CORES {
                let row = run_point(workload, clients, cores, suite, rounds);
                // Virtual time is deterministic: the identical sweep
                // point must reproduce byte-for-byte.
                let again = run_point(workload, clients, cores, suite, rounds);
                assert!(
                    row == again,
                    "sweep point diverged across reruns: {} clients={clients} cores={cores}",
                    workload.label()
                );
                println!(
                    "  {:>12}  clients {:>2}  cores {:>2}  {:>13} ns makespan  {:>8.2} MB/s aggregate  {:>8.1} µs/op  batches {:>4} (joined {:>4})",
                    row.workload,
                    row.clients,
                    row.cores,
                    row.virtual_ns,
                    row.aggregate_mb_per_s,
                    row.mean_op_us,
                    row.disk_batches,
                    row.disk_joined,
                );
                rows.push(row);
            }
        }
    }
    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        suite,
        &rows,
    );

    // Regression envelope. Virtual time is deterministic, so these are
    // exact checks, not statistical ones.
    let mut failed = false;
    let read_rows: Vec<&Row> = rows
        .iter()
        .filter(|r| r.workload == Workload::CryptoReads.label() && r.clients == fleet_max)
        .collect();
    for pair in read_rows.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // Allow a hair of slack at saturation; below it the curve must
        // rise with cores.
        if b.aggregate_mb_per_s < a.aggregate_mb_per_s * 0.98 {
            eprintln!(
                "FAIL: crypto-bound aggregate fell with cores: {} cores = {:.3} MB/s < {} cores = {:.3} MB/s",
                b.cores, b.aggregate_mb_per_s, a.cores, a.aggregate_mb_per_s
            );
            failed = true;
        }
    }
    let c1 = read_rows.iter().find(|r| r.cores == 1).expect("1-core row");
    let c4 = read_rows.iter().find(|r| r.cores == 4).expect("4-core row");
    let speedup = c4.aggregate_mb_per_s / c1.aggregate_mb_per_s;
    let required = if smoke {
        REQUIRED_SPEEDUP_SMOKE
    } else {
        REQUIRED_SPEEDUP_FULL
    };
    println!("crypto-bound, {fleet_max} clients: 4 cores vs 1 = {speedup:.2}x aggregate");
    if speedup < required {
        eprintln!(
            "FAIL: 4 cores must deliver at least {required}x the single-core aggregate \
             on the crypto-bound workload, got {speedup:.2}x"
        );
        failed = true;
    }
    for r in rows
        .iter()
        .filter(|r| r.workload == Workload::DiskWrites.label())
    {
        // With at least as many disk shards as clients, every file can
        // land on its own spindle and there is legitimately nothing to
        // group; below that, commits contend and batching must show up.
        if r.cores < r.clients && r.disk_joined == 0 {
            eprintln!(
                "FAIL: disk-bound point clients={} cores={} never joined a commit batch — \
                 group commit is not being exercised",
                r.clients, r.cores
            );
            failed = true;
        }
        if r.disk_commits == 0 {
            eprintln!(
                "FAIL: disk-bound point clients={} cores={} scheduled no disk commits",
                r.clients, r.cores
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
