//! A minimal wall-clock micro-benchmark harness for the `benches/`
//! targets. Unlike the `fig*` binaries (deterministic virtual time),
//! these measure genuine CPU time on the host machine, so they are
//! reporting tools, not regression tests.

use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const WINDOW: Duration = Duration::from_millis(100);

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Runs `f` repeatedly until the measurement window fills, then prints
/// mean time per iteration. Returns the mean in ns.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> u128 {
    // Warm up and calibrate the iteration count.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed();
        if dt >= WINDOW || iters >= 1 << 28 {
            let per = dt.as_nanos() / iters as u128;
            println!("{name:<44} {iters:>9} iters   {:>12}/iter", fmt_ns(per));
            return per;
        }
        // Scale the count toward the window (at least double).
        let scale = (WINDOW.as_nanos() / dt.as_nanos().max(1)).clamp(2, 1024) as u64;
        iters = iters.saturating_mul(scale);
    }
}

/// Like [`bench`], also reporting throughput for `bytes` processed per
/// iteration.
pub fn bench_throughput<T>(name: &str, bytes: u64, f: impl FnMut() -> T) {
    let per = bench(name, f);
    if per > 0 {
        let mbps = bytes as f64 * 1e9 / per as f64 / (1024.0 * 1024.0);
        println!("{:>44}   {mbps:>10.1} MiB/s", "");
    }
}
