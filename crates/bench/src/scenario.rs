//! Trace-driven workload scenarios and churn storms.
//!
//! fig5–fig9 drive synthetic sequential streams; this module adds the
//! evidence class the SPEC-SFS lineage uses instead — declarative
//! *op-mix* workloads — plus "million-user day" churn storms exercising
//! the §2.5 key-management machinery no sequential stream touches.
//!
//! Three pieces:
//!
//! 1. **Mix engine** ([`run_mix`]): takes a [`ScenarioSpec`] (op-mix
//!    percentages, file-set shape, client count, op count), builds a
//!    multi-client SFS world on one virtual clock, and replays the mix
//!    through the [`FsBench`] kernel. Every `stat`/`open`/`read` result
//!    is checked against a coherence oracle: observed sizes must be
//!    states the file actually passed through, per-client observations
//!    must be monotone, stale reads older than the server lease are
//!    illegal, and every read byte is checked against the file's
//!    generator function.
//!
//! 2. **Trace recorder** ([`RecordingFs`], [`TraceOp`]): wraps any
//!    `FsBench` and logs the request stream in a line-oriented text
//!    format. A recorded trace replayed through a fresh world
//!    re-records to byte-identical text — the determinism contract the
//!    `scenarios` binary and tests enforce.
//!
//! 3. **Churn storms** (`run_*_storm`): mass mount/unmount waves, agent
//!    key rollover against the authserver, lease-expiry waves, and §2.5
//!    revocation broadcast — paced by [`sfs_sim::ChurnSchedule`] so the
//!    same seed replays the same storm byte-for-byte.
//!
//! Everything here is deterministic: seeded choices, virtual time, no
//! host randomness. Running a scenario twice must produce identical op
//! logs, identical latency tables, and identical final clocks — the
//! `scenarios` binary asserts exactly that before writing its JSON.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use sfs::authserver::{sign_key_update, AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::channel::SuiteId;
use sfs_proto::revoke::RevocationCert;
use sfs_sim::{ChurnSchedule, FaultPlan, NetParams, SimClock, SimDisk, Transport};
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;
use sfs_vfs::{Credentials, SetAttr, Vfs};

use crate::args::{ScenarioOp, ScenarioSpec};
use crate::calib::{bench_disk_params, BENCH_UID};
use crate::kernel::{BenchFsError, FsBench, SfsBench};

/// Lease duration the mix engine's oracle assumes (the
/// [`ServerConfig::new`] default; [`build_world`] only overrides it for
/// the lease storm).
pub const DEFAULT_LEASE_NS: u64 = 30_000_000_000;

/// Cipher suite every scenario client offers (stored as the suite's
/// wire id). Defaults to the negotiated AEAD fast path so scenarios
/// exercise the suite real deployments land on; `scenarios --suite
/// arc4-sha1` flips the whole world back to the paper baseline.
static SCENARIO_SUITE: AtomicU32 = AtomicU32::new(SuiteId::ChaCha20Poly1305.wire_id());

/// Sets the cipher suite [`build_world`] clients offer. Process-global
/// by design: a scenario world's suite is part of its determinism
/// contract, so it is fixed once by the driver, not threaded per run.
pub fn set_scenario_suite(suite: SuiteId) {
    SCENARIO_SUITE.store(suite.wire_id(), Ordering::Relaxed);
}

/// The suite [`build_world`] clients currently offer.
pub fn scenario_suite() -> SuiteId {
    SuiteId::from_wire(SCENARIO_SUITE.load(Ordering::Relaxed))
        .expect("scenario suite is always stored from a valid SuiteId")
}

// ---------------------------------------------------------------- keys

/// Cached scenario server keys (768-bit generation dominates startup).
fn scenario_server_key(which: usize) -> RabinPrivateKey {
    static KEYS: OnceLock<Vec<RabinPrivateKey>> = OnceLock::new();
    KEYS.get_or_init(|| {
        (0..2u64)
            .map(|i| {
                let mut rng = XorShiftSource::new(0x5CE_A000 + 4096 * i);
                generate_keypair(768, &mut rng)
            })
            .collect()
    })[which]
        .clone()
}

/// Cached key for the benchmark user `bench`.
fn scenario_user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x5CE_0001);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

/// Cached small SRP group.
fn scenario_srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x5CE_5209);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

/// The replacement user key rolled in during rollover-storm wave `wave`.
fn rollover_key(wave: usize) -> RabinPrivateKey {
    let mut rng = XorShiftSource::new(0x5CE_B000 + wave as u64);
    generate_keypair(512, &mut rng)
}

// --------------------------------------------------------------- world

/// A multi-client, multi-server SFS world on one virtual clock: the
/// substrate every scenario runs on. Servers share one authserver (one
/// administrative realm); every client's agent holds the `bench` user
/// key.
pub struct ScenarioWorld {
    /// The shared virtual clock.
    pub clock: SimClock,
    /// The shared network fabric.
    pub net: Arc<SfsNetwork>,
    /// Servers at `s{k}.scenario`, key slot `k`.
    pub servers: Vec<Arc<SfsServer>>,
    /// The realm's authserver (shared by all servers).
    pub auth: Arc<AuthServer>,
    /// Clients; all agents hold the `bench` key initially.
    pub clients: Vec<Arc<SfsClient>>,
}

impl ScenarioWorld {
    /// `/sfs/Location:HostID/bench` prefix for server `s`.
    pub fn prefix(&self, s: usize) -> String {
        format!("{}/bench", self.servers[s].path().full_path())
    }
}

/// Builds a world of `clients` clients and `servers` servers (≤ 2).
/// Each server exports a world-writable `/bench` with a world-readable
/// `probe` file and a 0600 `secret` readable only by the `bench` user.
/// `lease_ns` overrides the attribute-lease duration (the lease storm
/// shrinks it); the fault plan, when given, is threaded through the
/// wire, every server, and every disk.
pub fn build_world(
    clients: usize,
    servers: usize,
    lease_ns: Option<u64>,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
) -> ScenarioWorld {
    let clock = SimClock::new();
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    let auth = Arc::new(AuthServer::new(scenario_srp_group(), 2));
    let ukey = scenario_user_key();
    auth.register_user(UserRecord {
        user: "bench".into(),
        uid: BENCH_UID,
        gids: vec![100],
        public_key: ukey.public().to_bytes(),
    });
    if let Some(p) = plan {
        p.set_telemetry(&tel.clone().with_clock(clock.clone()));
        net.set_fault_plan(p.clone());
    }

    let mut srvs = Vec::new();
    for s in 0..servers {
        let location = format!("s{s}.scenario");
        let disk = SimDisk::new(clock.clone(), bench_disk_params());
        if let Some(p) = plan {
            disk.set_fault_plan(p.clone());
        }
        let vfs = Vfs::new(40 + s as u64, clock.clone()).with_disk(disk);
        let root_creds = Credentials::root();
        let bench = vfs.mkdir_p("/bench").unwrap();
        vfs.setattr(
            &root_creds,
            bench,
            SetAttr {
                mode: Some(0o777),
                uid: Some(BENCH_UID),
                gid: Some(100),
                ..Default::default()
            },
        )
        .unwrap();
        for (name, mode, body) in [
            ("probe", 0o644, format!("probe@{location}")),
            ("secret", 0o600, "rollover-secret".to_string()),
        ] {
            vfs.write_file(&root_creds, bench, name, body.as_bytes())
                .unwrap();
            let (ino, _) = vfs.lookup(&root_creds, bench, name).unwrap();
            vfs.setattr(
                &root_creds,
                ino,
                SetAttr {
                    mode: Some(mode),
                    uid: Some(BENCH_UID),
                    gid: Some(100),
                    ..Default::default()
                },
            )
            .unwrap();
        }
        let mut cfg = ServerConfig::new(&location);
        if let Some(l) = lease_ns {
            cfg.lease_ns = l;
        }
        let server = SfsServer::new(
            cfg,
            scenario_server_key(s),
            vfs,
            auth.clone(),
            SfsPrg::from_entropy(format!("scenario-server-{s}").as_bytes()),
        );
        net.register(server.clone());
        if let Some(p) = plan {
            server.set_fault_plan(p.clone());
        }
        server.set_telemetry(tel);
        srvs.push(server);
    }

    let mut cls = Vec::new();
    for c in 0..clients {
        let client = SfsClient::new(net.clone(), format!("scenario-client-{c}").as_bytes());
        client.set_suite_offer(&[scenario_suite()]);
        client.set_telemetry(tel);
        client.agent(BENCH_UID).lock().add_key(ukey.clone());
        cls.push(client);
    }
    ScenarioWorld {
        clock,
        net,
        servers: srvs,
        auth,
        clients: cls,
    }
}

// --------------------------------------------------------------- trace

/// One recorded file-system request. Traces record *requests*, not
/// results: a trace replayed against any world that accepts the ops
/// re-records to byte-identical text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `mkdir <path>`
    Mkdir(String),
    /// `create <path>`
    Create(String),
    /// `write <path> <offset> <hex-data>`
    Write {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// The written bytes.
        data: Vec<u8>,
    },
    /// `read <path> <offset> <len>`
    Read {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Bytes requested.
        len: usize,
    },
    /// `stat <path>`
    Stat(String),
    /// `open <path>`
    Open(String),
    /// `unlink <path>`
    Unlink(String),
    /// `flush <path>`
    Flush(String),
}

fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex data ({} chars)", s.len()));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| format!("bad hex byte {:?}", &s[2 * i..2 * i + 2]))
        })
        .collect()
}

impl TraceOp {
    /// One-line text form. Paths must not contain whitespace (the
    /// scenario engine's generated paths never do).
    pub fn encode(&self) -> String {
        match self {
            TraceOp::Mkdir(p) => format!("mkdir {p}"),
            TraceOp::Create(p) => format!("create {p}"),
            TraceOp::Write { path, offset, data } => {
                format!("write {path} {offset} {}", hex_encode(data))
            }
            TraceOp::Read { path, offset, len } => format!("read {path} {offset} {len}"),
            TraceOp::Stat(p) => format!("stat {p}"),
            TraceOp::Open(p) => format!("open {p}"),
            TraceOp::Unlink(p) => format!("unlink {p}"),
            TraceOp::Flush(p) => format!("flush {p}"),
        }
    }

    /// Parses one line of [`TraceOp::encode`] output.
    pub fn parse(line: &str) -> Result<TraceOp, String> {
        let mut it = line.split_whitespace();
        let verb = it.next().ok_or("empty trace line")?;
        let fields: Vec<&str> = it.collect();
        let arity = |n: usize| -> Result<(), String> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "trace op {verb:?} takes {n} field(s), got {}: {line:?}",
                    fields.len()
                ))
            }
        };
        let num = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("trace {verb} {what} {s:?} is not an integer"))
        };
        match verb {
            "mkdir" | "create" | "stat" | "open" | "unlink" | "flush" => {
                arity(1)?;
                let p = fields[0].to_string();
                Ok(match verb {
                    "mkdir" => TraceOp::Mkdir(p),
                    "create" => TraceOp::Create(p),
                    "stat" => TraceOp::Stat(p),
                    "open" => TraceOp::Open(p),
                    "unlink" => TraceOp::Unlink(p),
                    _ => TraceOp::Flush(p),
                })
            }
            "write" => {
                arity(3)?;
                Ok(TraceOp::Write {
                    path: fields[0].to_string(),
                    offset: num(fields[1], "offset")?,
                    data: hex_decode(fields[2])?,
                })
            }
            "read" => {
                arity(3)?;
                Ok(TraceOp::Read {
                    path: fields[0].to_string(),
                    offset: num(fields[1], "offset")?,
                    len: num(fields[2], "len")? as usize,
                })
            }
            other => Err(format!(
                "unknown trace op {other:?} (known: mkdir, create, write, read, stat, open, \
                 unlink, flush)"
            )),
        }
    }
}

/// Encodes a trace as newline-terminated text.
pub fn encode_trace(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&op.encode());
        out.push('\n');
    }
    out
}

/// Parses [`encode_trace`] output; errors carry the 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| TraceOp::parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Shared request-stream sink for a [`RecordingFs`] (one sink may be
/// shared by many wrappers; requests land in execution order).
pub type TraceSink = Arc<Mutex<Vec<TraceOp>>>;

/// Wraps any [`FsBench`] and records every request into a [`TraceSink`].
/// `chown_fail` (a microbenchmark probe, not a workload op) is delegated
/// without recording.
pub struct RecordingFs {
    inner: Box<dyn FsBench>,
    sink: TraceSink,
}

impl RecordingFs {
    /// Wraps `inner`, appending every request to `sink`.
    pub fn new(inner: Box<dyn FsBench>, sink: TraceSink) -> Self {
        RecordingFs { inner, sink }
    }

    fn log(&self, op: TraceOp) {
        self.sink.lock().push(op);
    }
}

impl FsBench for RecordingFs {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }

    fn mkdir(&self, path: &str) -> Result<(), BenchFsError> {
        self.log(TraceOp::Mkdir(path.to_string()));
        self.inner.mkdir(path)
    }

    fn create(&self, path: &str) -> Result<(), BenchFsError> {
        self.log(TraceOp::Create(path.to_string()));
        self.inner.create(path)
    }

    fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<(), BenchFsError> {
        self.log(TraceOp::Write {
            path: path.to_string(),
            offset,
            data: data.to_vec(),
        });
        self.inner.write(path, offset, data)
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, BenchFsError> {
        self.log(TraceOp::Read {
            path: path.to_string(),
            offset,
            len,
        });
        self.inner.read(path, offset, len)
    }

    fn stat(&self, path: &str) -> Result<u64, BenchFsError> {
        self.log(TraceOp::Stat(path.to_string()));
        self.inner.stat(path)
    }

    fn open(&self, path: &str) -> Result<u64, BenchFsError> {
        self.log(TraceOp::Open(path.to_string()));
        self.inner.open(path)
    }

    fn unlink(&self, path: &str) -> Result<(), BenchFsError> {
        self.log(TraceOp::Unlink(path.to_string()));
        self.inner.unlink(path)
    }

    fn flush(&self, path: &str) -> Result<(), BenchFsError> {
        self.log(TraceOp::Flush(path.to_string()));
        self.inner.flush(path)
    }

    fn chown_fail(&self, path: &str) -> Result<(), BenchFsError> {
        self.inner.chown_fail(path)
    }

    fn set_pipeline_window(&self, window: usize) {
        self.inner.set_pipeline_window(window)
    }

    fn cpu_burn(&self, ns: u64) {
        self.inner.cpu_burn(ns)
    }

    fn rpcs(&self) -> u64 {
        self.inner.rpcs()
    }

    fn drop_caches(&self) {
        self.inner.drop_caches()
    }
}

/// Replays a trace against `fs`, failing on the first op the target
/// refuses.
pub fn replay_trace(fs: &dyn FsBench, ops: &[TraceOp]) -> Result<(), BenchFsError> {
    for op in ops {
        match op {
            TraceOp::Mkdir(p) => fs.mkdir(p)?,
            TraceOp::Create(p) => fs.create(p)?,
            TraceOp::Write { path, offset, data } => fs.write(path, *offset, data)?,
            TraceOp::Read { path, offset, len } => {
                fs.read(path, *offset, *len)?;
            }
            TraceOp::Stat(p) => {
                fs.stat(p)?;
            }
            TraceOp::Open(p) => {
                fs.open(p)?;
            }
            TraceOp::Unlink(p) => fs.unlink(p)?,
            TraceOp::Flush(p) => fs.flush(p)?,
        }
    }
    Ok(())
}

// ----------------------------------------------------------- mix engine

/// What a scenario run produced. Two runs of the same scenario with the
/// same seed must agree on every field byte-for-byte.
pub struct ScenarioOutcome {
    /// One line per operation (setup included), with virtual timestamps.
    pub op_log: Vec<String>,
    /// Final virtual clock, ns.
    pub final_ns: u64,
    /// Oracle assertions that passed (0 would mean the oracle never ran).
    pub oracle_checks: u64,
}

struct Rng(XorShiftSource);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(XorShiftSource::new(seed))
    }

    fn next(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.0.fill(&mut b);
        u64::from_le_bytes(b)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The file-content generator: byte `off` of instance `inst` is a pure
/// function, so any read can be verified without tracking written data.
fn content_byte(instance: u64, off: u64) -> u8 {
    ((instance.wrapping_mul(131)).wrapping_add(off.wrapping_mul(7)) % 251) as u8
}

/// One file slot. A slot holds at most one live file *instance*; the
/// instance number is part of the file name, so a recreated slot never
/// aliases any cache entry of its predecessor.
struct Slot {
    instance: u64,
    len: u64,
    linked: bool,
    /// `(commit t_ns, len)` for every committed state of the current
    /// instance, in commit order.
    history: Vec<(u64, u64)>,
}

fn slot_path(spec: &ScenarioSpec, slot: usize, instance: u64) -> String {
    format!("d{}/f{slot}-{instance}", slot % spec.dirs)
}

/// Aborts a scenario with a labelled oracle-violation message.
fn scenario_fail(name: &str, msg: String) -> ! {
    panic!("scenario {name}: {msg}")
}

/// The sizes the oracle accepts from a cached attribute: any committed
/// state no older than the lease. Returns the lease floor — the largest
/// len whose commit is at least `lease_ns` old (a server that granted a
/// lease after that commit must have shown at least this size).
fn lease_floor(history: &[(u64, u64)], now_ns: u64, lease_ns: u64) -> u64 {
    history
        .iter()
        .filter(|(t, _)| t.saturating_add(lease_ns) <= now_ns)
        .map(|(_, l)| *l)
        .max()
        .unwrap_or(0)
}

/// Replays `spec` against a fresh single-server world, checking every
/// observation against the coherence oracle. `plan` threads seeded
/// faults through the testbed; `trace` records the request stream of
/// every client (setup included) for later replay.
///
/// Panics (with a scenario-labelled message) on any oracle violation or
/// unexpected op failure — scenarios are self-asserting.
pub fn run_mix(
    name: &str,
    spec: &ScenarioSpec,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
    trace: Option<&TraceSink>,
) -> ScenarioOutcome {
    let world = build_world(spec.clients, 1, None, tel, plan);
    let prefix = world.prefix(0);
    let fs: Vec<Box<dyn FsBench>> = world
        .clients
        .iter()
        .map(|c| {
            let bench: Box<dyn FsBench> =
                Box::new(SfsBench::new("SFS", c.clone(), BENCH_UID, &prefix));
            match trace {
                Some(sink) => Box::new(RecordingFs::new(bench, sink.clone())),
                None => bench,
            }
        })
        .collect();
    let clock = &world.clock;
    let mut log: Vec<String> = Vec::new();
    let mut oracle_checks = 0u64;

    // Setup through client 0: directories, then one instance per slot
    // with `file_bytes` of generated content, each committed.
    let mut slots: Vec<Slot> = Vec::with_capacity(spec.files);
    for d in 0..spec.dirs {
        let p = format!("d{d}");
        fs[0]
            .mkdir(&p)
            .unwrap_or_else(|e| scenario_fail(name, format!("setup mkdir {p}: {e}")));
        log.push(format!("{} c0 mkdir {p}", clock.now().as_nanos()));
    }
    for s in 0..spec.files {
        let path = slot_path(spec, s, 0);
        let data: Vec<u8> = (0..spec.file_bytes as u64)
            .map(|o| content_byte(0, o))
            .collect();
        fs[0]
            .create(&path)
            .unwrap_or_else(|e| scenario_fail(name, format!("setup create {path}: {e}")));
        fs[0]
            .write(&path, 0, &data)
            .unwrap_or_else(|e| scenario_fail(name, format!("setup write {path}: {e}")));
        fs[0]
            .flush(&path)
            .unwrap_or_else(|e| scenario_fail(name, format!("setup flush {path}: {e}")));
        let t = clock.now().as_nanos();
        slots.push(Slot {
            instance: 0,
            len: spec.file_bytes as u64,
            linked: true,
            history: vec![(t, spec.file_bytes as u64)],
        });
        log.push(format!("{t} c0 setup {path} len={}", spec.file_bytes));
    }

    // Per-client last observation per (slot, instance): sizes a client
    // reports must never go backwards within one instance.
    let mut observed: Vec<HashMap<(usize, u64), u64>> = vec![HashMap::new(); spec.clients];

    let mut rng = Rng::new(spec.seed);
    let total_weight: u64 = spec.mix.iter().map(|(_, w)| *w as u64).sum();
    for _ in 0..spec.ops {
        let c = rng.below(spec.clients as u64) as usize;
        let mut pick = rng.below(total_weight);
        let mut op = spec.mix[0].0;
        for (o, w) in &spec.mix {
            if pick < *w as u64 {
                op = *o;
                break;
            }
            pick -= *w as u64;
        }
        let linked: Vec<usize> = (0..spec.files).filter(|&s| slots[s].linked).collect();
        let unlinked: Vec<usize> = (0..spec.files).filter(|&s| !slots[s].linked).collect();

        // Feasibility redirects keep the op stream total: an op with no
        // legal target degrades to a stat of some live file.
        let op = match op {
            ScenarioOp::Create if unlinked.is_empty() => ScenarioOp::Stat,
            ScenarioOp::Unlink if linked.len() <= 1 => ScenarioOp::Stat,
            _ => op,
        };

        let t0 = clock.now();
        match op {
            ScenarioOp::Stat | ScenarioOp::Open => {
                let s = linked[rng.below(linked.len() as u64) as usize];
                let path = slot_path(spec, s, slots[s].instance);
                let size = if op == ScenarioOp::Stat {
                    fs[c].stat(&path)
                } else {
                    fs[c].open(&path)
                }
                .unwrap_or_else(|e| scenario_fail(name, format!("{} {path}: {e}", op.label())));
                // Oracle 1: the size is a state this instance passed
                // through.
                if !slots[s].history.iter().any(|(_, l)| *l == size) {
                    scenario_fail(
                        name,
                        format!(
                            "{} {path} returned size {size}, never a committed state ({:?})",
                            op.label(),
                            slots[s].history
                        ),
                    );
                }
                // Oracle 2: per-client monotonicity within the instance.
                let key = (s, slots[s].instance);
                let last = observed[c].get(&key).copied().unwrap_or(0);
                if size < last {
                    scenario_fail(
                        name,
                        format!(
                            "{} {path}: client {c} saw size {size} after already seeing {last}",
                            op.label()
                        ),
                    );
                }
                observed[c].insert(key, size);
                // Oracle 3: staleness bounded by the lease.
                let floor =
                    lease_floor(&slots[s].history, clock.now().as_nanos(), DEFAULT_LEASE_NS);
                if size < floor {
                    scenario_fail(
                        name,
                        format!(
                            "{} {path}: size {size} older than the lease allows (floor {floor})",
                            op.label()
                        ),
                    );
                }
                oracle_checks += 3;
                log.push(format!(
                    "{} c{c} {} {path} -> {size}",
                    t0.as_nanos(),
                    op.label()
                ));
            }
            ScenarioOp::Read => {
                let s = linked[rng.below(linked.len() as u64) as usize];
                let slot = &slots[s];
                let path = slot_path(spec, s, slot.instance);
                // Read only below the lease floor: those bytes are
                // guaranteed present whatever attribute state the
                // client has cached. No floor yet → degrade to stat's
                // bookkeeping via a zero-length log entry.
                let floor = lease_floor(&slot.history, clock.now().as_nanos(), DEFAULT_LEASE_NS);
                // With the 30 s default lease nothing expires inside a
                // short run, so the floor is whatever the *reader's
                // own* knowledge guarantees too; the writer commits
                // synchronously before any other op runs, making every
                // committed byte safe for the *committing* client but
                // only floor bytes safe for everyone. Use the floor
                // when it covers a read, else fall back to this
                // client's own last observation.
                let safe = floor.max(observed[c].get(&(s, slot.instance)).copied().unwrap_or(0));
                if safe < spec.io_bytes as u64 {
                    // Nothing safely readable yet; observe instead.
                    let size = fs[c]
                        .stat(&path)
                        .unwrap_or_else(|e| scenario_fail(name, format!("read→stat {path}: {e}")));
                    observed[c].insert((s, slot.instance), size);
                    oracle_checks += 1;
                    log.push(format!("{} c{c} read0 {path} -> {size}", t0.as_nanos()));
                } else {
                    let off = rng.below(safe - spec.io_bytes as u64 + 1);
                    let data = fs[c]
                        .read(&path, off, spec.io_bytes)
                        .unwrap_or_else(|e| scenario_fail(name, format!("read {path}@{off}: {e}")));
                    if data.len() != spec.io_bytes {
                        scenario_fail(
                            name,
                            format!(
                                "read {path}@{off}: got {} of {} bytes below the safe bound {safe}",
                                data.len(),
                                spec.io_bytes
                            ),
                        );
                    }
                    for (k, b) in data.iter().enumerate() {
                        let want = content_byte(slot.instance, off + k as u64);
                        if *b != want {
                            scenario_fail(name, format!(
                                "read {path}@{off}: byte {k} is {b:#04x}, generator says {want:#04x}"
                            ));
                        }
                    }
                    oracle_checks += 1;
                    log.push(format!(
                        "{} c{c} read {path}@{off}+{}",
                        t0.as_nanos(),
                        spec.io_bytes
                    ));
                }
            }
            ScenarioOp::Write => {
                let s = linked[rng.below(linked.len() as u64) as usize];
                let path = slot_path(spec, s, slots[s].instance);
                let off = slots[s].len;
                let data: Vec<u8> = (off..off + spec.io_bytes as u64)
                    .map(|o| content_byte(slots[s].instance, o))
                    .collect();
                fs[c]
                    .write(&path, off, &data)
                    .unwrap_or_else(|e| scenario_fail(name, format!("write {path}@{off}: {e}")));
                fs[c]
                    .flush(&path)
                    .unwrap_or_else(|e| scenario_fail(name, format!("flush {path}: {e}")));
                if spec.cpu_ns > 0 {
                    fs[c].cpu_burn(spec.cpu_ns);
                }
                let t = clock.now().as_nanos();
                let new_len = off + spec.io_bytes as u64;
                slots[s].len = new_len;
                slots[s].history.push((t, new_len));
                let key = (s, slots[s].instance);
                observed[c].insert(key, new_len);
                log.push(format!(
                    "{} c{c} write {path}@{off}+{}",
                    t0.as_nanos(),
                    spec.io_bytes
                ));
            }
            ScenarioOp::Create => {
                let s = unlinked[rng.below(unlinked.len() as u64) as usize];
                let instance = slots[s].instance + 1;
                let path = slot_path(spec, s, instance);
                fs[c]
                    .create(&path)
                    .unwrap_or_else(|e| scenario_fail(name, format!("create {path}: {e}")));
                let t = clock.now().as_nanos();
                slots[s] = Slot {
                    instance,
                    len: 0,
                    linked: true,
                    history: vec![(t, 0)],
                };
                log.push(format!("{} c{c} create {path}", t0.as_nanos()));
            }
            ScenarioOp::Unlink => {
                let s = linked[rng.below(linked.len() as u64) as usize];
                let path = slot_path(spec, s, slots[s].instance);
                fs[c]
                    .unlink(&path)
                    .unwrap_or_else(|e| scenario_fail(name, format!("unlink {path}: {e}")));
                slots[s].linked = false;
                log.push(format!("{} c{c} unlink {path}", t0.as_nanos()));
            }
        }
        let dur = clock.now().since(t0).as_nanos();
        tel.record("ops", op.label(), dur);
    }

    ScenarioOutcome {
        op_log: log,
        final_ns: clock.now().as_nanos(),
        oracle_checks,
    }
}

// -------------------------------------------------------------- storms

/// Mass mount/unmount waves: clients selected by a [`ChurnSchedule`]
/// drop every mount and renegotiate from scratch, wave after wave —
/// the morning-login stampede. Every remount's latency lands in the
/// `storm/mount_ns` histogram; every remount must succeed and serve a
/// correct probe read.
pub fn run_mount_storm(
    seed: u64,
    clients: usize,
    waves: usize,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
) -> ScenarioOutcome {
    let world = build_world(clients, 1, None, tel, plan);
    let path = world.servers[0].path().clone();
    let probe = format!("{}/probe", world.prefix(0));
    let want = b"probe@s0.scenario".to_vec();
    let mut log = Vec::new();
    let mut oracle_checks = 0u64;

    for (c, client) in world.clients.iter().enumerate() {
        let data = client
            .read_file(BENCH_UID, &probe)
            .unwrap_or_else(|e| panic!("mount-storm warm read c{c}: {e:?}"));
        assert_eq!(data, want, "mount-storm warm probe content");
        oracle_checks += 1;
        log.push(format!("{} c{c} warm", world.clock.now().as_nanos()));
    }

    let schedule = ChurnSchedule::generate(seed, waves, 200_000_000, 50_000_000);
    for (w, wave) in schedule.waves().iter().enumerate() {
        world.clock.advance_to(wave.at);
        for (c, client) in world.clients.iter().enumerate() {
            if !schedule.selects(w, c) {
                continue;
            }
            client.unmount_all();
            let t0 = world.clock.now();
            client
                .mount(BENCH_UID, &path)
                .unwrap_or_else(|e| panic!("mount-storm wave {w} c{c} remount: {e:?}"));
            let dt = world.clock.now().since(t0).as_nanos();
            tel.record("storm", "mount_ns", dt);
            let data = client
                .read_file(BENCH_UID, &probe)
                .unwrap_or_else(|e| panic!("mount-storm wave {w} c{c} probe: {e:?}"));
            assert_eq!(data, want, "mount-storm probe content after remount");
            oracle_checks += 2;
            log.push(format!(
                "{} c{c} wave{w} remount {dt}ns",
                world.clock.now().as_nanos()
            ));
        }
    }
    ScenarioOutcome {
        op_log: log,
        final_ns: world.clock.now().as_nanos(),
        oracle_checks,
    }
}

/// Agent key rollover against the authserver: every wave registers a
/// new public key for `bench` (signed by the old key, §2.5-style),
/// rotated clients swap their agent keys and reconnect, and one
/// designated laggard keeps the stale key — falling back to anonymous
/// credentials, it must lose access to the 0600 `secret` while
/// world-readable files stay reachable.
pub fn run_rollover_storm(
    seed: u64,
    clients: usize,
    waves: usize,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
) -> ScenarioOutcome {
    assert!(clients >= 2, "rollover storm needs a laggard plus rollers");
    let world = build_world(clients, 1, None, tel, plan);
    let secret = format!("{}/secret", world.prefix(0));
    let probe = format!("{}/probe", world.prefix(0));
    let laggard = clients - 1;
    let mut log = Vec::new();
    let mut oracle_checks = 0u64;

    for (c, client) in world.clients.iter().enumerate() {
        let data = client
            .read_file(BENCH_UID, &secret)
            .unwrap_or_else(|e| panic!("rollover warm read c{c}: {e:?}"));
        assert_eq!(data, b"rollover-secret", "warm secret content");
        oracle_checks += 1;
    }
    log.push(format!("{} all-warm", world.clock.now().as_nanos()));

    let schedule = ChurnSchedule::generate(seed, waves, 300_000_000, 60_000_000);
    let mut current = scenario_user_key();
    for (w, wave) in schedule.waves().iter().enumerate() {
        world.clock.advance_to(wave.at);
        let new = rollover_key(w);
        let new_pub = new.public().to_bytes();
        let sig = sign_key_update(&current, "bench", &new_pub);
        world
            .auth
            .change_public_key("bench", &new_pub, &sig)
            .unwrap_or_else(|e| panic!("rollover wave {w}: authserver refused update: {e:?}"));
        let old_pub = current.public().to_bytes();
        assert!(
            world.auth.credentials_for_key(&old_pub).is_none(),
            "rolled-over key must no longer resolve to credentials"
        );
        oracle_checks += 1;
        log.push(format!(
            "{} wave{w} key-rolled",
            world.clock.now().as_nanos()
        ));

        for (c, client) in world.clients.iter().enumerate() {
            if c == laggard {
                continue;
            }
            let t0 = world.clock.now();
            assert!(
                client.agent(BENCH_UID).lock().replace_key(0, new.clone()),
                "agent must hold a key slot 0 to replace"
            );
            client.unmount_all();
            let data = client
                .read_file(BENCH_UID, &secret)
                .unwrap_or_else(|e| panic!("rollover wave {w} c{c} post-roll secret: {e:?}"));
            assert_eq!(data, b"rollover-secret");
            oracle_checks += 2;
            tel.record(
                "storm",
                "rollover_ns",
                world.clock.now().since(t0).as_nanos(),
            );
            log.push(format!(
                "{} c{c} wave{w} rolled",
                world.clock.now().as_nanos()
            ));
        }

        // The laggard's stale key now authenticates as nobody: the
        // server falls back to anonymous credentials, which cannot read
        // a 0600 file but still reach world-readable ones.
        let lc = &world.clients[laggard];
        lc.unmount_all();
        let denied = lc.read_file(BENCH_UID, &secret);
        assert!(
            denied.is_err(),
            "laggard with rolled-over key read the 0600 secret: {denied:?}"
        );
        let open = lc
            .read_file(BENCH_UID, &probe)
            .unwrap_or_else(|e| panic!("rollover wave {w} laggard probe: {e:?}"));
        assert_eq!(open, b"probe@s0.scenario");
        oracle_checks += 2;
        log.push(format!(
            "{} c{laggard} wave{w} laggard-denied",
            world.clock.now().as_nanos()
        ));
        current = new;
    }
    ScenarioOutcome {
        op_log: log,
        final_ns: world.clock.now().as_nanos(),
        oracle_checks,
    }
}

/// Lease-expiry waves: a short-lease world where one writer commits
/// appends and, once the lease has provably expired, every reader must
/// observe the *exact* new size (a stale cached attribute would be a
/// protocol violation, not a tuning artifact) and must have spent RPCs
/// revalidating.
pub fn run_lease_storm(
    seed: u64,
    clients: usize,
    files: usize,
    waves: usize,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
) -> ScenarioOutcome {
    assert!(clients >= 2, "lease storm needs a writer plus readers");
    const LEASE_NS: u64 = 250_000_000;
    const IO: u64 = 512;
    let world = build_world(clients, 1, Some(LEASE_NS), tel, plan);
    let prefix = world.prefix(0);
    let fs: Vec<SfsBench> = world
        .clients
        .iter()
        .map(|c| SfsBench::new("SFS", c.clone(), BENCH_UID, &prefix))
        .collect();
    let mut log = Vec::new();
    let mut oracle_checks = 0u64;
    let mut lens = vec![0u64; files];

    for (f, len) in lens.iter_mut().enumerate() {
        let p = format!("lease{f}");
        fs[0].create(&p).unwrap();
        let data: Vec<u8> = (0..IO).map(|o| content_byte(f as u64, o)).collect();
        fs[0].write(&p, 0, &data).unwrap();
        fs[0].flush(&p).unwrap();
        *len = IO;
    }
    for bench in &fs[1..] {
        for (f, len) in lens.iter().enumerate() {
            let s = bench.stat(&format!("lease{f}")).unwrap();
            assert_eq!(s, *len, "warm stat");
            oracle_checks += 1;
        }
    }
    log.push(format!(
        "{} warm files={files}",
        world.clock.now().as_nanos()
    ));

    let schedule = ChurnSchedule::generate(seed, waves, 400_000_000, 100_000_000);
    for (w, wave) in schedule.waves().iter().enumerate() {
        world.clock.advance_to(wave.at);
        for (f, len) in lens.iter_mut().enumerate() {
            let p = format!("lease{f}");
            let data: Vec<u8> = (*len..*len + IO)
                .map(|o| content_byte(f as u64, o))
                .collect();
            fs[0].write(&p, *len, &data).unwrap();
            fs[0].flush(&p).unwrap();
            *len += IO;
        }
        log.push(format!(
            "{} wave{w} appended len={}",
            world.clock.now().as_nanos(),
            lens[0]
        ));
        // Outlive every lease granted before or during the appends.
        world.clock.advance_ns(LEASE_NS + 1);
        for (c, bench) in fs.iter().enumerate().skip(1) {
            let before = world.clients[c].network_rpcs();
            let t0 = world.clock.now();
            for (f, len) in lens.iter().enumerate() {
                let s = bench.stat(&format!("lease{f}")).unwrap();
                assert_eq!(
                    s, *len,
                    "wave {w}: reader {c} saw a stale size for lease{f} after lease expiry"
                );
                oracle_checks += 1;
            }
            let delta = world.clients[c].network_rpcs() - before;
            assert!(
                delta > 0,
                "wave {w}: reader {c} revalidated nothing — lease expiry not enforced"
            );
            oracle_checks += 1;
            tel.record(
                "storm",
                "lease_wave_ns",
                world.clock.now().since(t0).as_nanos(),
            );
            log.push(format!(
                "{} c{c} wave{w} revalidated rpcs={delta}",
                world.clock.now().as_nanos()
            ));
        }
    }
    ScenarioOutcome {
        op_log: log,
        final_ns: world.clock.now().as_nanos(),
        oracle_checks,
    }
}

/// §2.5 revocation broadcast mid-workload: two servers, every client
/// holding warm mounts (and warm kernel-level handle caches) on both.
/// A revocation certificate for server 0 is installed and broadcast to
/// every agent; from that instant every access to server 0 — including
/// through cached mounts and cached file handles — must be refused,
/// while server 1 traffic is entirely unaffected.
pub fn run_revocation_storm(
    clients: usize,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
) -> ScenarioOutcome {
    let world = build_world(clients, 2, None, tel, plan);
    let bench0: Vec<SfsBench> = world
        .clients
        .iter()
        .map(|c| SfsBench::new("SFS", c.clone(), BENCH_UID, &world.prefix(0)))
        .collect();
    let bench1: Vec<SfsBench> = world
        .clients
        .iter()
        .map(|c| SfsBench::new("SFS", c.clone(), BENCH_UID, &world.prefix(1)))
        .collect();
    let mut log = Vec::new();
    let mut oracle_checks = 0u64;

    // Warm workload: every client touches both servers, filling the
    // mount table, the name cache, and the attribute cache.
    for c in 0..clients {
        for (which, bench) in [(0usize, &bench0[c]), (1, &bench1[c])] {
            let s = bench
                .stat("probe")
                .unwrap_or_else(|e| panic!("revocation warm stat c{c} s{which}: {e}"));
            assert_eq!(s as usize, format!("probe@s{which}.scenario").len());
            let data = bench.read("probe", 0, s as usize).unwrap();
            assert_eq!(data, format!("probe@s{which}.scenario").as_bytes());
            oracle_checks += 2;
        }
    }
    log.push(format!("{} all-warm", world.clock.now().as_nanos()));

    // The broadcast: the owner's self-authenticating certificate is
    // installed at the server and pushed to every agent.
    let cert = RevocationCert::issue(&scenario_server_key(0), "s0.scenario");
    world.servers[0].install_revocation(cert.clone());
    for (c, client) in world.clients.iter().enumerate() {
        assert!(
            client
                .agent(BENCH_UID)
                .lock()
                .submit_revocation(cert.clone()),
            "client {c} agent rejected a valid revocation certificate"
        );
        oracle_checks += 1;
    }
    let t_revoked = world.clock.now().as_nanos();
    log.push(format!("{t_revoked} revocation-broadcast"));

    for c in 0..clients {
        // The cached-handle path: SfsBench still holds the Arc<Mount>
        // and file handle from the warm phase, so this exercises the
        // per-RPC refusal check, not the mount-time one.
        let denied = bench0[c].stat("probe");
        match denied {
            Err(BenchFsError::Sfs(ref msg)) if msg.contains("blocked") => {}
            other => panic!("revocation: c{c} cached-handle access not refused: {other:?}"),
        }
        // The fresh-mount path must refuse too.
        let fresh = world.clients[c].mount(BENCH_UID, world.servers[0].path());
        assert!(
            fresh.is_err(),
            "revocation: c{c} remounted a revoked HostID"
        );
        // The unrevoked server must regress in no way.
        let t0 = world.clock.now();
        let s = bench1[c]
            .stat("probe")
            .unwrap_or_else(|e| panic!("revocation: c{c} unrevoked server regressed: {e}"));
        assert_eq!(s as usize, "probe@s1.scenario".len());
        tel.record(
            "storm",
            "post_revoke_stat_ns",
            world.clock.now().since(t0).as_nanos(),
        );
        oracle_checks += 3;
        log.push(format!(
            "{} c{c} revoked-refused unrevoked-ok",
            world.clock.now().as_nanos()
        ));
    }
    ScenarioOutcome {
        op_log: log,
        final_ns: world.clock.now().as_nanos(),
        oracle_checks,
    }
}

// ------------------------------------------------------------ built-ins

/// The built-in op-mix scenarios.
///
/// - `laddis`: the LADDIS/SPEC-SFS NFS operation mix (heavy lookup/
///   getattr traffic, moderate reads, light writes), mapped onto this
///   engine's op set.
/// - `compile`: an edit-compile cycle over a source tree — open/stat/
///   read-dominated with object-file creation and CPU burned between
///   I/Os.
/// - `mail-spool`: an append-heavy spool — many small committed writes,
///   deliveries (create) and expunges (unlink).
pub fn builtin_mixes() -> Vec<(&'static str, ScenarioSpec)> {
    let parse = |s: &str| ScenarioSpec::parse(s).expect("built-in scenario spec");
    vec![
        (
            "laddis",
            parse(
                "seed=101,clients=4,dirs=8,files=48,file_bytes=8192,io_bytes=4096,ops=600,\
                 cpu_ns=0,mix=stat:13+read:22+write:15+create:2+unlink:1+open:34",
            ),
        ),
        (
            "compile",
            parse(
                "seed=202,clients=2,dirs=6,files=36,file_bytes=4096,io_bytes=2048,ops=400,\
                 cpu_ns=2ms,mix=stat:20+read:30+write:15+create:8+unlink:2+open:25",
            ),
        ),
        (
            "mail-spool",
            parse(
                "seed=303,clients=3,dirs=4,files=24,file_bytes=2048,io_bytes=1024,ops=500,\
                 cpu_ns=0,mix=stat:20+read:25+write:40+create:5+unlink:10",
            ),
        ),
    ]
}

/// The built-in churn storms, by name.
pub const STORM_NAMES: [&str; 4] = [
    "mount-storm",
    "rollover-storm",
    "lease-storm",
    "revocation-storm",
];

/// Runs a built-in storm at the given scale. `scale` shrinks wave and
/// client counts for smoke/test runs (1 = full). Returns `None` for an
/// unknown name.
pub fn run_storm(
    name: &str,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
    smoke: bool,
) -> Option<ScenarioOutcome> {
    let (clients, waves) = if smoke { (3, 2) } else { (6, 4) };
    Some(match name {
        "mount-storm" => run_mount_storm(0xA11_0001, clients, waves, tel, plan),
        "rollover-storm" => run_rollover_storm(0xA11_0002, clients, waves, tel, plan),
        "lease-storm" => run_lease_storm(
            0xA11_0003,
            clients,
            if smoke { 4 } else { 8 },
            waves,
            tel,
            plan,
        ),
        "revocation-storm" => run_revocation_storm(clients, tel, plan),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ops_round_trip() {
        let ops = vec![
            TraceOp::Mkdir("d0".into()),
            TraceOp::Create("d0/f1-0".into()),
            TraceOp::Write {
                path: "d0/f1-0".into(),
                offset: 128,
                data: vec![0, 255, 16],
            },
            TraceOp::Flush("d0/f1-0".into()),
            TraceOp::Read {
                path: "d0/f1-0".into(),
                offset: 0,
                len: 64,
            },
            TraceOp::Stat("d0/f1-0".into()),
            TraceOp::Open("d0/f1-0".into()),
            TraceOp::Unlink("d0/f1-0".into()),
        ];
        let text = encode_trace(&ops);
        assert_eq!(parse_trace(&text).unwrap(), ops);
        assert_eq!(encode_trace(&parse_trace(&text).unwrap()), text);
    }

    #[test]
    fn trace_parse_rejects_garbage() {
        for (line, needle) in [
            ("chmod f", "unknown trace op"),
            ("write f 12", "takes 3 field"),
            ("write f twelve aa", "not an integer"),
            ("write f 12 abc", "odd-length hex"),
            ("write f 12 zz", "bad hex byte"),
            ("stat", "takes 1 field"),
        ] {
            let err = TraceOp::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn lease_floor_tracks_history() {
        let hist = vec![(0, 100), (1_000, 200), (2_000, 300)];
        // Lease 500: everything committed ≥500ns ago counts.
        assert_eq!(lease_floor(&hist, 2_400, 500), 200);
        assert_eq!(lease_floor(&hist, 2_600, 500), 300);
        assert_eq!(lease_floor(&hist, 100, 500), 0);
    }
}
