//! Testbed assembly with the calibrated cost model.
//!
//! §4.1: "We measured file system performance between two 550 MHz Pentium
//! IIIs running FreeBSD 3.3. The client and server were connected by
//! 100 Mbit/sec switched Ethernet. … an IBM 18ES 9 Gigabyte SCSI disk."
//!
//! The cost constants live in [`sfs_sim::CpuCosts::pentium_iii_550`] and
//! [`sfs_sim::NetParams::switched_100mbit`]; they are fitted *only* to the
//! four corners of Figure 5 (the micro-benchmarks). Every other figure is
//! then produced by running the real protocol code over this single model
//! — no per-figure tuning.

use std::sync::Arc;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs::ShardEngine;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::Nfs3Server;
use sfs_sim::{CpuCosts, DiskParams, FaultPlan, NetParams, SimClock, SimDisk, Transport, Wire};
use sfs_telemetry::Telemetry;
use sfs_vfs::{Credentials, Vfs};

use crate::kernel::{FsBench, KernelNfs, LocalFs, SfsBench};

/// The benchmark user.
pub const BENCH_UID: u32 = 1000;

/// The systems compared throughout §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// FreeBSD's local FFS on the server machine.
    Local,
    /// NFS 3 over UDP.
    NfsUdp,
    /// NFS 3 over TCP.
    NfsTcp,
    /// SFS (secure channel, user-level daemons, enhanced caching).
    Sfs,
    /// SFS with software encryption disabled (§4.2/§4.3 ablation).
    SfsNoEncrypt,
    /// SFS without the enhanced attribute/access caching (§4.3 ablation).
    SfsNoCache,
}

impl System {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            System::Local => "Local",
            System::NfsUdp => "NFS 3 (UDP)",
            System::NfsTcp => "NFS 3 (TCP)",
            System::Sfs => "SFS",
            System::SfsNoEncrypt => "SFS w/o encryption",
            System::SfsNoCache => "SFS w/o enhanced caching",
        }
    }

    /// The four systems of Figures 6–9.
    pub fn main_four() -> [System; 4] {
        [System::Local, System::NfsUdp, System::NfsTcp, System::Sfs]
    }
}

/// Disk parameters for the benchmarks: the IBM 18ES with FFS-style
/// cylinder-group clustering of metadata (an effective ~4.5 ms positioning
/// cost for the small synchronous metadata writes that dominate the LFS
/// small-file benchmark).
pub fn bench_disk_params() -> DiskParams {
    DiskParams {
        seek_ns: 4_500_000,
        bandwidth_bps: 13_000_000,
        block_size: 8192,
        write_path_ns_per_byte: 36,
    }
}

/// A fully assembled single-system testbed.
pub struct Testbed {
    /// The virtual clock everything charges.
    pub clock: SimClock,
    /// The file-system stack under test.
    pub fs: Box<dyn FsBench>,
    /// The server-side file system (for cache-state control).
    pub server_vfs: Vfs,
    /// The multi-core scheduler, when built with `cores` on an SFS
    /// system — so reporters can flush its final open commit batches
    /// into the `server.disk.batch_size` histogram after the workload.
    pub shard_engine: Option<Arc<ShardEngine>>,
}

fn server_key() -> RabinPrivateKey {
    // Deterministic testbed key: benchmarks must be reproducible.
    let mut rng = XorShiftSource::new(0x5F5_BE7C);
    generate_keypair(768, &mut rng)
}

fn user_key() -> RabinPrivateKey {
    let mut rng = XorShiftSource::new(0xBE7C_0001);
    generate_keypair(512, &mut rng)
}

fn srp_group() -> SrpGroup {
    let mut rng = XorShiftSource::new(0x5209);
    SrpGroup::generate(128, &mut rng)
}

impl Testbed {
    /// Builds the testbed for one system. The exported file system starts
    /// with a world-writable `bench` directory.
    pub fn build(system: System) -> Testbed {
        Self::build_with_cpu(system, CpuCosts::pentium_iii_550())
    }

    /// Builds the testbed for one system with tracing attached to every
    /// layer (wire, disk, NFS3 engine, SFS server + client).
    pub fn build_traced(system: System, tel: &Telemetry) -> Testbed {
        Self::build_full(system, CpuCosts::pentium_iii_550(), Some(tel), None, None)
    }

    /// Builds the testbed with explicit CPU costs (the §4.5 hardware-
    /// trend experiment swaps in slower/faster processors).
    pub fn build_with_cpu(system: System, cpu: CpuCosts) -> Testbed {
        Self::build_full(system, cpu, None, None, None)
    }

    /// [`Self::build_traced`] with explicit CPU costs.
    pub fn build_traced_with_cpu(system: System, cpu: CpuCosts, tel: &Telemetry) -> Testbed {
        Self::build_full(system, cpu, Some(tel), None, None)
    }

    /// Builds the testbed with a seeded fault plan threaded through every
    /// layer it can reach: the wire (drop/duplicate/reorder/corrupt/
    /// delay/partition), the server (scheduled crash-restarts, SFS only),
    /// and the disk (transient sync-write failures). The same plan handle
    /// is shared, so one seed decides the whole run.
    pub fn build_chaos(
        system: System,
        tel: Option<&Telemetry>,
        plan: Option<&FaultPlan>,
    ) -> Testbed {
        Self::build_full(system, CpuCosts::pentium_iii_550(), tel, plan, None)
    }

    /// [`Self::build_chaos`] with the multi-core `sfs::ShardEngine`
    /// installed on the SFS server (ignored by the non-SFS systems,
    /// which have no sharded dispatch to configure).
    pub fn build_chaos_cores(
        system: System,
        tel: Option<&Telemetry>,
        plan: Option<&FaultPlan>,
        cores: Option<usize>,
    ) -> Testbed {
        Self::build_full(system, CpuCosts::pentium_iii_550(), tel, plan, cores)
    }

    fn build_full(
        system: System,
        cpu: CpuCosts,
        tel: Option<&Telemetry>,
        fault: Option<&FaultPlan>,
        cores: Option<usize>,
    ) -> Testbed {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock.clone(), bench_disk_params());
        if let Some(tel) = tel {
            disk.set_telemetry(tel);
        }
        if let Some(plan) = fault {
            if let Some(tel) = tel {
                plan.set_telemetry(&tel.clone().with_clock(clock.clone()));
            }
            disk.set_fault_plan(plan.clone());
        }
        let vfs = Vfs::new(7, clock.clone()).with_disk(disk);
        let root_creds = Credentials::root();
        let bench_dir = vfs.mkdir_p("/bench").unwrap();
        vfs.setattr(
            &root_creds,
            bench_dir,
            sfs_vfs::SetAttr {
                mode: Some(0o777),
                uid: Some(BENCH_UID),
                gid: Some(100),
                ..Default::default()
            },
        )
        .unwrap();

        let fs: Box<dyn FsBench> = match system {
            System::Local => Box::new(LocalFs::new(vfs.clone(), clock.clone())),
            System::NfsUdp | System::NfsTcp => {
                let transport = if system == System::NfsUdp {
                    Transport::Udp
                } else {
                    Transport::Tcp
                };
                let mut wire = Wire::new(clock.clone(), NetParams::switched_100mbit(transport));
                let server = Nfs3Server::new(vfs.clone());
                if let Some(tel) = tel {
                    wire.set_telemetry(tel);
                    server.set_telemetry(tel);
                }
                if let Some(plan) = fault {
                    wire.set_fault_plan(plan.clone());
                }
                Box::new(KernelNfs::new(
                    system.label(),
                    clock.clone(),
                    wire,
                    server,
                    cpu,
                ))
            }
            System::Sfs | System::SfsNoEncrypt | System::SfsNoCache => {
                let auth = Arc::new(AuthServer::new(srp_group(), 2));
                let ukey = user_key();
                auth.register_user(UserRecord {
                    user: "bench".into(),
                    uid: BENCH_UID,
                    gids: vec![100],
                    public_key: ukey.public().to_bytes(),
                });
                let server = SfsServer::new(
                    ServerConfig::new("server.bench"),
                    server_key(),
                    vfs.clone(),
                    auth,
                    SfsPrg::from_entropy(b"bench-server"),
                );
                if let Some(n) = cores {
                    server.set_cores(n);
                }
                let net =
                    SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
                net.register(server.clone());
                if let Some(plan) = fault {
                    net.set_fault_plan(plan.clone());
                    server.set_fault_plan(plan.clone());
                }
                let client = SfsClient::with_costs(net, b"bench-client", cpu);
                if let Some(tel) = tel {
                    server.set_telemetry(tel);
                    client.set_telemetry(tel);
                }
                client.agent(BENCH_UID).lock().add_key(ukey);
                match system {
                    System::SfsNoEncrypt => client.set_charge_crypto(false),
                    System::SfsNoCache => client.set_caching(false),
                    _ => {}
                }
                let prefix = format!("{}/bench", server.path().full_path());
                let shard_engine = server.shard_engine();
                let bench = SfsBench::new(system.label(), client, BENCH_UID, &prefix);
                return Testbed {
                    clock,
                    fs: Box::new(bench),
                    server_vfs: vfs,
                    shard_engine,
                };
            }
        };
        Testbed {
            clock,
            fs,
            server_vfs: vfs,
            shard_engine: None,
        }
    }

    /// Path prefix used by workloads ("" = the bench directory itself).
    /// Local and NFS stacks address the bench dir explicitly.
    pub fn root_dir(&self, system: System) -> &'static str {
        match system {
            System::Sfs | System::SfsNoEncrypt | System::SfsNoCache => "",
            _ => "bench",
        }
    }
}

/// Convenience: build a testbed and return (fs, clock) with workload paths
/// rooted correctly. The returned prefix already contains the trailing
/// component separator handling — workloads join with `/`.
pub fn build_fs(system: System) -> (Box<dyn FsBench>, SimClock, String, Vfs) {
    let tb = Testbed::build(system);
    let prefix = tb.root_dir(system).to_string();
    (tb.fs, tb.clock, prefix, tb.server_vfs)
}

/// [`build_fs`] with explicit CPU costs.
pub fn build_fs_with_cpu(
    system: System,
    cpu: CpuCosts,
) -> (Box<dyn FsBench>, SimClock, String, Vfs) {
    let tb = Testbed::build_with_cpu(system, cpu);
    let prefix = tb.root_dir(system).to_string();
    (tb.fs, tb.clock, prefix, tb.server_vfs)
}

/// [`build_fs`] with a tracing sink threaded through every layer. Pass a
/// disabled [`Telemetry`] to get exactly the [`build_fs`] behaviour.
pub fn build_fs_traced(
    system: System,
    tel: &Telemetry,
) -> (Box<dyn FsBench>, SimClock, String, Vfs) {
    let tb = Testbed::build_traced(system, tel);
    let prefix = tb.root_dir(system).to_string();
    (tb.fs, tb.clock, prefix, tb.server_vfs)
}

/// [`build_fs_traced`] with an optional seeded fault plan threaded
/// through the wire, server, and disk (the `--faults` flag).
pub fn build_fs_chaos(
    system: System,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
) -> (Box<dyn FsBench>, SimClock, String, Vfs) {
    let tb = Testbed::build_chaos(system, Some(tel), plan);
    let prefix = tb.root_dir(system).to_string();
    (tb.fs, tb.clock, prefix, tb.server_vfs)
}

/// [`build_fs_chaos`] with the multi-core shard engine installed on the
/// SFS server (no-op for the non-SFS systems). Also returns the engine
/// handle so the caller can flush its final open commit batches into
/// telemetry once the workload finishes.
#[allow(clippy::type_complexity)]
pub fn build_fs_chaos_cores(
    system: System,
    tel: &Telemetry,
    plan: Option<&FaultPlan>,
    cores: Option<usize>,
) -> (
    Box<dyn FsBench>,
    SimClock,
    String,
    Vfs,
    Option<Arc<ShardEngine>>,
) {
    let tb = Testbed::build_chaos_cores(system, Some(tel), plan, cores);
    let prefix = tb.root_dir(system).to_string();
    (tb.fs, tb.clock, prefix, tb.server_vfs, tb.shard_engine)
}

/// [`build_fs_traced`] with explicit CPU costs.
pub fn build_fs_traced_cpu(
    system: System,
    cpu: CpuCosts,
    tel: &Telemetry,
) -> (Box<dyn FsBench>, SimClock, String, Vfs) {
    let tb = Testbed::build_traced_with_cpu(system, cpu, tel);
    let prefix = tb.root_dir(system).to_string();
    (tb.fs, tb.clock, prefix, tb.server_vfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_are_deterministic() {
        // The simulator's core promise: identical runs give identical
        // virtual times, bit for bit.
        let run = || {
            let (fs, clock, prefix, _) = build_fs(System::Sfs);
            let p = format!("{prefix}/det").trim_start_matches('/').to_string();
            fs.create(&p).unwrap();
            fs.write(&p, 0, b"determinism").unwrap();
            for _ in 0..10 {
                fs.read(&p, 0, 11).unwrap();
                fs.stat(&p).unwrap();
            }
            clock.now().as_nanos()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_systems_build_and_do_io() {
        for system in [
            System::Local,
            System::NfsUdp,
            System::NfsTcp,
            System::Sfs,
            System::SfsNoEncrypt,
            System::SfsNoCache,
        ] {
            let (fs, clock, prefix, _) = build_fs(system);
            let p = |name: &str| {
                if prefix.is_empty() {
                    name.to_string()
                } else {
                    format!("{prefix}/{name}")
                }
            };
            fs.create(&p("hello")).unwrap();
            fs.write(&p("hello"), 0, b"world").unwrap();
            assert_eq!(fs.read(&p("hello"), 0, 5).unwrap(), b"world");
            assert_eq!(fs.stat(&p("hello")).unwrap(), 5);
            fs.unlink(&p("hello")).unwrap();
            assert!(clock.now().as_nanos() > 0, "{system:?} charged no time");
        }
    }

    #[test]
    fn sfs_slower_than_nfs_on_rpc_latency() {
        // The Figure-5 ordering must hold structurally.
        let mut times = Vec::new();
        for system in [System::NfsUdp, System::NfsTcp, System::Sfs] {
            let (fs, clock, prefix, _) = build_fs(system);
            let p = format!("{prefix}/f").trim_start_matches('/').to_string();
            fs.create(&p).unwrap();
            let t0 = clock.now();
            for _ in 0..100 {
                fs.chown_fail(&p).unwrap();
            }
            times.push(clock.now().since(t0).as_nanos());
        }
        assert!(times[0] < times[1], "UDP < TCP: {times:?}");
        assert!(times[1] < times[2], "TCP < SFS: {times:?}");
    }
}
