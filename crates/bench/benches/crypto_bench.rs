//! Criterion micro-benchmarks of the real cryptographic primitives — the
//! quantities §4.2 attributes SFS's costs to (software encryption, MACs,
//! public-key operations). Unlike the `fig*` binaries (virtual time),
//! these measure genuine CPU time on the host machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfs_bignum::XorShiftSource;
use sfs_crypto::arc4::Arc4;
use sfs_crypto::blowfish::Blowfish;
use sfs_crypto::eksblowfish::bcrypt_hash;
use sfs_crypto::mac::SfsMac;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::sha1::sha1;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 8192, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha1(d))
        });
    }
    g.finish();
}

fn bench_arc4(c: &mut Criterion) {
    let mut g = c.benchmark_group("arc4");
    for size in [1024usize, 8192, 65536] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            let mut cipher = Arc4::new(b"a-twenty-byte-key!!!");
            let mut buf = vec![0u8; s];
            b.iter(|| cipher.process(&mut buf))
        });
    }
    g.finish();
}

fn bench_sfs_mac(c: &mut Criterion) {
    let mut g = c.benchmark_group("sfs_mac");
    let key = [7u8; 32];
    for size in [128usize, 8192] {
        let data = vec![1u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| SfsMac::compute(&key, d))
        });
    }
    g.finish();
}

fn bench_blowfish(c: &mut Criterion) {
    let mut g = c.benchmark_group("blowfish");
    g.bench_function("key_schedule_20B", |b| {
        b.iter(|| Blowfish::new(b"a-twenty-byte-key!!!"))
    });
    let bf = Blowfish::new(b"a-twenty-byte-key!!!");
    g.bench_function("cbc_encrypt_24B_handle", |b| {
        let mut handle = [0u8; 24];
        b.iter(|| bf.cbc_encrypt(&mut handle))
    });
    g.finish();
}

fn bench_eksblowfish(c: &mut Criterion) {
    let mut g = c.benchmark_group("eksblowfish");
    g.sample_size(10);
    let salt = [9u8; 16];
    // "Even as hardware improves, guessing attacks should continue to
    // take almost a full second" — show the cost doubling per step.
    for cost in [2u32, 4, 6] {
        g.bench_with_input(BenchmarkId::new("bcrypt_cost", cost), &cost, |b, &cost| {
            b.iter(|| bcrypt_hash(cost, &salt, b"hunter2"))
        });
    }
    g.finish();
}

fn bench_rabin(c: &mut Criterion) {
    let mut g = c.benchmark_group("rabin_768");
    g.sample_size(20);
    let mut rng = XorShiftSource::new(0xBE4C);
    let key = generate_keypair(768, &mut rng);
    let msg = b"16-byte-session!";
    let cipher = key.public().encrypt(msg, &mut rng).unwrap();
    let sig = key.sign(b"a message to sign");
    // "Like low-exponent RSA, encryption and signature verification are
    // particularly fast in Rabin because they do not require modular
    // exponentiation" — these four bars show the asymmetry.
    g.bench_function("encrypt", |b| {
        let mut rng = XorShiftSource::new(1);
        b.iter(|| key.public().encrypt(msg, &mut rng).unwrap())
    });
    g.bench_function("decrypt", |b| b.iter(|| key.decrypt(&cipher).unwrap()));
    g.bench_function("sign", |b| b.iter(|| key.sign(b"a message to sign")));
    g.bench_function("verify", |b| {
        b.iter(|| assert!(key.public().verify(b"a message to sign", &sig)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_arc4,
    bench_sfs_mac,
    bench_blowfish,
    bench_eksblowfish,
    bench_rabin
);
criterion_main!(benches);
