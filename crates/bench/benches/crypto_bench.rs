//! Micro-benchmarks of the real cryptographic primitives — the
//! quantities §4.2 attributes SFS's costs to (software encryption, MACs,
//! public-key operations). Unlike the `fig*` binaries (virtual time),
//! these measure genuine CPU time on the host machine.

use sfs_bench::microbench::{bench, bench_throughput};
use sfs_bignum::XorShiftSource;
use sfs_crypto::arc4::Arc4;
use sfs_crypto::blowfish::Blowfish;
use sfs_crypto::eksblowfish::bcrypt_hash;
use sfs_crypto::mac::SfsMac;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::sha1::sha1;

fn bench_sha1() {
    for size in [64usize, 1024, 8192, 65536] {
        let data = vec![0xabu8; size];
        bench_throughput(&format!("sha1/{size}"), size as u64, || sha1(&data));
    }
}

fn bench_arc4() {
    for size in [1024usize, 8192, 65536] {
        let mut cipher = Arc4::new(b"a-twenty-byte-key!!!");
        let mut buf = vec![0u8; size];
        bench_throughput(&format!("arc4/{size}"), size as u64, || {
            cipher.process(&mut buf)
        });
    }
}

fn bench_sfs_mac() {
    let key = [7u8; 32];
    for size in [128usize, 8192] {
        let data = vec![1u8; size];
        bench_throughput(&format!("sfs_mac/{size}"), size as u64, || {
            SfsMac::compute(&key, &data)
        });
    }
}

fn bench_blowfish() {
    bench("blowfish/key_schedule_20B", || {
        Blowfish::new(b"a-twenty-byte-key!!!")
    });
    let bf = Blowfish::new(b"a-twenty-byte-key!!!");
    let mut handle = [0u8; 24];
    bench("blowfish/cbc_encrypt_24B_handle", || {
        bf.cbc_encrypt(&mut handle)
    });
}

fn bench_eksblowfish() {
    let salt = [9u8; 16];
    // "Even as hardware improves, guessing attacks should continue to
    // take almost a full second" — show the cost doubling per step.
    for cost in [2u32, 4, 6] {
        bench(&format!("eksblowfish/bcrypt_cost_{cost}"), || {
            bcrypt_hash(cost, &salt, b"hunter2")
        });
    }
}

fn bench_rabin() {
    let mut rng = XorShiftSource::new(0xBE4C);
    let key = generate_keypair(768, &mut rng);
    let msg = b"16-byte-session!";
    let cipher = key.public().encrypt(msg, &mut rng).unwrap();
    let sig = key.sign(b"a message to sign");
    // "Like low-exponent RSA, encryption and signature verification are
    // particularly fast in Rabin because they do not require modular
    // exponentiation" — these four rows show the asymmetry.
    let mut enc_rng = XorShiftSource::new(1);
    bench("rabin_768/encrypt", || {
        key.public().encrypt(msg, &mut enc_rng).unwrap()
    });
    bench("rabin_768/decrypt", || key.decrypt(&cipher).unwrap());
    bench("rabin_768/sign", || key.sign(b"a message to sign"));
    bench("rabin_768/verify", || {
        assert!(key.public().verify(b"a message to sign", &sig))
    });
}

fn main() {
    bench_sha1();
    bench_arc4();
    bench_sfs_mac();
    bench_blowfish();
    bench_eksblowfish();
    bench_rabin();
}
