//! Micro-benchmarks of the SFS protocol layers: XDR marshaling, the
//! secure channel (seal/open), HostID computation, the full key
//! negotiation, and user-authentication signing/validation.

use sfs_bench::microbench::{bench, bench_throughput};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_proto::channel::SecureChannelEnd;
use sfs_proto::keyneg::{server_process_client_keys, KeyNegClient, KeyNegServerReply, SessionKeys};
use sfs_proto::pathname::{HostId, SelfCertifyingPath};
use sfs_proto::userauth::{AuthInfo, AuthMsg};
use sfs_xdr::rpc::{OpaqueAuth, RpcCall, RpcMessage};
use sfs_xdr::Xdr;

fn keypair(seed: u64, bits: usize) -> RabinPrivateKey {
    let mut rng = XorShiftSource::new(seed);
    generate_keypair(bits, &mut rng)
}

fn bench_xdr() {
    let call = RpcMessage::Call(RpcCall {
        xid: 7,
        prog: 100003,
        vers: 3,
        proc: 6,
        cred: OpaqueAuth::sfs_authno(3),
        verf: OpaqueAuth::none(),
        args: vec![0u8; 128],
    });
    bench("xdr/rpc_call_encode", || call.to_xdr());
    let bytes = call.to_xdr();
    bench("xdr/rpc_call_decode", || {
        RpcMessage::from_xdr(&bytes).unwrap()
    });
}

fn bench_channel() {
    let keys = SessionKeys {
        kcs: *b"benchmark-kcs-key-!!",
        ksc: *b"benchmark-ksc-key-!!",
        session_id: [0u8; 20],
    };
    for size in [128usize, 8192] {
        let payload = vec![0u8; size];
        let mut end = SecureChannelEnd::client(&keys);
        bench_throughput(&format!("secure_channel/seal/{size}"), size as u64, || {
            end.seal(&payload).unwrap()
        });
        let mut tx = SecureChannelEnd::client(&keys);
        let mut rx = SecureChannelEnd::server(&keys);
        bench_throughput(
            &format!("secure_channel/seal_open/{size}"),
            size as u64,
            || {
                let f = tx.seal(&payload).unwrap();
                rx.open(&f).unwrap()
            },
        );
    }
}

fn bench_hostid() {
    let key = keypair(1, 768);
    bench("hostid_compute", || {
        HostId::compute("sfs.lcs.mit.edu", key.public())
    });
}

fn bench_key_negotiation() {
    let server = keypair(2, 768);
    let ephemeral = keypair(3, 768);
    let path = SelfCertifyingPath::for_server("bench.example.org", server.public());
    // The full Figure-3 exchange: both sides, four messages.
    bench("key_negotiation/full_exchange_768", || {
        let mut crng = XorShiftSource::new(4);
        let mut srng = XorShiftSource::new(5);
        let client = KeyNegClient::new(path.clone(), ephemeral.clone());
        let reply = KeyNegServerReply::ServerKey(server.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (skeys, _suite, msg4) =
            server_process_client_keys(&server, &msg3, "", &mut srng).unwrap();
        let (ckeys, _) = awaiting.on_server_halves(&msg4).unwrap();
        assert_eq!(skeys.session_id, ckeys.session_id);
    });
}

fn bench_user_auth() {
    let user = keypair(6, 512);
    let info = AuthInfo::for_fs("bench.example.org", HostId([1u8; 20]), [2u8; 20]);
    let mut seq = 0u32;
    bench("user_auth/agent_sign", || {
        seq += 1;
        AuthMsg::sign(&user, &info, seq)
    });
    let msg = AuthMsg::sign(&user, &info, 1);
    bench("user_auth/authserver_verify", || {
        msg.verify(&info.auth_id(), 1).unwrap()
    });
}

fn main() {
    bench_xdr();
    bench_channel();
    bench_hostid();
    bench_key_negotiation();
    bench_user_auth();
}
