//! Criterion benchmarks of the SFS protocol layers: XDR marshaling, the
//! secure channel (seal/open), HostID computation, the full key
//! negotiation, and user-authentication signing/validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_proto::channel::SecureChannelEnd;
use sfs_proto::keyneg::{server_process_client_keys, KeyNegClient, KeyNegServerReply, SessionKeys};
use sfs_proto::pathname::{HostId, SelfCertifyingPath};
use sfs_proto::userauth::{AuthInfo, AuthMsg};
use sfs_xdr::rpc::{OpaqueAuth, RpcCall, RpcMessage};
use sfs_xdr::Xdr;

fn keypair(seed: u64, bits: usize) -> RabinPrivateKey {
    let mut rng = XorShiftSource::new(seed);
    generate_keypair(bits, &mut rng)
}

fn bench_xdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdr");
    let call = RpcMessage::Call(RpcCall {
        xid: 7,
        prog: 100003,
        vers: 3,
        proc: 6,
        cred: OpaqueAuth::sfs_authno(3),
        verf: OpaqueAuth::none(),
        args: vec![0u8; 128],
    });
    g.bench_function("rpc_call_encode", |b| b.iter(|| call.to_xdr()));
    let bytes = call.to_xdr();
    g.bench_function("rpc_call_decode", |b| {
        b.iter(|| RpcMessage::from_xdr(&bytes).unwrap())
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("secure_channel");
    let keys = SessionKeys {
        kcs: *b"benchmark-kcs-key-!!",
        ksc: *b"benchmark-ksc-key-!!",
        session_id: [0u8; 20],
    };
    for size in [128usize, 8192] {
        let payload = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("seal", size), &payload, |b, p| {
            let mut end = SecureChannelEnd::client(&keys);
            b.iter(|| end.seal(p).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("seal_open", size), &payload, |b, p| {
            let mut tx = SecureChannelEnd::client(&keys);
            let mut rx = SecureChannelEnd::server(&keys);
            b.iter(|| {
                let f = tx.seal(p).unwrap();
                rx.open(&f).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_hostid(c: &mut Criterion) {
    let key = keypair(1, 768);
    c.bench_function("hostid_compute", |b| {
        b.iter(|| HostId::compute("sfs.lcs.mit.edu", key.public()))
    });
}

fn bench_key_negotiation(c: &mut Criterion) {
    let mut g = c.benchmark_group("key_negotiation");
    g.sample_size(10);
    let server = keypair(2, 768);
    let ephemeral = keypair(3, 768);
    let path = SelfCertifyingPath::for_server("bench.example.org", server.public());
    // The full Figure-3 exchange: both sides, four messages.
    g.bench_function("full_exchange_768", |b| {
        b.iter(|| {
            let mut crng = XorShiftSource::new(4);
            let mut srng = XorShiftSource::new(5);
            let client = KeyNegClient::new(path.clone(), ephemeral.clone());
            let reply = KeyNegServerReply::ServerKey(server.public().to_bytes());
            let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
            let (skeys, msg4) = server_process_client_keys(&server, &msg3, &mut srng).unwrap();
            let ckeys = awaiting.on_server_halves(&msg4).unwrap();
            assert_eq!(skeys.session_id, ckeys.session_id);
        })
    });
    g.finish();
}

fn bench_user_auth(c: &mut Criterion) {
    let mut g = c.benchmark_group("user_auth");
    g.sample_size(20);
    let user = keypair(6, 512);
    let info = AuthInfo::for_fs("bench.example.org", HostId([1u8; 20]), [2u8; 20]);
    g.bench_function("agent_sign", |b| {
        let mut seq = 0u32;
        b.iter(|| {
            seq += 1;
            AuthMsg::sign(&user, &info, seq)
        })
    });
    let msg = AuthMsg::sign(&user, &info, 1);
    g.bench_function("authserver_verify", |b| {
        b.iter(|| msg.verify(&info.auth_id(), 1).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_xdr,
    bench_channel,
    bench_hostid,
    bench_key_negotiation,
    bench_user_auth
);
criterion_main!(benches);
