//! Arbitrary-precision arithmetic for the SFS reproduction.
//!
//! The original SFS implemented Rabin–Williams public-key encryption and
//! signatures, and the SRP password protocol, both of which need multi-
//! precision modular arithmetic. This crate is that substrate, written from
//! scratch: natural numbers ([`Nat`]), signed integers ([`Int`]), modular
//! exponentiation, extended GCD, Jacobi symbols, modular square roots,
//! Chinese-remainder recombination, Miller–Rabin primality testing, and
//! prime generation with the congruence constraints Rabin–Williams needs
//! (`p ≡ 3 (mod 8)`, `q ≡ 7 (mod 8)`).
//!
//! Randomness is abstracted behind [`RandomSource`] so that all protocol
//! randomness can flow through the paper's DSS-style SHA-1 generator
//! (implemented in `sfs-crypto`), keeping this crate dependency-free.

mod int;
mod modular;
mod nat;
mod prime;
mod rand_source;

pub use int::{Int, Sign};
pub use modular::{crt_pair, invmod, jacobi, modpow, sqrt_mod_3mod4};
pub use nat::{DivideByZero, Nat};
pub use prime::{gen_prime, gen_prime_congruent, is_probable_prime, MR_ROUNDS};
pub use rand_source::{CountingSource, RandomSource, XorShiftSource};
