//! Signed arbitrary-precision integers (sign-magnitude over [`Nat`]).
//!
//! Only the operations the extended GCD and CRT recombination need are
//! provided; everything protocol-facing works on naturals.

use std::cmp::Ordering;
use std::fmt;

use crate::nat::Nat;

/// Sign of an [`Int`]. Zero is canonically [`Sign::Plus`] with zero
/// magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// A signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq)]
pub struct Int {
    sign: Sign,
    mag: Nat,
}

impl Int {
    /// Returns zero.
    pub fn zero() -> Self {
        Int {
            sign: Sign::Plus,
            mag: Nat::zero(),
        }
    }

    /// Returns one.
    pub fn one() -> Self {
        Int::from_nat(Nat::one())
    }

    /// Wraps a natural number as a non-negative integer.
    pub fn from_nat(mag: Nat) -> Self {
        Int {
            sign: Sign::Plus,
            mag,
        }
    }

    /// Constructs from an explicit sign and magnitude (zero is normalized to
    /// `Plus`).
    pub fn new(sign: Sign, mag: Nat) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// The integer's sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The integer's magnitude.
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// Returns `true` if zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Negation.
    pub fn neg(&self) -> Int {
        match self.sign {
            _ if self.is_zero() => Int::zero(),
            Sign::Plus => Int {
                sign: Sign::Minus,
                mag: self.mag.clone(),
            },
            Sign::Minus => Int {
                sign: Sign::Plus,
                mag: self.mag.clone(),
            },
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Int) -> Int {
        if self.sign == other.sign {
            return Int::new(self.sign, self.mag.add_nat(&other.mag));
        }
        match self.mag.cmp(&other.mag) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::new(self.sign, self.mag.checked_sub(&other.mag).unwrap()),
            Ordering::Less => Int::new(other.sign, other.mag.checked_sub(&self.mag).unwrap()),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Int) -> Int {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &Int) -> Int {
        let sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Int::new(sign, self.mag.mul_nat(&other.mag))
    }

    /// Reduces into `[0, m)` (mathematical modulus, not truncation).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &Nat) -> Nat {
        let r = self.mag.rem_nat(m).expect("modulus must be nonzero");
        match self.sign {
            Sign::Plus => r,
            Sign::Minus if r.is_zero() => r,
            Sign::Minus => m.checked_sub(&r).unwrap(),
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        if v < 0 {
            Int::new(Sign::Minus, Nat::from(v.unsigned_abs()))
        } else {
            Int::from_nat(Nat::from(v as u64))
        }
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{:?}", self.mag)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn signs_normalize_zero() {
        assert_eq!(Int::new(Sign::Minus, Nat::zero()), Int::zero());
        assert!(!Int::zero().is_negative());
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(i(5).add(&i(-3)), i(2));
        assert_eq!(i(3).add(&i(-5)), i(-2));
        assert_eq!(i(-3).add(&i(-5)), i(-8));
        assert_eq!(i(5).add(&i(-5)), Int::zero());
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(i(5).sub(&i(8)), i(-3));
        assert_eq!(i(-5).neg(), i(5));
        assert_eq!(Int::zero().neg(), Int::zero());
    }

    #[test]
    fn mul_signs() {
        assert_eq!(i(-4).mul(&i(3)), i(-12));
        assert_eq!(i(-4).mul(&i(-3)), i(12));
        assert_eq!(i(4).mul(&i(0)), Int::zero());
    }

    #[test]
    fn rem_euclid_negative() {
        let m = Nat::from(7u64);
        assert_eq!(i(-1).rem_euclid(&m), Nat::from(6u64));
        assert_eq!(i(-7).rem_euclid(&m), Nat::zero());
        assert_eq!(i(10).rem_euclid(&m), Nat::from(3u64));
    }

    #[test]
    fn display() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(i(42).to_string(), "42");
    }
}
