//! Primality testing and prime generation.
//!
//! Rabin–Williams key generation (paper §3.1.3) needs primes with specific
//! residues modulo 8 (`p ≡ 3`, `q ≡ 7`), so generation takes a congruence
//! constraint. Testing is Miller–Rabin with trial division by small primes
//! first.

use crate::modular::modpow;
use crate::nat::Nat;
use crate::rand_source::RandomSource;

/// Number of Miller–Rabin rounds used by default (error probability
/// ≤ 4^-64).
pub const MR_ROUNDS: usize = 64;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Tests whether `n` is (probably) prime using trial division plus
/// `rounds` Miller–Rabin iterations with bases drawn from `rng`.
pub fn is_probable_prime<R: RandomSource>(n: &Nat, rounds: usize, rng: &mut R) -> bool {
    if n.cmp_u64(2) == std::cmp::Ordering::Less {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n.cmp_u64(p) == std::cmp::Ordering::Equal {
            return true;
        }
        let (_, r) = n.div_rem_u64(p);
        if r == 0 {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.checked_sub(&Nat::one()).unwrap();
    let s = n_minus_1.trailing_zeros().unwrap();
    let d = n_minus_1.shr_bits(s);

    let two = Nat::from(2u64);
    let n_minus_3 = match n.checked_sub(&Nat::from(4u64)) {
        Some(v) => v.add_nat(&Nat::one()), // n - 3
        None => Nat::one(),
    };

    'witness: for _ in 0..rounds {
        // a in [2, n-2].
        let a = rng.random_below(&n_minus_3).add_nat(&two);
        let mut x = modpow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.square().rem_nat(n).unwrap();
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: RandomSource>(bits: usize, rng: &mut R) -> Nat {
    gen_prime_congruent(bits, 1, 2, rng)
}

/// Generates a probable prime of exactly `bits` bits that is congruent to
/// `residue` modulo `modulus`.
///
/// Used for Rabin–Williams: `gen_prime_congruent(bits, 3, 8, …)` and
/// `gen_prime_congruent(bits, 7, 8, …)`; and for SRP safe-prime style
/// groups in tests.
///
/// # Panics
///
/// Panics if `bits < 2`, `modulus == 0`, or `residue >= modulus`, or if the
/// congruence class contains only even numbers (no primes > 2).
pub fn gen_prime_congruent<R: RandomSource>(
    bits: usize,
    residue: u64,
    modulus: u64,
    rng: &mut R,
) -> Nat {
    assert!(bits >= 2, "prime must have at least 2 bits");
    assert!(modulus > 0 && residue < modulus, "bad congruence");
    assert!(
        residue % 2 == 1 || modulus % 2 == 1,
        "congruence class must contain odd numbers"
    );
    loop {
        let mut candidate = rng.random_bits(bits);
        // Force exact bit length.
        candidate.set_bit(bits - 1, true);
        // Force the congruence: adjust candidate to candidate - (candidate
        // mod modulus) + residue, then fix parity/length drift by stepping.
        let (_, r) = candidate.div_rem_u64(modulus);
        let delta = (residue + modulus - r) % modulus;
        candidate = candidate.add_nat(&Nat::from(delta));
        if candidate.bit_len() != bits {
            continue;
        }
        // Step by `modulus` until prime (bounded scan keeps bias small).
        for _ in 0..512 {
            if candidate.bit_len() != bits {
                break;
            }
            if candidate.is_odd() && is_probable_prime(&candidate, MR_ROUNDS, rng) {
                return candidate;
            }
            candidate = candidate.add_nat(&Nat::from(modulus));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_source::XorShiftSource;

    #[test]
    fn small_primes_recognized() {
        let mut rng = XorShiftSource::new(1);
        for p in [2u64, 3, 5, 7, 11, 13, 97, 251, 257, 65537] {
            assert!(
                is_probable_prime(&Nat::from(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = XorShiftSource::new(2);
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 561, 1105, 6601, 8911] {
            assert!(
                !is_probable_prime(&Nat::from(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = XorShiftSource::new(3);
        for c in [561u64, 41041, 825265] {
            assert!(!is_probable_prime(&Nat::from(c), 16, &mut rng));
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let m127 = Nat::one().shl_bits(127).checked_sub(&Nat::one()).unwrap();
        let mut rng = XorShiftSource::new(4);
        assert!(is_probable_prime(&m127, 16, &mut rng));
        // 2^128 + 1 is composite (= 59649589127497217 * ...).
        let f = Nat::one().shl_bits(128).add_nat(&Nat::one());
        assert!(!is_probable_prime(&f, 16, &mut rng));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut rng = XorShiftSource::new(5);
        for bits in [32usize, 48, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }

    #[test]
    fn gen_prime_congruent_rabin_classes() {
        let mut rng = XorShiftSource::new(6);
        let p = gen_prime_congruent(96, 3, 8, &mut rng);
        assert_eq!(p.div_rem_u64(8).1, 3);
        assert_eq!(p.bit_len(), 96);
        let q = gen_prime_congruent(96, 7, 8, &mut rng);
        assert_eq!(q.div_rem_u64(8).1, 7);
        assert_eq!(q.bit_len(), 96);
    }

    #[test]
    #[should_panic(expected = "congruence class must contain odd numbers")]
    fn even_congruence_class_panics() {
        let mut rng = XorShiftSource::new(7);
        let _ = gen_prime_congruent(32, 2, 4, &mut rng);
    }
}
