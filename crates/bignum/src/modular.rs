//! Modular arithmetic: exponentiation, inverses, Jacobi symbols, square
//! roots modulo Blum primes, and Chinese-remainder recombination.
//!
//! These are exactly the number-theoretic operations Rabin–Williams
//! decryption/signing (square roots via CRT) and SRP (modular
//! exponentiation) require.

use crate::int::{Int, Sign};
use crate::nat::Nat;

/// Computes `base^exp mod m` by square-and-multiply with a 4-bit window.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modpow(base: &Nat, exp: &Nat, m: &Nat) -> Nat {
    assert!(!m.is_zero(), "modpow with zero modulus");
    if m.is_one() {
        return Nat::zero();
    }
    if exp.is_zero() {
        return Nat::one();
    }
    let base = base.rem_nat(m).unwrap();
    // Precompute base^0..base^15 for the 4-bit window.
    let mut table = Vec::with_capacity(16);
    table.push(Nat::one());
    for i in 1..16 {
        let prev: &Nat = &table[i - 1];
        table.push(prev.mul_nat(&base).rem_nat(m).unwrap());
    }
    let nbits = exp.bit_len();
    // Round up to a multiple of 4.
    let mut i = nbits.div_ceil(4) * 4;
    let mut acc = Nat::one();
    while i > 0 {
        i -= 4;
        for _ in 0..4 {
            acc = acc.square().rem_nat(m).unwrap();
        }
        let w = (exp.bit(i + 3) as usize) << 3
            | (exp.bit(i + 2) as usize) << 2
            | (exp.bit(i + 1) as usize) << 1
            | exp.bit(i) as usize;
        if w != 0 {
            acc = acc.mul_nat(&table[w]).rem_nat(m).unwrap();
        }
    }
    acc
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
fn egcd(a: &Nat, b: &Nat) -> (Nat, Int, Int) {
    let mut r0 = a.clone();
    let mut r1 = b.clone();
    let mut s0 = Int::one();
    let mut s1 = Int::zero();
    let mut t0 = Int::zero();
    let mut t1 = Int::one();
    while !r1.is_zero() {
        let (q, r) = r0.div_rem(&r1).unwrap();
        let qi = Int::from_nat(q);
        let s = s0.sub(&qi.mul(&s1));
        let t = t0.sub(&qi.mul(&t1));
        r0 = r1;
        r1 = r;
        s0 = s1;
        s1 = s;
        t0 = t1;
        t1 = t;
    }
    (r0, s0, t0)
}

/// Computes the multiplicative inverse of `a` modulo `m`, or `None` if
/// `gcd(a, m) != 1`.
pub fn invmod(a: &Nat, m: &Nat) -> Option<Nat> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let a = a.rem_nat(m).unwrap();
    let (g, x, _) = egcd(&a, m);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(m))
}

/// Computes the Jacobi symbol `(a/n)` for odd `n > 0`; returns -1, 0, or 1.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &Nat, n: &Nat) -> i32 {
    assert!(
        n.is_odd() && !n.is_zero(),
        "Jacobi symbol requires odd n > 0"
    );
    let mut a = a.rem_nat(n).unwrap();
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        let tz = a.trailing_zeros().unwrap();
        a = a.shr_bits(tz);
        if tz % 2 == 1 {
            // (2/n) = -1 when n ≡ 3, 5 (mod 8).
            let n_mod8 = n.limbs().first().unwrap() % 8;
            if n_mod8 == 3 || n_mod8 == 5 {
                result = -result;
            }
        }
        // Quadratic reciprocity flip.
        let a_mod4 = a.limbs().first().unwrap() % 4;
        let n_mod4 = n.limbs().first().unwrap() % 4;
        if a_mod4 == 3 && n_mod4 == 3 {
            result = -result;
        }
        std::mem::swap(&mut a, &mut n);
        a = a.rem_nat(&n).unwrap();
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

/// Computes a square root of `a` modulo a prime `p ≡ 3 (mod 4)` as
/// `a^((p+1)/4) mod p`, returning `None` if `a` is not a quadratic residue.
///
/// Rabin–Williams only ever takes roots modulo Blum primes, so the general
/// Tonelli–Shanks algorithm is unnecessary.
pub fn sqrt_mod_3mod4(a: &Nat, p: &Nat) -> Option<Nat> {
    debug_assert_eq!(p.limbs().first().unwrap_or(&3) % 4, 3);
    let a = a.rem_nat(p).unwrap();
    if a.is_zero() {
        return Some(Nat::zero());
    }
    let e = p.add_nat(&Nat::one()).shr_bits(2);
    let r = modpow(&a, &e, p);
    if r.square().rem_nat(p).unwrap() == a {
        Some(r)
    } else {
        None
    }
}

/// Chinese-remainder recombination for two coprime moduli: finds the unique
/// `x mod p*q` with `x ≡ xp (mod p)` and `x ≡ xq (mod q)`.
///
/// # Panics
///
/// Panics if `p` and `q` are not coprime.
pub fn crt_pair(xp: &Nat, p: &Nat, xq: &Nat, q: &Nat) -> Nat {
    // x = xp + p * ((xq - xp) * p^-1 mod q).
    let p_inv = invmod(p, q).expect("CRT moduli must be coprime");
    let xp_int = Int::from_nat(xp.clone());
    let xq_int = Int::from_nat(xq.clone());
    let diff = xq_int.sub(&xp_int).rem_euclid(q);
    let h = diff.mul_nat(&p_inv).rem_nat(q).unwrap();
    xp.add_nat(&p.mul_nat(&h))
}

// Re-export egcd for tests without making it public API.
#[cfg(test)]
pub(crate) fn egcd_for_tests(a: &Nat, b: &Nat) -> (Nat, Int, Int) {
    egcd(a, b)
}

// `Sign` is pulled in for the `Int` arithmetic above; keep the import honest.
#[allow(unused)]
fn _sign_witness(s: Sign) -> Sign {
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn modpow_small() {
        assert_eq!(modpow(&n(2), &n(10), &n(1000)), n(24));
        assert_eq!(modpow(&n(3), &n(0), &n(7)), n(1));
        assert_eq!(modpow(&n(5), &n(3), &n(1)), Nat::zero());
    }

    #[test]
    fn modpow_fermat() {
        // Fermat's little theorem for a few primes.
        for p in [3u64, 5, 7, 11, 101, 65537] {
            let pn = n(p);
            for a in [2u64, 3, 10, 42] {
                if a % p == 0 {
                    continue;
                }
                assert_eq!(modpow(&n(a), &n(p - 1), &pn), n(1), "p={p} a={a}");
            }
        }
    }

    #[test]
    fn modpow_large() {
        // 2^(2^20) mod a 128-bit odd modulus, checked against repeated
        // squaring.
        let m = Nat::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let mut expect = n(2);
        for _ in 0..20 {
            expect = expect.square().rem_nat(&m).unwrap();
        }
        let e = Nat::one().shl_bits(20);
        assert_eq!(modpow(&n(2), &e, &m), expect);
    }

    #[test]
    fn egcd_bezout() {
        let a = n(240);
        let b = n(46);
        let (g, x, y) = egcd_for_tests(&a, &b);
        assert_eq!(g, n(2));
        // 240x + 46y = 2.
        let lhs = Int::from_nat(a).mul(&x).add(&Int::from_nat(b).mul(&y));
        assert_eq!(lhs, Int::from(2));
    }

    #[test]
    fn invmod_basics() {
        assert_eq!(invmod(&n(3), &n(7)), Some(n(5)));
        assert_eq!(invmod(&n(2), &n(4)), None);
        assert_eq!(invmod(&n(1), &n(2)), Some(n(1)));
        assert_eq!(invmod(&n(5), &Nat::one()), None);
    }

    #[test]
    fn invmod_large() {
        let m = Nat::from_hex("ffffffffffffffffffffffffffffff61").unwrap(); // prime-ish
        let a = Nat::from_hex("123456789abcdef").unwrap();
        if let Some(inv) = invmod(&a, &m) {
            assert_eq!(a.mul_nat(&inv).rem_nat(&m).unwrap(), Nat::one());
        } else {
            panic!("expected invertible");
        }
    }

    #[test]
    fn jacobi_small_table() {
        // Classical table: (a/15) for a in 1..8 = 1,1,0,1,0,0,-1,1.
        let vals = [1, 1, 0, 1, 0, 0, -1, 1];
        for (a, want) in (1u64..=8).zip(vals) {
            assert_eq!(jacobi(&n(a), &n(15)), want, "a={a}");
        }
    }

    #[test]
    fn jacobi_quadratic_residues_mod_p() {
        let p = 23u64;
        for a in 1..p {
            let is_qr = (1..p).any(|x| (x * x) % p == a);
            let j = jacobi(&n(a), &n(p));
            assert_eq!(j == 1, is_qr, "a={a}");
        }
    }

    #[test]
    fn sqrt_mod_blum_prime() {
        let p = n(23); // 23 ≡ 3 (mod 4)
        for a in 1u64..23 {
            let sq = (a * a) % 23;
            let r = sqrt_mod_3mod4(&n(sq), &p).expect("square must have root");
            assert_eq!(r.square().rem_nat(&p).unwrap(), n(sq));
        }
        // 5 is a non-residue mod 23.
        assert_eq!(sqrt_mod_3mod4(&n(5), &p), None);
    }

    #[test]
    fn crt_recombination() {
        let p = n(11);
        let q = n(13);
        for x in [0u64, 1, 17, 100, 142] {
            let xp = n(x % 11);
            let xq = n(x % 13);
            assert_eq!(crt_pair(&xp, &p, &xq, &q), n(x % 143));
        }
    }
}
