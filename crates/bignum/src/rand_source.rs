//! Randomness abstraction.
//!
//! SFS derives all protocol randomness from a DSS-style SHA-1 generator
//! seeded from environmental entropy (paper §3.1.3). That generator lives in
//! `sfs-crypto`; this trait is the seam that lets prime generation and
//! Miller–Rabin draw from it without a dependency cycle.

/// A source of random bytes.
pub trait RandomSource {
    /// Fills `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Returns a uniformly random `Nat`-compatible value below `2^bits`.
    fn random_bits(&mut self, bits: usize) -> crate::Nat {
        let nbytes = bits.div_ceil(8);
        let mut buf = vec![0u8; nbytes];
        self.fill(&mut buf);
        let extra = nbytes * 8 - bits;
        if extra > 0 {
            buf[0] &= 0xff >> extra;
        }
        crate::Nat::from_bytes_be(&buf)
    }

    /// Returns a uniformly random value in `[0, bound)` by rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn random_below(&mut self, bound: &crate::Nat) -> crate::Nat {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bit_len();
        loop {
            let candidate = self.random_bits(bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

/// A fast deterministic xorshift-based source for tests and workload
/// generation. Not cryptographic.
#[derive(Debug, Clone)]
pub struct XorShiftSource {
    state: u64,
}

impl XorShiftSource {
    /// Creates a source from a seed. The seed is diffused through a
    /// SplitMix64 step so that *every* distinct seed yields a distinct
    /// stream (a plain `seed | 1` would collapse adjacent seeds).
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        XorShiftSource { state: z | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl RandomSource for XorShiftSource {
    fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Wraps another source and counts bytes drawn; used by tests asserting that
/// protocols consume entropy where the paper says they do.
pub struct CountingSource<S> {
    inner: S,
    bytes: u64,
}

impl<S: RandomSource> CountingSource<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        CountingSource { inner, bytes: 0 }
    }

    /// Total bytes drawn so far.
    pub fn bytes_drawn(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RandomSource> RandomSource for CountingSource<S> {
    fn fill(&mut self, buf: &mut [u8]) {
        self.bytes += buf.len() as u64;
        self.inner.fill(buf);
    }
}

impl<S: RandomSource + ?Sized> RandomSource for &mut S {
    fn fill(&mut self, buf: &mut [u8]) {
        (**self).fill(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Nat;

    #[test]
    fn random_bits_respects_bound() {
        let mut src = XorShiftSource::new(42);
        for bits in [1usize, 7, 8, 9, 63, 64, 65, 160] {
            for _ in 0..20 {
                let v = src.random_bits(bits);
                assert!(v.bit_len() <= bits, "bits={bits} v={v:?}");
            }
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut src = XorShiftSource::new(7);
        let bound = Nat::from(1000u64);
        for _ in 0..100 {
            let v = src.random_below(&bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn counting_source_counts() {
        let mut src = CountingSource::new(XorShiftSource::new(1));
        let mut buf = [0u8; 10];
        src.fill(&mut buf);
        src.fill(&mut buf[..3]);
        assert_eq!(src.bytes_drawn(), 13);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShiftSource::new(99);
        let mut b = XorShiftSource::new(99);
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
    }
}
