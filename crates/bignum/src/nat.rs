//! Natural (unsigned, arbitrary-precision) numbers.
//!
//! Representation: little-endian `u64` limbs, normalized so the most
//! significant limb is nonzero (zero is the empty limb vector). Multiplication
//! is schoolbook below a threshold and Karatsuba above it; division is Knuth
//! Algorithm D. These cover SFS's working range (Rabin moduli of 1–2 kbit,
//! SRP groups of similar size) comfortably.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Mul, Rem, Shl, Shr, Sub};

/// Error returned by checked division when the divisor is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivideByZero;

impl fmt::Display for DivideByZero {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "division by zero")
    }
}

impl std::error::Error for DivideByZero {}

/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision natural number.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl Nat {
    /// Returns zero.
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        Nat::from(1u64)
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if `self` is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the number is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the number is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Constructs a `Nat` from little-endian limbs, normalizing.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// Exposes the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() - 1) * 64 + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `v`.
    pub fn set_bit(&mut self, i: usize, v: bool) {
        let (limb, off) = (i / 64, i % 64);
        if limb >= self.limbs.len() {
            if !v {
                return;
            }
            self.limbs.resize(limb + 1, 0);
        }
        if v {
            self.limbs[limb] |= 1 << off;
        } else {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Parses a big-endian byte string (as used throughout SFS's XDR
    /// encodings of public keys and protocol values). Leading zero bytes are
    /// permitted and ignored.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut nbits = 0;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << nbits;
            nbits += 8;
            if nbits == 64 {
                limbs.push(acc);
                acc = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            limbs.push(acc);
        }
        Nat::from_limbs(limbs)
    }

    /// Serializes to a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut i = 0;
        if s.len() % 2 == 1 {
            bytes.push(u8::from_str_radix(std::str::from_utf8(&s[..1]).ok()?, 16).ok()?);
            i = 1;
        }
        while i < s.len() {
            bytes.push(u8::from_str_radix(std::str::from_utf8(&s[i..i + 2]).ok()?, 16).ok()?);
            i += 2;
        }
        Some(Nat::from_bytes_be(&bytes))
    }

    /// Formats as lowercase hexadecimal ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = String::new();
        for (i, &l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{l:x}"));
            } else {
                s.push_str(&format!("{l:016x}"));
            }
        }
        s
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Compares against a small value without allocating.
    pub fn cmp_u64(&self, v: u64) -> Ordering {
        match self.limbs.len() {
            0 => 0u64.cmp(&v),
            1 => self.limbs[0].cmp(&v),
            _ => Ordering::Greater,
        }
    }

    /// `self + other`.
    pub fn add_nat(&self, other: &Nat) -> Nat {
        let (big, small) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(big.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in big.iter().enumerate() {
            let b = *small.get(i).unwrap_or(&0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// `self - other`, returning `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, o1) = self.limbs[i].overflowing_sub(b);
            let (d2, o2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (o1 as u64) + (o2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Nat::from_limbs(out))
    }

    /// `self * other`.
    pub fn mul_nat(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        if self.limbs.len() >= KARATSUBA_THRESHOLD && other.limbs.len() >= KARATSUBA_THRESHOLD {
            return karatsuba(self, other);
        }
        Nat::from_limbs(schoolbook(&self.limbs, &other.limbs))
    }

    /// `self * m`, for a single-limb multiplier.
    pub fn mul_u64(&self, m: u64) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = l as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Nat::from_limbs(out)
    }

    /// `self * self`, slightly cheaper than general multiplication.
    pub fn square(&self) -> Nat {
        self.mul_nat(self)
    }

    /// `(self / other, self % other)`.
    pub fn div_rem(&self, other: &Nat) -> Result<(Nat, Nat), DivideByZero> {
        if other.is_zero() {
            return Err(DivideByZero);
        }
        if self < other {
            return Ok((Nat::zero(), self.clone()));
        }
        if other.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(other.limbs[0]);
            return Ok((q, Nat::from(r)));
        }
        Ok(knuth_d(self, other))
    }

    /// `(self / m, self % m)` for a single-limb divisor.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn div_rem_u64(&self, m: u64) -> (Nat, u64) {
        assert!(m != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / m as u128) as u64;
            rem = cur % m as u128;
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// `self % other`.
    pub fn rem_nat(&self, other: &Nat) -> Result<Nat, DivideByZero> {
        Ok(self.div_rem(other)?.1)
    }

    /// `self << n`.
    pub fn shl_bits(&self, n: usize) -> Nat {
        if self.is_zero() || n == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }

    /// `self >> n`.
    pub fn shr_bits(&self, n: usize) -> Nat {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let mut v = self.limbs[i] >> bit_shift;
                if i + 1 < self.limbs.len() {
                    v |= self.limbs[i + 1] << (64 - bit_shift);
                }
                out.push(v);
            }
        }
        Nat::from_limbs(out)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let shift = a.trailing_zeros().unwrap().min(b.trailing_zeros().unwrap());
        a = a.shr_bits(a.trailing_zeros().unwrap());
        loop {
            b = b.shr_bits(b.trailing_zeros().unwrap());
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).unwrap();
            if b.is_zero() {
                return a.shl_bits(shift);
            }
        }
    }
}

/// Schoolbook multiplication of raw limb slices.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba multiplication for large operands.
fn karatsuba(a: &Nat, b: &Nat) -> Nat {
    let half = a.limbs.len().min(b.limbs.len()) / 2;
    let (a0, a1) = split_at(a, half);
    let (b0, b1) = split_at(b, half);
    let z0 = a0.mul_nat(&b0);
    let z2 = a1.mul_nat(&b1);
    let z1 = a0
        .add_nat(&a1)
        .mul_nat(&b0.add_nat(&b1))
        .checked_sub(&z0)
        .unwrap()
        .checked_sub(&z2)
        .unwrap();
    z2.shl_bits(half * 128)
        .add_nat(&z1.shl_bits(half * 64))
        .add_nat(&z0)
}

fn split_at(n: &Nat, limb: usize) -> (Nat, Nat) {
    if limb >= n.limbs.len() {
        return (n.clone(), Nat::zero());
    }
    (
        Nat::from_limbs(n.limbs[..limb].to_vec()),
        Nat::from_limbs(n.limbs[limb..].to_vec()),
    )
}

/// Knuth's Algorithm D for multi-limb division. Requires `v.limbs.len() >= 2`
/// and `u >= v`.
fn knuth_d(u: &Nat, v: &Nat) -> (Nat, Nat) {
    // Normalize: shift so the divisor's top bit is set.
    let shift = v.limbs.last().unwrap().leading_zeros() as usize;
    let un = u.shl_bits(shift);
    let vn = v.shl_bits(shift);
    let n = vn.limbs.len();
    let m = un.limbs.len() - n;

    let mut u = un.limbs.clone();
    u.push(0); // Extra high limb for the algorithm.
    let v = &vn.limbs;
    let mut q = vec![0u64; m + 1];

    let v_hi = v[n - 1];
    let v_next = v[n - 2];

    for j in (0..=m).rev() {
        // Estimate q̂ from the top two limbs of the current remainder.
        let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = num / v_hi as u128;
        let mut rhat = num % v_hi as u128;
        while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v_hi as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        // Multiply-and-subtract.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * v[i] as u128 + carry;
            carry = p >> 64;
            let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
            u[j + i] = t as u64;
            borrow = t >> 64;
        }
        let t = u[j + n] as i128 - carry as i128 + borrow;
        u[j + n] = t as u64;
        if t < 0 {
            // q̂ was one too large; add back.
            qhat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let (s1, c1) = u[j + i].overflowing_add(v[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                u[j + i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            u[j + n] = u[j + n].wrapping_add(carry);
        }
        q[j] = qhat as u64;
    }
    u.truncate(n);
    let rem = Nat::from_limbs(u).shr_bits(shift);
    (Nat::from_limbs(q), rem)
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_limbs(vec![v])
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from(v as u64)
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Add for &Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        self.add_nat(rhs)
    }
}

impl Sub for &Nat {
    type Output = Nat;
    /// # Panics
    ///
    /// Panics if the result would be negative; use [`Nat::checked_sub`] for
    /// the fallible form.
    fn sub(self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).expect("Nat subtraction underflow")
    }
}

impl Mul for &Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        self.mul_nat(rhs)
    }
}

impl Rem for &Nat {
    type Output = Nat;
    /// # Panics
    ///
    /// Panics on division by zero; use [`Nat::rem_nat`] for the fallible
    /// form.
    fn rem(self, rhs: &Nat) -> Nat {
        self.rem_nat(rhs).expect("Nat remainder by zero")
    }
}

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, n: usize) -> Nat {
        self.shl_bits(n)
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, n: usize) -> Nat {
        self.shr_bits(n)
    }
}

impl BitAnd for &Nat {
    type Output = Nat;
    fn bitand(self, rhs: &Nat) -> Nat {
        let n = self.limbs.len().min(rhs.limbs.len());
        Nat::from_limbs((0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect())
    }
}

impl BitOr for &Nat {
    type Output = Nat;
    fn bitor(self, rhs: &Nat) -> Nat {
        let n = self.limbs.len().max(rhs.limbs.len());
        Nat::from_limbs(
            (0..n)
                .map(|i| self.limbs.get(i).unwrap_or(&0) | rhs.limbs.get(i).unwrap_or(&0))
                .collect(),
        )
    }
}

impl BitXor for &Nat {
    type Output = Nat;
    fn bitxor(self, rhs: &Nat) -> Nat {
        let n = self.limbs.len().max(rhs.limbs.len());
        Nat::from_limbs(
            (0..n)
                .map(|i| self.limbs.get(i).unwrap_or(&0) ^ rhs.limbs.get(i).unwrap_or(&0))
                .collect(),
        )
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat(0x{})", self.to_hex())
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.into_iter().rev() {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert!(!Nat::one().is_zero());
        assert_eq!(Nat::zero().bit_len(), 0);
        assert_eq!(Nat::one().bit_len(), 1);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = Nat::from(u64::MAX);
        let b = n(1);
        let s = a.add_nat(&b);
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    fn sub_borrow() {
        let a = Nat::from_limbs(vec![0, 1]); // 2^64
        let b = n(1);
        let d = a.checked_sub(&b).unwrap();
        assert_eq!(d, Nat::from(u64::MAX));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(7).mul_nat(&n(6)), n(42));
        assert_eq!(n(0).mul_nat(&n(6)), Nat::zero());
    }

    #[test]
    fn mul_u64_matches_mul_nat() {
        let a = Nat::from_hex("ffeeddccbbaa99887766554433221100aabbccdd").unwrap();
        assert_eq!(a.mul_u64(12345), a.mul_nat(&n(12345)));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = n(100).div_rem(&n(7)).unwrap();
        assert_eq!(q, n(14));
        assert_eq!(r, n(2));
    }

    #[test]
    fn div_by_zero_is_error() {
        assert_eq!(n(1).div_rem(&Nat::zero()), Err(DivideByZero));
    }

    #[test]
    fn div_rem_multi_limb_roundtrip() {
        let a = Nat::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0").unwrap();
        let b = Nat::from_hex("fedcba9876543210fedcba98").unwrap();
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul_nat(&b).add_nat(&r), a);
    }

    #[test]
    fn knuth_d_add_back_case() {
        // Construct a case that exercises the rare add-back branch:
        // u = (2^128 - 1) * 2^64, v = 2^128 - 2^64 - 1 forces qhat
        // overestimation.
        let u = Nat::from_limbs(vec![0, u64::MAX, u64::MAX]);
        let v = Nat::from_limbs(vec![u64::MAX, u64::MAX - 1]);
        let (q, r) = u.div_rem(&v).unwrap();
        assert_eq!(q.mul_nat(&v).add_nat(&r), u);
        assert!(r < v);
    }

    #[test]
    fn shifts() {
        let a = Nat::from_hex("1234").unwrap();
        assert_eq!(a.shl_bits(4), Nat::from_hex("12340").unwrap());
        assert_eq!(a.shr_bits(4), Nat::from_hex("123").unwrap());
        assert_eq!(a.shl_bits(64).shr_bits(64), a);
        assert_eq!(a.shr_bits(100), Nat::zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = Nat::from_bytes_be(&[0, 0, 1, 2, 3]);
        assert_eq!(a.to_bytes_be(), vec![1, 2, 3]);
        assert_eq!(Nat::from_bytes_be(&[]), Nat::zero());
        assert_eq!(a.to_bytes_be_padded(5), vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn hex_roundtrip() {
        let a = Nat::from_hex("deadbeef0123456789").unwrap();
        assert_eq!(Nat::from_hex(&a.to_hex()).unwrap(), a);
        assert_eq!(Nat::from_hex(""), None);
        assert_eq!(Nat::from_hex("xyz"), None);
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Nat::zero().to_string(), "0");
        assert_eq!(n(12345).to_string(), "12345");
        // 2^64 = 18446744073709551616.
        assert_eq!(
            Nat::from_limbs(vec![0, 1]).to_string(),
            "18446744073709551616"
        );
    }

    #[test]
    fn ordering() {
        assert!(n(5) < n(6));
        assert!(Nat::from_limbs(vec![0, 1]) > Nat::from(u64::MAX));
        assert_eq!(n(5).cmp_u64(5), Ordering::Equal);
        assert_eq!(
            Nat::from_limbs(vec![0, 1]).cmp_u64(u64::MAX),
            Ordering::Greater
        );
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(5)), n(1));
        assert_eq!(Nat::zero().gcd(&n(7)), n(7));
        assert_eq!(n(7).gcd(&Nat::zero()), n(7));
    }

    #[test]
    fn bit_get_set() {
        let mut a = Nat::zero();
        a.set_bit(70, true);
        assert!(a.bit(70));
        assert_eq!(a.bit_len(), 71);
        a.set_bit(70, false);
        assert!(a.is_zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(Nat::zero().trailing_zeros(), None);
        assert_eq!(n(8).trailing_zeros(), Some(3));
        assert_eq!(Nat::from_limbs(vec![0, 2]).trailing_zeros(), Some(65));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands just above the Karatsuba threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..30 {
            x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(1);
            limbs_a.push(x);
            x = x.wrapping_mul(0x94d049bb133111eb).wrapping_add(7);
            limbs_b.push(x);
        }
        let a = Nat::from_limbs(limbs_a);
        let b = Nat::from_limbs(limbs_b);
        let expected = Nat::from_limbs(schoolbook(a.limbs(), b.limbs()));
        assert_eq!(a.mul_nat(&b), expected);
    }

    #[test]
    fn bit_ops() {
        let a = Nat::from_hex("f0f0").unwrap();
        let b = Nat::from_hex("ff00").unwrap();
        assert_eq!(&a & &b, Nat::from_hex("f000").unwrap());
        assert_eq!(&a | &b, Nat::from_hex("fff0").unwrap());
        assert_eq!(&a ^ &b, Nat::from_hex("0ff0").unwrap());
    }
}
