//! Property-style tests for the bignum substrate, driven by the
//! crate's own deterministic [`XorShiftSource`] so every run checks
//! the same randomized sample.

use sfs_bignum::{crt_pair, invmod, jacobi, modpow, Nat, RandomSource, XorShiftSource};

const CASES: usize = 192;

fn rand_u64(rng: &mut XorShiftSource) -> u64 {
    let mut b = [0u8; 8];
    rng.fill(&mut b);
    u64::from_be_bytes(b)
}

/// An arbitrary `Nat` up to ~256 bits via byte strings (length 0–31).
fn nat(rng: &mut XorShiftSource) -> Nat {
    let len = (rand_u64(rng) % 32) as usize;
    let mut b = vec![0u8; len];
    rng.fill(&mut b);
    Nat::from_bytes_be(&b)
}

fn nonzero_nat(rng: &mut XorShiftSource) -> Nat {
    let n = nat(rng);
    if n.is_zero() {
        Nat::one()
    } else {
        n
    }
}

#[test]
fn add_commutes() {
    let mut rng = XorShiftSource::new(0xADD);
    for _ in 0..CASES {
        let (a, b) = (nat(&mut rng), nat(&mut rng));
        assert_eq!(a.add_nat(&b), b.add_nat(&a));
    }
}

#[test]
fn add_associates() {
    let mut rng = XorShiftSource::new(0xADD2);
    for _ in 0..CASES {
        let (a, b, c) = (nat(&mut rng), nat(&mut rng), nat(&mut rng));
        assert_eq!(a.add_nat(&b).add_nat(&c), a.add_nat(&b.add_nat(&c)));
    }
}

#[test]
fn add_then_sub_roundtrips() {
    let mut rng = XorShiftSource::new(0x5B);
    for _ in 0..CASES {
        let (a, b) = (nat(&mut rng), nat(&mut rng));
        assert_eq!(a.add_nat(&b).checked_sub(&b).unwrap(), a);
    }
}

#[test]
fn mul_commutes() {
    let mut rng = XorShiftSource::new(0x30);
    for _ in 0..CASES {
        let (a, b) = (nat(&mut rng), nat(&mut rng));
        assert_eq!(a.mul_nat(&b), b.mul_nat(&a));
    }
}

#[test]
fn mul_distributes() {
    let mut rng = XorShiftSource::new(0xD15);
    for _ in 0..CASES {
        let (a, b, c) = (nat(&mut rng), nat(&mut rng), nat(&mut rng));
        assert_eq!(
            a.mul_nat(&b.add_nat(&c)),
            a.mul_nat(&b).add_nat(&a.mul_nat(&c))
        );
    }
}

#[test]
fn div_rem_invariant() {
    let mut rng = XorShiftSource::new(0xD1F);
    for _ in 0..CASES {
        let (a, b) = (nat(&mut rng), nonzero_nat(&mut rng));
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul_nat(&b).add_nat(&r), a);
    }
}

#[test]
fn bytes_roundtrip() {
    let mut rng = XorShiftSource::new(0xB9);
    for _ in 0..CASES {
        let a = nat(&mut rng);
        assert_eq!(Nat::from_bytes_be(&a.to_bytes_be()), a);
    }
}

#[test]
fn hex_roundtrip() {
    let mut rng = XorShiftSource::new(0x4E);
    for _ in 0..CASES {
        let a = nat(&mut rng);
        assert_eq!(Nat::from_hex(&a.to_hex()).unwrap(), a);
    }
}

#[test]
fn shift_roundtrip() {
    let mut rng = XorShiftSource::new(0x54);
    for _ in 0..CASES {
        let a = nat(&mut rng);
        let s = (rand_u64(&mut rng) % 200) as usize;
        assert_eq!(a.shl_bits(s).shr_bits(s), a);
    }
}

#[test]
fn shl_is_mul_by_power_of_two() {
    let mut rng = XorShiftSource::new(0x542);
    for _ in 0..CASES {
        let a = nat(&mut rng);
        let s = (rand_u64(&mut rng) % 100) as usize;
        let pow = Nat::one().shl_bits(s);
        assert_eq!(a.shl_bits(s), a.mul_nat(&pow));
    }
}

#[test]
fn gcd_divides_both() {
    let mut rng = XorShiftSource::new(0x9CD);
    for _ in 0..CASES {
        let (a, b) = (nonzero_nat(&mut rng), nonzero_nat(&mut rng));
        let g = a.gcd(&b);
        assert!(!g.is_zero());
        assert!(a.rem_nat(&g).unwrap().is_zero());
        assert!(b.rem_nat(&g).unwrap().is_zero());
    }
}

#[test]
fn modpow_matches_naive() {
    let mut rng = XorShiftSource::new(0x30D);
    for _ in 0..CASES {
        let base = rand_u64(&mut rng) % 1000;
        let exp = rand_u64(&mut rng) % 64;
        let m = 2 + rand_u64(&mut rng) % 9998;
        let mut naive: u128 = 1;
        for _ in 0..exp {
            naive = naive * base as u128 % m as u128;
        }
        assert_eq!(
            modpow(&Nat::from(base), &Nat::from(exp), &Nat::from(m)),
            Nat::from(naive as u64)
        );
    }
}

#[test]
fn invmod_is_inverse() {
    let mut rng = XorShiftSource::new(0x1F);
    for _ in 0..CASES {
        let a = nonzero_nat(&mut rng);
        let m = nonzero_nat(&mut rng).add_nat(&Nat::from(2u64)); // ensure m >= 2
        if let Some(inv) = invmod(&a, &m) {
            assert_eq!(a.mul_nat(&inv).rem_nat(&m).unwrap(), Nat::one());
        }
    }
}

#[test]
fn jacobi_multiplicative() {
    // (ab/n) = (a/n)(b/n) for odd n.
    let mut outer = XorShiftSource::new(0x7AC);
    for seed in 1..128u64 {
        let (a, b) = (nat(&mut outer), nat(&mut outer));
        let mut rng = XorShiftSource::new(seed);
        let mut n = rng.random_bits(48);
        n.set_bit(0, true); // odd
        n.set_bit(47, true); // n > 1
        let ja = jacobi(&a, &n);
        let jb = jacobi(&b, &n);
        let jab = jacobi(&a.mul_nat(&b), &n);
        assert_eq!(jab, ja * jb);
    }
}

#[test]
fn crt_is_consistent() {
    let mut rng = XorShiftSource::new(0xC47);
    for _ in 0..CASES {
        // p=65537, q=65539 are coprime.
        let x = rand_u64(&mut rng) as u32;
        let p = Nat::from(65537u64);
        let q = Nat::from(65539u64);
        let xn = Nat::from(x as u64);
        let xp = xn.rem_nat(&p).unwrap();
        let xq = xn.rem_nat(&q).unwrap();
        let rec = crt_pair(&xp, &p, &xq, &q);
        assert_eq!(rec.rem_nat(&p).unwrap(), xp);
        assert_eq!(rec.rem_nat(&q).unwrap(), xq);
    }
}

#[test]
fn decimal_display_matches_u128() {
    let mut rng = XorShiftSource::new(0xDEC);
    for _ in 0..CASES {
        let mut b = [0u8; 16];
        rng.fill(&mut b);
        let v = u128::from_be_bytes(b);
        assert_eq!(Nat::from(v).to_string(), v.to_string());
    }
}
