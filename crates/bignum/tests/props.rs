//! Property-based tests for the bignum substrate.

use proptest::prelude::*;
use sfs_bignum::{crt_pair, invmod, jacobi, modpow, Nat, RandomSource, XorShiftSource};

/// Strategy producing arbitrary `Nat`s up to ~256 bits via byte strings.
fn nat() -> impl Strategy<Value = Nat> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|b| Nat::from_bytes_be(&b))
}

/// Strategy producing nonzero `Nat`s.
fn nonzero_nat() -> impl Strategy<Value = Nat> {
    nat().prop_map(|n| if n.is_zero() { Nat::one() } else { n })
}

proptest! {
    #[test]
    fn add_commutes(a in nat(), b in nat()) {
        prop_assert_eq!(a.add_nat(&b), b.add_nat(&a));
    }

    #[test]
    fn add_associates(a in nat(), b in nat(), c in nat()) {
        prop_assert_eq!(a.add_nat(&b).add_nat(&c), a.add_nat(&b.add_nat(&c)));
    }

    #[test]
    fn add_then_sub_roundtrips(a in nat(), b in nat()) {
        prop_assert_eq!(a.add_nat(&b).checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn mul_commutes(a in nat(), b in nat()) {
        prop_assert_eq!(a.mul_nat(&b), b.mul_nat(&a));
    }

    #[test]
    fn mul_distributes(a in nat(), b in nat(), c in nat()) {
        prop_assert_eq!(
            a.mul_nat(&b.add_nat(&c)),
            a.mul_nat(&b).add_nat(&a.mul_nat(&c))
        );
    }

    #[test]
    fn div_rem_invariant(a in nat(), b in nonzero_nat()) {
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(q.mul_nat(&b).add_nat(&r), a);
    }

    #[test]
    fn bytes_roundtrip(a in nat()) {
        prop_assert_eq!(Nat::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in nat()) {
        prop_assert_eq!(Nat::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn shift_roundtrip(a in nat(), s in 0usize..200) {
        prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in nat(), s in 0usize..100) {
        let pow = Nat::one().shl_bits(s);
        prop_assert_eq!(a.shl_bits(s), a.mul_nat(&pow));
    }

    #[test]
    fn gcd_divides_both(a in nonzero_nat(), b in nonzero_nat()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem_nat(&g).unwrap().is_zero());
        prop_assert!(b.rem_nat(&g).unwrap().is_zero());
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u64..64, m in 2u64..10000) {
        let mut naive: u128 = 1;
        for _ in 0..exp {
            naive = naive * base as u128 % m as u128;
        }
        prop_assert_eq!(
            modpow(&Nat::from(base), &Nat::from(exp), &Nat::from(m)),
            Nat::from(naive as u64)
        );
    }

    #[test]
    fn invmod_is_inverse(a in nonzero_nat(), m in nonzero_nat()) {
        let m = m.add_nat(&Nat::from(2u64)); // ensure m >= 2
        if let Some(inv) = invmod(&a, &m) {
            prop_assert_eq!(a.mul_nat(&inv).rem_nat(&m).unwrap(), Nat::one());
        }
    }

    #[test]
    fn jacobi_multiplicative(a in nat(), b in nat(), seed in 1u64..1000) {
        // (ab/n) = (a/n)(b/n) for odd n.
        let mut rng = XorShiftSource::new(seed);
        let mut n = rng.random_bits(48);
        n.set_bit(0, true); // odd
        n.set_bit(47, true); // n > 1
        let ja = jacobi(&a, &n);
        let jb = jacobi(&b, &n);
        let jab = jacobi(&a.mul_nat(&b), &n);
        prop_assert_eq!(jab, ja * jb);
    }

    #[test]
    fn crt_is_consistent(x in any::<u32>()) {
        // p=65537, q=65539 are coprime.
        let p = Nat::from(65537u64);
        let q = Nat::from(65539u64);
        let xn = Nat::from(x as u64);
        let xp = xn.rem_nat(&p).unwrap();
        let xq = xn.rem_nat(&q).unwrap();
        let rec = crt_pair(&xp, &p, &xq, &q);
        prop_assert_eq!(rec.rem_nat(&p).unwrap(), xp);
        prop_assert_eq!(rec.rem_nat(&q).unwrap(), xq);
    }

    #[test]
    fn decimal_display_matches_u128(v in any::<u128>()) {
        prop_assert_eq!(Nat::from(v).to_string(), v.to_string());
    }
}
