//! Property-style tests for XDR encoding invariants, driven by a
//! seeded SplitMix64 generator for deterministic coverage.

use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

#[test]
fn primitives_roundtrip() {
    let mut rng = Rng(0x9413);
    for _ in 0..256 {
        let a = rng.next() as u32;
        let b = rng.next() as i32;
        let c = rng.next();
        let d = rng.next() as i64;
        let e = rng.next().is_multiple_of(2);
        let mut enc = XdrEncoder::new();
        enc.put_u32(a);
        enc.put_i32(b);
        enc.put_u64(c);
        enc.put_i64(d);
        enc.put_bool(e);
        let mut dec = XdrDecoder::new(enc.bytes());
        assert_eq!(dec.get_u32().unwrap(), a);
        assert_eq!(dec.get_i32().unwrap(), b);
        assert_eq!(dec.get_u64().unwrap(), c);
        assert_eq!(dec.get_i64().unwrap(), d);
        assert_eq!(dec.get_bool().unwrap(), e);
        dec.finish().unwrap();
    }
}

#[test]
fn everything_is_four_byte_aligned() {
    let mut rng = Rng(0xA11);
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    for _ in 0..256 {
        let data_len = rng.below(100) as usize;
        let data = rng.bytes(data_len);
        let s: String = (0..rng.below(41))
            .map(|_| ALPHA[rng.below(ALPHA.len() as u64) as usize] as char)
            .collect();
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        assert_eq!(enc.len() % 4, 0);
        enc.put_string(&s);
        assert_eq!(enc.len() % 4, 0);
        enc.put_opaque_fixed(&data);
        assert_eq!(enc.len() % 4, 0);
    }
}

#[test]
fn strings_roundtrip() {
    let mut rng = Rng(0x574);
    for _ in 0..256 {
        // Arbitrary (often multi-byte) chars, including astral planes.
        let s: String = (0..rng.below(60))
            .filter_map(|_| char::from_u32(rng.next() as u32 % 0x11_0000))
            .collect();
        let encoded = s.clone().to_xdr();
        assert_eq!(String::from_xdr(&encoded).unwrap(), s);
    }
}

#[test]
fn nested_options_and_vecs_roundtrip() {
    let mut rng = Rng(0x0975);
    for _ in 0..256 {
        let v: Vec<Option<u64>> = (0..rng.below(20))
            .map(|_| {
                if rng.next().is_multiple_of(2) {
                    Some(rng.next())
                } else {
                    None
                }
            })
            .collect();
        let bytes = v.clone().to_xdr();
        assert_eq!(Vec::<Option<u64>>::from_xdr(&bytes).unwrap(), v);
    }
}

#[test]
fn truncation_always_detected() {
    let mut rng = Rng(0x74C);
    for _ in 0..64 {
        let data_len = 1 + rng.below(79) as usize;
        let data = rng.bytes(data_len);
        let whole = data.clone().to_xdr();
        // Every strict prefix must fail to decode fully.
        for cut in 0..whole.len() {
            let r = Vec::<u8>::from_xdr(&whole[..cut]);
            assert!(r.is_err(), "prefix of len {cut} decoded");
        }
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = Rng(0x9A4B);
    for _ in 0..256 {
        let junk_len = rng.below(120) as usize;
        let junk = rng.bytes(junk_len);
        let mut dec = XdrDecoder::new(&junk);
        let _ = dec.get_opaque();
        let _: Result<Vec<u64>, XdrError> = Vec::decode(&mut dec);
        let _ = dec.get_string();
        let _ = dec.get_bool();
    }
}
