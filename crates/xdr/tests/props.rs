//! Property-based tests for XDR encoding invariants.

use proptest::prelude::*;
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

proptest! {
    #[test]
    fn primitives_roundtrip(a in any::<u32>(), b in any::<i32>(), c in any::<u64>(),
                            d in any::<i64>(), e in any::<bool>()) {
        let mut enc = XdrEncoder::new();
        enc.put_u32(a);
        enc.put_i32(b);
        enc.put_u64(c);
        enc.put_i64(d);
        enc.put_bool(e);
        let mut dec = XdrDecoder::new(enc.bytes());
        prop_assert_eq!(dec.get_u32().unwrap(), a);
        prop_assert_eq!(dec.get_i32().unwrap(), b);
        prop_assert_eq!(dec.get_u64().unwrap(), c);
        prop_assert_eq!(dec.get_i64().unwrap(), d);
        prop_assert_eq!(dec.get_bool().unwrap(), e);
        dec.finish().unwrap();
    }

    #[test]
    fn everything_is_four_byte_aligned(data in proptest::collection::vec(any::<u8>(), 0..100),
                                       s in "[a-zA-Z0-9 ]{0,40}") {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        prop_assert_eq!(enc.len() % 4, 0);
        enc.put_string(&s);
        prop_assert_eq!(enc.len() % 4, 0);
        enc.put_opaque_fixed(&data);
        prop_assert_eq!(enc.len() % 4, 0);
    }

    #[test]
    fn strings_roundtrip(s in "\\PC{0,60}") {
        let encoded = s.clone().to_xdr();
        prop_assert_eq!(String::from_xdr(&encoded).unwrap(), s);
    }

    #[test]
    fn nested_options_and_vecs_roundtrip(
        v in proptest::collection::vec(proptest::option::of(any::<u64>()), 0..20),
    ) {
        let bytes = v.clone().to_xdr();
        prop_assert_eq!(Vec::<Option<u64>>::from_xdr(&bytes).unwrap(), v);
    }

    #[test]
    fn truncation_always_detected(data in proptest::collection::vec(any::<u8>(), 1..80)) {
        let whole = data.clone().to_xdr();
        // Every strict prefix must fail to decode fully.
        for cut in 0..whole.len() {
            let r = Vec::<u8>::from_xdr(&whole[..cut]);
            prop_assert!(r.is_err(), "prefix of len {cut} decoded");
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(junk in proptest::collection::vec(any::<u8>(), 0..120)) {
        let mut dec = XdrDecoder::new(&junk);
        let _ = dec.get_opaque();
        let _: Result<Vec<u64>, XdrError> = Vec::decode(&mut dec);
        let _ = dec.get_string();
        let _ = dec.get_bool();
    }
}
