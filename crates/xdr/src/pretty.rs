//! RPC traffic pretty-printing.
//!
//! Paper §3.2: "Our RPC library can pretty-print RPC traffic for debugging,
//! making it easy to understand any problems by tracing exactly how
//! processes interact." This module renders [`RpcMessage`]s and raw XDR as
//! indented, human-readable text.

use crate::rpc::{AcceptStat, AuthFlavor, RejectStat, RpcMessage};

/// Well-known program numbers rendered by name.
fn prog_name(prog: u32) -> &'static str {
    match prog {
        100003 => "NFS",
        100005 => "MOUNT",
        344_444 => "SFS_FS",
        344_445 => "SFS_AUTH",
        344_446 => "SFS_AGENT",
        344_447 => "SFS_CB",
        _ => "?",
    }
}

fn flavor_name(flavor: AuthFlavor) -> String {
    match flavor {
        AuthFlavor::None => "AUTH_NONE".into(),
        AuthFlavor::Unix => "AUTH_UNIX".into(),
        AuthFlavor::SfsAuthNo => "AUTH_SFS".into(),
        AuthFlavor::Other(v) => format!("AUTH_{v}"),
    }
}

/// Renders a hex dump of up to `max` bytes, eliding the rest.
pub fn hexdump(data: &[u8], max: usize) -> String {
    let shown = &data[..data.len().min(max)];
    let mut out = String::new();
    for (i, chunk) in shown.chunks(16).enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&format!("    {:04x}: ", i * 16));
        for b in chunk {
            out.push_str(&format!("{b:02x} "));
        }
    }
    if data.len() > max {
        out.push_str(&format!("\n    … ({} more bytes)", data.len() - max));
    }
    out
}

/// Pretty-prints an RPC message.
pub fn format_message(msg: &RpcMessage) -> String {
    match msg {
        RpcMessage::Call(c) => format!(
            "CALL xid={:#010x} prog={}({}) vers={} proc={} cred={} [{} arg bytes]\n{}",
            c.xid,
            c.prog,
            prog_name(c.prog),
            c.vers,
            c.proc,
            flavor_name(c.cred.flavor),
            c.args.len(),
            hexdump(&c.args, 64),
        ),
        RpcMessage::Reply(r) => {
            let status = match &r.status {
                Ok(AcceptStat::Success) => "SUCCESS".to_string(),
                Ok(stat) => format!("{stat:?}"),
                Err(RejectStat::RpcMismatch) => "DENIED(RPC_MISMATCH)".to_string(),
                Err(RejectStat::AuthError) => "DENIED(AUTH_ERROR)".to_string(),
            };
            format!(
                "REPLY xid={:#010x} {} [{} result bytes]\n{}",
                r.xid,
                status,
                r.results.len(),
                hexdump(&r.results, 64),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{OpaqueAuth, RpcCall, RpcReply};

    fn call() -> RpcCall {
        RpcCall {
            xid: 0x1234,
            prog: 100003,
            vers: 3,
            proc: 4,
            cred: OpaqueAuth::sfs_authno(7),
            verf: OpaqueAuth::none(),
            args: (0..100u8).collect(),
        }
    }

    #[test]
    fn call_format_mentions_key_fields() {
        let s = format_message(&RpcMessage::Call(call()));
        assert!(s.contains("CALL"));
        assert!(s.contains("NFS"));
        assert!(s.contains("AUTH_SFS"));
        assert!(s.contains("100 arg bytes"));
        assert!(s.contains("more bytes")); // elision marker
    }

    #[test]
    fn reply_format_mentions_status() {
        let c = call();
        let s = format_message(&RpcMessage::Reply(RpcReply::success(&c, vec![1, 2, 3])));
        assert!(s.contains("REPLY"));
        assert!(s.contains("SUCCESS"));
        let s = format_message(&RpcMessage::Reply(RpcReply::auth_denied(&c)));
        assert!(s.contains("DENIED(AUTH_ERROR)"));
    }

    #[test]
    fn hexdump_elides() {
        let d = hexdump(&[0u8; 100], 32);
        assert!(d.contains("68 more bytes"));
        let full = hexdump(&[1, 2, 3], 32);
        assert!(full.contains("01 02 03"));
        assert!(!full.contains("more bytes"));
    }
}
