//! XDR marshaling (RFC 1832) and Sun RPC v2 framing (RFC 1831).
//!
//! Paper §3.2: "All programs communicate with Sun RPC. Thus, the exact bytes
//! exchanged between programs are clearly and unambiguously described in the
//! XDR protocol description language … Any data that SFS hashes, signs, or
//! public-key encrypts is defined as an XDR data structure; SFS computes the
//! hash or public key function on the raw, marshaled bytes."
//!
//! This crate provides:
//!
//! - [`enc`]: XDR encoding/decoding with the 4-byte alignment and big-endian
//!   conventions of RFC 1832, via the [`Xdr`] trait;
//! - [`rpc`]: Sun RPC call/reply messages and TCP record marking;
//! - [`pretty`]: an RPC traffic pretty-printer ("our RPC library can
//!   pretty-print RPC traffic for debugging").

pub mod enc;
pub mod pretty;
pub mod rpc;

pub use enc::{Xdr, XdrDecoder, XdrEncoder, XdrError};
pub use rpc::{AcceptStat, AuthFlavor, OpaqueAuth, RejectStat, RpcCall, RpcMessage, RpcReply};
