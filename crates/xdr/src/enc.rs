//! XDR encoding and decoding (RFC 1832).
//!
//! XDR is big-endian with all items padded to 4-byte alignment. Variable-
//! length data carries a 4-byte length prefix. Optional data is a 1-bit
//! (4-byte) discriminant followed by the value.

use std::fmt;

/// Errors arising while decoding XDR data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// Input ended before the item was complete.
    Truncated,
    /// A length field exceeded the permitted maximum.
    LengthTooLong {
        /// Length the wire claimed.
        claimed: u32,
        /// Maximum the decoder allows.
        max: u32,
    },
    /// A discriminant or enum value was not one of the legal values.
    BadDiscriminant(u32),
    /// Padding bytes were nonzero.
    BadPadding,
    /// A string was not valid UTF-8 (SFS names are byte strings on the
    /// wire; this arises only for types declared as text).
    BadUtf8,
    /// Trailing bytes remained after the top-level item.
    TrailingBytes(usize),
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated => write!(f, "XDR input truncated"),
            XdrError::LengthTooLong { claimed, max } => {
                write!(f, "XDR length {claimed} exceeds maximum {max}")
            }
            XdrError::BadDiscriminant(v) => write!(f, "bad XDR discriminant {v}"),
            XdrError::BadPadding => write!(f, "nonzero XDR padding"),
            XdrError::BadUtf8 => write!(f, "XDR string is not UTF-8"),
            XdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after XDR item"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Default cap on variable-length items, preventing memory-exhaustion from
/// hostile length fields.
pub const MAX_VAR_LEN: u32 = 1 << 24;

/// An append-only XDR encoder.
#[derive(Default, Debug, Clone)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a caller-owned buffer, appending to whatever it already
    /// holds. Combined with [`Self::into_bytes`] this lets a hot path
    /// recycle one allocation across many encodes (clear the buffer
    /// first, or call [`Self::reset`], for a fresh message).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        XdrEncoder { buf }
    }

    /// Clears the encoder, keeping the buffer's capacity for reuse.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Consumes the encoder, returning the marshaled bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes marshaled so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Encodes an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) -> &mut Self {
        self.put_u32(v as u32)
    }

    /// Encodes an unsigned 64-bit integer (XDR "unsigned hyper").
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a signed 64-bit integer (XDR "hyper").
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Encodes a boolean.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u32(v as u32)
    }

    /// Encodes fixed-length opaque data (no length prefix), padded to 4
    /// bytes.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(data);
        self.pad();
        self
    }

    /// Encodes variable-length opaque data (length prefix + padding).
    pub fn put_opaque(&mut self, data: &[u8]) -> &mut Self {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data)
    }

    /// Encodes a string (same wire format as variable opaque).
    pub fn put_string(&mut self, s: &str) -> &mut Self {
        self.put_opaque(s.as_bytes())
    }

    fn pad(&mut self) {
        while !self.buf.len().is_multiple_of(4) {
            self.buf.push(0);
        }
    }
}

/// A cursor-based XDR decoder.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        XdrDecoder { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the input has been fully consumed.
    pub fn finish(&self) -> Result<(), XdrError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(XdrError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Decodes a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Decodes an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Decodes a signed 64-bit integer.
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(self.get_u64()? as i64)
    }

    /// Decodes a boolean (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::BadDiscriminant(v)),
        }
    }

    /// Decodes `n` bytes of fixed-length opaque data plus padding,
    /// borrowing straight from the input — the zero-copy accessor for
    /// payloads that only need to be inspected or relayed.
    pub fn get_opaque_fixed_ref(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(n)?;
        let pad = (4 - n % 4) % 4;
        let padding = self.take(pad)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(XdrError::BadPadding);
        }
        Ok(data)
    }

    /// Decodes `n` bytes of fixed-length opaque data plus padding.
    pub fn get_opaque_fixed(&mut self, n: usize) -> Result<Vec<u8>, XdrError> {
        Ok(self.get_opaque_fixed_ref(n)?.to_vec())
    }

    /// Borrowing variant of [`Self::get_opaque`].
    pub fn get_opaque_ref(&mut self) -> Result<&'a [u8], XdrError> {
        self.get_opaque_max_ref(MAX_VAR_LEN)
    }

    /// Borrowing variant of [`Self::get_opaque_max`].
    pub fn get_opaque_max_ref(&mut self, max: u32) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()?;
        if len > max {
            return Err(XdrError::LengthTooLong { claimed: len, max });
        }
        self.get_opaque_fixed_ref(len as usize)
    }

    /// Decodes variable-length opaque data with a cap of [`MAX_VAR_LEN`].
    pub fn get_opaque(&mut self) -> Result<Vec<u8>, XdrError> {
        self.get_opaque_max(MAX_VAR_LEN)
    }

    /// Decodes variable-length opaque data with an explicit cap.
    pub fn get_opaque_max(&mut self, max: u32) -> Result<Vec<u8>, XdrError> {
        Ok(self.get_opaque_max_ref(max)?.to_vec())
    }

    /// Decodes a UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        String::from_utf8(self.get_opaque()?).map_err(|_| XdrError::BadUtf8)
    }
}

/// A type with an XDR wire format.
pub trait Xdr: Sized {
    /// Appends the XDR encoding of `self`.
    fn encode(&self, enc: &mut XdrEncoder);

    /// Decodes a value.
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError>;

    /// Convenience: marshal to a standalone byte vector.
    fn to_xdr(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Marshals into a caller-owned buffer, replacing its contents but
    /// reusing its capacity — [`Self::to_xdr`] without the allocation.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let mut enc = XdrEncoder::from_vec(std::mem::take(out));
        self.encode(&mut enc);
        *out = enc.into_bytes();
    }

    /// Convenience: unmarshal from a complete byte string (no trailing
    /// bytes allowed).
    fn from_xdr(data: &[u8]) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(data);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

impl Xdr for u32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(*self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_u32()
    }
}

impl Xdr for i32 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_i32(*self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_i32()
    }
}

impl Xdr for u64 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_u64()
    }
}

impl Xdr for i64 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_i64(*self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_i64()
    }
}

impl Xdr for bool {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_bool()
    }
}

impl Xdr for String {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_string()
    }
}

impl Xdr for Vec<u8> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        dec.get_opaque()
    }
}

impl<const N: usize> Xdr for [u8; N] {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque_fixed(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let mut out = [0u8; N];
        out.copy_from_slice(dec.get_opaque_fixed_ref(N)?);
        Ok(out)
    }
}

impl<T: Xdr> Xdr for Option<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            None => {
                enc.put_bool(false);
            }
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

/// XDR variable-length arrays. The element count is capped at
/// [`MAX_VAR_LEN`] but memory is reserved lazily, so hostile counts cannot
/// balloon allocation.
impl<T: Xdr> Xdr for Vec<T>
where
    T: 'static,
{
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let len = dec.get_u32()?;
        if len > MAX_VAR_LEN {
            return Err(XdrError::LengthTooLong {
                claimed: len,
                max: MAX_VAR_LEN,
            });
        }
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: Xdr, B: Xdr> Xdr for (A, B) {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_and_endianness() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x01020304);
        assert_eq!(e.bytes(), &[1, 2, 3, 4]);
        let mut d = XdrDecoder::new(e.bytes());
        assert_eq!(d.get_u32().unwrap(), 0x01020304);
        d.finish().unwrap();
    }

    #[test]
    fn opaque_padding() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcde");
        // 4 (len) + 5 (data) + 3 (pad) = 12.
        assert_eq!(e.len(), 12);
        assert_eq!(&e.bytes()[4..9], b"abcde");
        assert_eq!(&e.bytes()[9..], &[0, 0, 0]);
        let mut d = XdrDecoder::new(e.bytes());
        assert_eq!(d.get_opaque().unwrap(), b"abcde");
        d.finish().unwrap();
    }

    #[test]
    fn nonzero_padding_rejected() {
        // len=1, data='a', pad = [1, 0, 0] — invalid.
        let raw = [0, 0, 0, 1, b'a', 1, 0, 0];
        let mut d = XdrDecoder::new(&raw);
        assert_eq!(d.get_opaque(), Err(XdrError::BadPadding));
    }

    #[test]
    fn truncated_input() {
        let mut d = XdrDecoder::new(&[0, 0]);
        assert_eq!(d.get_u32(), Err(XdrError::Truncated));
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        let mut e = XdrEncoder::new();
        e.put_u32(u32::MAX); // Claimed length of 4 GiB.
        let mut d = XdrDecoder::new(e.bytes());
        assert!(matches!(
            d.get_opaque(),
            Err(XdrError::LengthTooLong {
                claimed: u32::MAX,
                ..
            })
        ));
    }

    #[test]
    fn bool_strictness() {
        let mut e = XdrEncoder::new();
        e.put_u32(2);
        let mut d = XdrDecoder::new(e.bytes());
        assert_eq!(d.get_bool(), Err(XdrError::BadDiscriminant(2)));
    }

    #[test]
    fn string_utf8_enforced() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[0xff, 0xfe]);
        let mut d = XdrDecoder::new(e.bytes());
        assert_eq!(d.get_string(), Err(XdrError::BadUtf8));
    }

    #[test]
    fn option_roundtrip() {
        let v: Option<u32> = Some(7);
        assert_eq!(Option::<u32>::from_xdr(&v.to_xdr()).unwrap(), Some(7));
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::from_xdr(&n.to_xdr()).unwrap(), None);
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3, u64::MAX];
        assert_eq!(Vec::<u64>::from_xdr(&v.to_xdr()).unwrap(), v);
    }

    #[test]
    fn fixed_array_roundtrip() {
        let a: [u8; 20] = [9; 20];
        assert_eq!(<[u8; 20]>::from_xdr(&a.to_xdr()).unwrap(), a);
        // Unaligned fixed array gets padded.
        let b: [u8; 5] = *b"hello";
        assert_eq!(b.to_xdr().len(), 8);
        assert_eq!(<[u8; 5]>::from_xdr(&b.to_xdr()).unwrap(), b);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = XdrEncoder::new();
        e.put_u32(1).put_u32(2);
        assert_eq!(u32::from_xdr(e.bytes()), Err(XdrError::TrailingBytes(4)));
    }

    #[test]
    fn signed_values() {
        let mut e = XdrEncoder::new();
        e.put_i32(-1).put_i64(i64::MIN);
        let mut d = XdrDecoder::new(e.bytes());
        assert_eq!(d.get_i32().unwrap(), -1);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (7u32, String::from("sfs"));
        let back = <(u32, String)>::from_xdr(&t.to_xdr()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn encoder_reuse_preserves_bytes_and_capacity() {
        let mut buf = Vec::new();
        let msgs: Vec<Vec<u8>> = vec![vec![1; 5], vec![2; 9], vec![3; 2]];
        for m in &msgs {
            m.encode_into(&mut buf);
            assert_eq!(buf, m.to_xdr(), "encode_into must match to_xdr");
        }
        // After the largest message, smaller ones must fit in place.
        let cap = buf.capacity();
        msgs[2].encode_into(&mut buf);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    fn from_vec_appends_to_existing_content() {
        let mut enc = XdrEncoder::from_vec(vec![0xAA]);
        enc.put_u32(7);
        assert_eq!(enc.bytes(), &[0xAA, 0, 0, 0, 7]);
        enc.reset();
        assert!(enc.is_empty());
    }

    #[test]
    fn ref_accessors_borrow_and_match_owned() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcde").put_opaque_fixed(b"xyz");
        let bytes = e.into_bytes();
        let mut d1 = XdrDecoder::new(&bytes);
        let mut d2 = XdrDecoder::new(&bytes);
        assert_eq!(d1.get_opaque_ref().unwrap(), d2.get_opaque().unwrap());
        assert_eq!(
            d1.get_opaque_fixed_ref(3).unwrap(),
            d2.get_opaque_fixed(3).unwrap()
        );
        d1.finish().unwrap();
        d2.finish().unwrap();
    }

    #[test]
    fn ref_accessors_enforce_padding_and_caps() {
        // len=1, data='a', pad = [1, 0, 0] — invalid.
        let raw = [0, 0, 0, 1, b'a', 1, 0, 0];
        assert_eq!(
            XdrDecoder::new(&raw).get_opaque_ref(),
            Err(XdrError::BadPadding)
        );
        let mut e = XdrEncoder::new();
        e.put_u32(100);
        assert!(matches!(
            XdrDecoder::new(e.bytes()).get_opaque_max_ref(50),
            Err(XdrError::LengthTooLong { claimed: 100, .. })
        ));
        assert_eq!(
            XdrDecoder::new(&[1, 2]).get_opaque_fixed_ref(4),
            Err(XdrError::Truncated)
        );
    }
}
