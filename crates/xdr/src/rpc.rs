//! Sun RPC v2 messages (RFC 1831) and TCP record marking.
//!
//! Every SFS component — client master, subsidiary daemons, agents,
//! authservers, and the NFS loopback — speaks Sun RPC. The message layer is
//! deliberately small: a call carries program/version/procedure numbers and
//! opaque credentials; a reply is accepted or denied.

use crate::enc::{Xdr, XdrDecoder, XdrEncoder, XdrError};

/// Authentication flavors (RFC 1831 §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthFlavor {
    /// No authentication.
    None,
    /// Traditional Unix credentials (uid/gid); used on the loopback NFS
    /// path.
    Unix,
    /// An SFS authentication number issued by the user-auth protocol
    /// (paper §3.1.2 — "the client tags all subsequent file system requests
    /// from the user with that authentication number").
    SfsAuthNo,
    /// Any other flavor, preserved numerically.
    Other(u32),
}

impl AuthFlavor {
    fn to_u32(self) -> u32 {
        match self {
            AuthFlavor::None => 0,
            AuthFlavor::Unix => 1,
            AuthFlavor::SfsAuthNo => 390_000,
            AuthFlavor::Other(v) => v,
        }
    }

    fn from_u32(v: u32) -> Self {
        match v {
            0 => AuthFlavor::None,
            1 => AuthFlavor::Unix,
            390_000 => AuthFlavor::SfsAuthNo,
            other => AuthFlavor::Other(other),
        }
    }
}

/// An RFC 1831 `opaque_auth`: a flavor plus up to 400 bytes of body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpaqueAuth {
    /// The authentication flavor.
    pub flavor: AuthFlavor,
    /// Flavor-specific body.
    pub body: Vec<u8>,
}

impl OpaqueAuth {
    /// The null credential.
    pub fn none() -> Self {
        OpaqueAuth {
            flavor: AuthFlavor::None,
            body: Vec::new(),
        }
    }

    /// An SFS authentication-number credential.
    pub fn sfs_authno(authno: u32) -> Self {
        OpaqueAuth {
            flavor: AuthFlavor::SfsAuthNo,
            body: authno.to_be_bytes().to_vec(),
        }
    }

    /// Extracts an SFS authentication number, if this credential carries
    /// one.
    pub fn as_sfs_authno(&self) -> Option<u32> {
        if self.flavor == AuthFlavor::SfsAuthNo && self.body.len() == 4 {
            Some(u32::from_be_bytes(self.body[..4].try_into().unwrap()))
        } else {
            None
        }
    }
}

impl Xdr for OpaqueAuth {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.flavor.to_u32());
        enc.put_opaque(&self.body);
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let flavor = AuthFlavor::from_u32(dec.get_u32()?);
        let body = dec.get_opaque_max(400)?;
        Ok(OpaqueAuth { flavor, body })
    }
}

/// An RPC call body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcCall {
    /// Transaction id, echoed in the reply.
    pub xid: u32,
    /// Program number (e.g. 100003 for NFS).
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Procedure number.
    pub proc: u32,
    /// Caller credentials.
    pub cred: OpaqueAuth,
    /// Caller verifier.
    pub verf: OpaqueAuth,
    /// Marshaled procedure arguments.
    pub args: Vec<u8>,
}

/// Why a reply was denied (RFC 1831 `rejected_reply`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectStat {
    /// RPC version mismatch.
    RpcMismatch,
    /// Authentication error.
    AuthError,
}

/// Acceptance status of a reply (RFC 1831 `accept_stat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStat {
    /// Procedure executed; results follow.
    Success,
    /// Program not exported here.
    ProgUnavail,
    /// Program version out of range.
    ProgMismatch,
    /// Unsupported procedure.
    ProcUnavail,
    /// Arguments failed to unmarshal.
    GarbageArgs,
    /// Internal error.
    SystemErr,
}

impl AcceptStat {
    fn to_u32(self) -> u32 {
        match self {
            AcceptStat::Success => 0,
            AcceptStat::ProgUnavail => 1,
            AcceptStat::ProgMismatch => 2,
            AcceptStat::ProcUnavail => 3,
            AcceptStat::GarbageArgs => 4,
            AcceptStat::SystemErr => 5,
        }
    }

    fn from_u32(v: u32) -> Result<Self, XdrError> {
        Ok(match v {
            0 => AcceptStat::Success,
            1 => AcceptStat::ProgUnavail,
            2 => AcceptStat::ProgMismatch,
            3 => AcceptStat::ProcUnavail,
            4 => AcceptStat::GarbageArgs,
            5 => AcceptStat::SystemErr,
            other => return Err(XdrError::BadDiscriminant(other)),
        })
    }
}

/// An RPC reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcReply {
    /// Transaction id of the call being answered.
    pub xid: u32,
    /// Accepted status, or the denial reason.
    pub status: Result<AcceptStat, RejectStat>,
    /// Server verifier (accepted replies).
    pub verf: OpaqueAuth,
    /// Marshaled results (present when status is `Ok(Success)`).
    pub results: Vec<u8>,
}

impl RpcReply {
    /// Builds a successful reply to `call` carrying `results`.
    pub fn success(call: &RpcCall, results: Vec<u8>) -> Self {
        RpcReply {
            xid: call.xid,
            status: Ok(AcceptStat::Success),
            verf: OpaqueAuth::none(),
            results,
        }
    }

    /// Builds an error reply to `call`.
    pub fn error(call: &RpcCall, stat: AcceptStat) -> Self {
        RpcReply {
            xid: call.xid,
            status: Ok(stat),
            verf: OpaqueAuth::none(),
            results: Vec::new(),
        }
    }

    /// Builds an authentication-denied reply.
    pub fn auth_denied(call: &RpcCall) -> Self {
        RpcReply {
            xid: call.xid,
            status: Err(RejectStat::AuthError),
            verf: OpaqueAuth::none(),
            results: Vec::new(),
        }
    }
}

/// A complete RPC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMessage {
    /// A call.
    Call(RpcCall),
    /// A reply.
    Reply(RpcReply),
}

impl RpcMessage {
    /// The transaction id.
    pub fn xid(&self) -> u32 {
        match self {
            RpcMessage::Call(c) => c.xid,
            RpcMessage::Reply(r) => r.xid,
        }
    }
}

const MSG_CALL: u32 = 0;
const MSG_REPLY: u32 = 1;
const RPC_VERSION: u32 = 2;
const REPLY_ACCEPTED: u32 = 0;
const REPLY_DENIED: u32 = 1;

impl Xdr for RpcMessage {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            RpcMessage::Call(c) => {
                enc.put_u32(c.xid);
                enc.put_u32(MSG_CALL);
                enc.put_u32(RPC_VERSION);
                enc.put_u32(c.prog);
                enc.put_u32(c.vers);
                enc.put_u32(c.proc);
                c.cred.encode(enc);
                c.verf.encode(enc);
                // Args are appended raw: their schema belongs to the
                // program, not the RPC layer.
                enc.put_opaque_fixed(&{
                    let mut padded = c.args.clone();
                    while padded.len() % 4 != 0 {
                        padded.push(0);
                    }
                    padded
                });
            }
            RpcMessage::Reply(r) => {
                enc.put_u32(r.xid);
                enc.put_u32(MSG_REPLY);
                match &r.status {
                    Ok(stat) => {
                        enc.put_u32(REPLY_ACCEPTED);
                        r.verf.encode(enc);
                        enc.put_u32(stat.to_u32());
                        enc.put_opaque_fixed(&{
                            let mut padded = r.results.clone();
                            while padded.len() % 4 != 0 {
                                padded.push(0);
                            }
                            padded
                        });
                    }
                    Err(RejectStat::RpcMismatch) => {
                        enc.put_u32(REPLY_DENIED);
                        enc.put_u32(0);
                        enc.put_u32(RPC_VERSION);
                        enc.put_u32(RPC_VERSION);
                    }
                    Err(RejectStat::AuthError) => {
                        enc.put_u32(REPLY_DENIED);
                        enc.put_u32(1);
                        enc.put_u32(0); // auth_stat AUTH_OK placeholder code
                    }
                }
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let xid = dec.get_u32()?;
        match dec.get_u32()? {
            MSG_CALL => {
                let rpcvers = dec.get_u32()?;
                if rpcvers != RPC_VERSION {
                    return Err(XdrError::BadDiscriminant(rpcvers));
                }
                let prog = dec.get_u32()?;
                let vers = dec.get_u32()?;
                let proc = dec.get_u32()?;
                let cred = OpaqueAuth::decode(dec)?;
                let verf = OpaqueAuth::decode(dec)?;
                let args = dec.get_opaque_fixed(dec.remaining())?;
                Ok(RpcMessage::Call(RpcCall {
                    xid,
                    prog,
                    vers,
                    proc,
                    cred,
                    verf,
                    args,
                }))
            }
            MSG_REPLY => match dec.get_u32()? {
                REPLY_ACCEPTED => {
                    let verf = OpaqueAuth::decode(dec)?;
                    let stat = AcceptStat::from_u32(dec.get_u32()?)?;
                    let results = dec.get_opaque_fixed(dec.remaining())?;
                    Ok(RpcMessage::Reply(RpcReply {
                        xid,
                        status: Ok(stat),
                        verf,
                        results,
                    }))
                }
                REPLY_DENIED => {
                    let reject = match dec.get_u32()? {
                        0 => {
                            let _low = dec.get_u32()?;
                            let _high = dec.get_u32()?;
                            RejectStat::RpcMismatch
                        }
                        1 => {
                            let _stat = dec.get_u32()?;
                            RejectStat::AuthError
                        }
                        other => return Err(XdrError::BadDiscriminant(other)),
                    };
                    Ok(RpcMessage::Reply(RpcReply {
                        xid,
                        status: Err(reject),
                        verf: OpaqueAuth::none(),
                        results: Vec::new(),
                    }))
                }
                other => Err(XdrError::BadDiscriminant(other)),
            },
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

/// Frames a marshaled message with TCP record marking (RFC 1831 §10): a
/// 4-byte header whose high bit marks the final fragment.
pub fn record_mark(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    let header = 0x8000_0000u32 | payload.len() as u32;
    out.extend_from_slice(&header.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits one record-marked message from the front of `stream`, returning
/// `(payload, bytes_consumed)`; `None` when incomplete.
///
/// Multi-fragment records are reassembled.
pub fn record_unmark(stream: &[u8]) -> Option<(Vec<u8>, usize)> {
    let mut payload = Vec::new();
    let mut pos = 0;
    loop {
        if stream.len() < pos + 4 {
            return None;
        }
        let header = u32::from_be_bytes(stream[pos..pos + 4].try_into().unwrap());
        let last = header & 0x8000_0000 != 0;
        let len = (header & 0x7fff_ffff) as usize;
        if stream.len() < pos + 4 + len {
            return None;
        }
        payload.extend_from_slice(&stream[pos + 4..pos + 4 + len]);
        pos += 4 + len;
        if last {
            return Some((payload, pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_call() -> RpcCall {
        RpcCall {
            xid: 0xdeadbeef,
            prog: 100003,
            vers: 3,
            proc: 1,
            cred: OpaqueAuth::sfs_authno(42),
            verf: OpaqueAuth::none(),
            args: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn call_roundtrip() {
        let msg = RpcMessage::Call(sample_call());
        let bytes = msg.to_xdr();
        let back = RpcMessage::from_xdr(&bytes).unwrap();
        match back {
            RpcMessage::Call(c) => {
                assert_eq!(c.xid, 0xdeadbeef);
                assert_eq!(c.prog, 100003);
                assert_eq!(c.cred.as_sfs_authno(), Some(42));
                // Args round up to 4-byte alignment.
                assert_eq!(&c.args[..5], &[1, 2, 3, 4, 5]);
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn reply_roundtrip() {
        let call = sample_call();
        let msg = RpcMessage::Reply(RpcReply::success(&call, vec![9, 9, 9, 9]));
        let back = RpcMessage::from_xdr(&msg.to_xdr()).unwrap();
        match back {
            RpcMessage::Reply(r) => {
                assert_eq!(r.xid, call.xid);
                assert_eq!(r.status, Ok(AcceptStat::Success));
                assert_eq!(r.results, vec![9, 9, 9, 9]);
            }
            _ => panic!("expected reply"),
        }
    }

    #[test]
    fn denied_reply_roundtrip() {
        let call = sample_call();
        let msg = RpcMessage::Reply(RpcReply::auth_denied(&call));
        let back = RpcMessage::from_xdr(&msg.to_xdr()).unwrap();
        match back {
            RpcMessage::Reply(r) => assert_eq!(r.status, Err(RejectStat::AuthError)),
            _ => panic!("expected reply"),
        }
    }

    #[test]
    fn error_reply_stats() {
        let call = sample_call();
        for stat in [
            AcceptStat::ProgUnavail,
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemErr,
        ] {
            let msg = RpcMessage::Reply(RpcReply::error(&call, stat));
            match RpcMessage::from_xdr(&msg.to_xdr()).unwrap() {
                RpcMessage::Reply(r) => assert_eq!(r.status, Ok(stat)),
                _ => panic!("expected reply"),
            }
        }
    }

    #[test]
    fn wrong_rpc_version_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(1); // xid
        enc.put_u32(MSG_CALL);
        enc.put_u32(3); // bad rpcvers
        assert!(matches!(
            RpcMessage::from_xdr(enc.bytes()),
            Err(XdrError::BadDiscriminant(3))
        ));
    }

    #[test]
    fn record_marking_roundtrip() {
        let framed = record_mark(b"hello rpc");
        let (payload, consumed) = record_unmark(&framed).unwrap();
        assert_eq!(payload, b"hello rpc");
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn record_unmark_handles_partial() {
        let framed = record_mark(b"data");
        assert!(record_unmark(&framed[..3]).is_none());
        assert!(record_unmark(&framed[..framed.len() - 1]).is_none());
    }

    #[test]
    fn record_unmark_reassembles_fragments() {
        // Two fragments: "hel" (not last) + "lo" (last).
        let mut stream = Vec::new();
        stream.extend_from_slice(&(3u32).to_be_bytes());
        stream.extend_from_slice(b"hel");
        stream.extend_from_slice(&(0x8000_0000u32 | 2).to_be_bytes());
        stream.extend_from_slice(b"lo");
        let (payload, consumed) = record_unmark(&stream).unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, stream.len());
    }

    #[test]
    fn record_unmark_two_messages_back_to_back() {
        let mut stream = record_mark(b"first");
        stream.extend_from_slice(&record_mark(b"second"));
        let (p1, c1) = record_unmark(&stream).unwrap();
        assert_eq!(p1, b"first");
        let (p2, c2) = record_unmark(&stream[c1..]).unwrap();
        assert_eq!(p2, b"second");
        assert_eq!(c1 + c2, stream.len());
    }

    #[test]
    fn auth_body_cap_enforced() {
        let auth = OpaqueAuth {
            flavor: AuthFlavor::Unix,
            body: vec![0u8; 401],
        };
        let bytes = auth.to_xdr();
        assert!(matches!(
            OpaqueAuth::from_xdr(&bytes),
            Err(XdrError::LengthTooLong {
                claimed: 401,
                max: 400
            })
        ));
    }
}
