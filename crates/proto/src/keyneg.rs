//! The SFS key-negotiation protocol (Figure 3, §3.1.1).
//!
//! ```text
//! 1. C → S: Location, HostID
//! 2. S → C: K_S                        (client checks SHA-1 against HostID)
//! 3. C → S: K_C, {k_C1, k_C2}_K_S     (K_C is short-lived / ephemeral)
//! 4. S → C: {k_S1, k_S2}_K_C
//!
//! k_CS = SHA-1("KCS", K_S, k_S1, K_C, k_C1)
//! k_SC = SHA-1("KSC", K_S, k_S2, K_C, k_C2)
//! ```
//!
//! "This key negotiation protocol assures the client that no one else can
//! know k_CS and k_SC without also possessing K_S⁻¹. … Clients discard and
//! regenerate K_C at regular intervals (every hour by default)", which is
//! what gives recorded sessions forward secrecy (§2.4: an attacker who
//! later steals the server key "cannot decrypt previously recorded network
//! transmissions").
//!
//! RECONSTRUCTION: the exact per-direction ordering of key halves inside
//! the two SHA-1 derivations is not printable from the paper's damaged
//! glyphs; the structure above (constant, server key, server half, client
//! key, client half) follows the visible subscripts.

use sfs_bignum::RandomSource;
use sfs_crypto::rabin::{RabinError, RabinPrivateKey, RabinPublicKey};
use sfs_crypto::sha1::{sha1_concat, DIGEST_LEN};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

use crate::pathname::{HostId, SelfCertifyingPath};
use crate::revoke::RevocationCert;

/// Length of each random key half.
pub const KEY_HALF_LEN: usize = 16;

/// Errors during key negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyNegError {
    /// The server's claimed public key does not hash to the pathname's
    /// HostID — self-certification failed.
    HostIdMismatch,
    /// Public-key decryption failed (malformed or tampered message).
    Crypto(RabinError),
    /// Message failed to unmarshal.
    Xdr(XdrError),
    /// The server answered with a valid revocation certificate for this
    /// path.
    Revoked(Box<RevocationCert>),
}

impl std::fmt::Display for KeyNegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyNegError::HostIdMismatch => {
                write!(f, "server public key does not match HostID")
            }
            KeyNegError::Crypto(e) => write!(f, "key negotiation crypto failure: {e}"),
            KeyNegError::Xdr(e) => write!(f, "key negotiation decode failure: {e}"),
            KeyNegError::Revoked(_) => write!(f, "pathname has been revoked"),
        }
    }
}

impl std::error::Error for KeyNegError {}

impl From<RabinError> for KeyNegError {
    fn from(e: RabinError) -> Self {
        KeyNegError::Crypto(e)
    }
}

impl From<XdrError> for KeyNegError {
    fn from(e: XdrError) -> Self {
        KeyNegError::Xdr(e)
    }
}

/// The session keys both sides derive, plus the SessionID used by user
/// authentication.
#[derive(Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Client→server key.
    pub kcs: [u8; DIGEST_LEN],
    /// Server→client key.
    pub ksc: [u8; DIGEST_LEN],
    /// SessionID = SHA-1("SessionInfo", k_SC, k_CS) (§3.1.2).
    pub session_id: [u8; DIGEST_LEN],
}

impl SessionKeys {
    fn derive(
        server_key: &RabinPublicKey,
        client_key: &RabinPublicKey,
        kc: &KeyHalves,
        ks: &KeyHalves,
    ) -> SessionKeys {
        let kcs = sha1_concat(&[
            b"KCS",
            &server_key.to_bytes(),
            &ks.half1,
            &client_key.to_bytes(),
            &kc.half1,
        ]);
        let ksc = sha1_concat(&[
            b"KSC",
            &server_key.to_bytes(),
            &ks.half2,
            &client_key.to_bytes(),
            &kc.half2,
        ]);
        let session_id = sha1_concat(&[b"SessionInfo", &ksc, &kcs]);
        SessionKeys {
            kcs,
            ksc,
            session_id,
        }
    }
}

impl std::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; the SessionID is public.
        write!(
            f,
            "SessionKeys {{ session_id: {:02x?} }}",
            &self.session_id[..4]
        )
    }
}

/// A pair of random key halves.
#[derive(Clone, PartialEq, Eq)]
struct KeyHalves {
    half1: [u8; KEY_HALF_LEN],
    half2: [u8; KEY_HALF_LEN],
}

impl KeyHalves {
    fn random<R: RandomSource>(rng: &mut R) -> Self {
        let mut half1 = [0u8; KEY_HALF_LEN];
        let mut half2 = [0u8; KEY_HALF_LEN];
        rng.fill(&mut half1);
        rng.fill(&mut half2);
        KeyHalves { half1, half2 }
    }

    fn to_xdr_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_opaque_fixed(&self.half1);
        enc.put_opaque_fixed(&self.half2);
        enc.into_bytes()
    }

    fn from_xdr_bytes(data: &[u8]) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(data);
        let h1 = dec.get_opaque_fixed(KEY_HALF_LEN)?;
        let h2 = dec.get_opaque_fixed(KEY_HALF_LEN)?;
        dec.finish()?;
        Ok(KeyHalves {
            half1: h1.try_into().expect("length checked"),
            half2: h2.try_into().expect("length checked"),
        })
    }
}

/// Step 1 — the client's hello, announcing which file system it wants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyNegRequest {
    /// Location from the self-certifying pathname.
    pub location: String,
    /// HostID from the self-certifying pathname.
    pub host_id: HostId,
}

impl Xdr for KeyNegRequest {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.location);
        self.host_id.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(KeyNegRequest {
            location: dec.get_string()?,
            host_id: HostId::decode(dec)?,
        })
    }
}

/// Step 2 — the server's reply: its public key, or a revocation
/// certificate ("When SFS first connects to a server … The server can
/// respond with a revocation certificate", §2.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyNegServerReply {
    /// The server's long-lived public key.
    ServerKey(Vec<u8>),
    /// This pathname has been revoked.
    Revoked(RevocationCert),
}

impl Xdr for KeyNegServerReply {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            KeyNegServerReply::ServerKey(k) => {
                enc.put_u32(0);
                enc.put_opaque(k);
            }
            KeyNegServerReply::Revoked(cert) => {
                enc.put_u32(1);
                cert.encode(enc);
            }
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(KeyNegServerReply::ServerKey(dec.get_opaque()?)),
            1 => Ok(KeyNegServerReply::Revoked(RevocationCert::decode(dec)?)),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

/// Step 3 — the client's ephemeral key and its encrypted key halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyNegClientKeys {
    /// The client's short-lived public key K_C ("anonymous and has no
    /// bearing on access control").
    pub client_key: Vec<u8>,
    /// {k_C1, k_C2} encrypted to K_S.
    pub encrypted_halves: Vec<u8>,
}

impl Xdr for KeyNegClientKeys {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(&self.client_key);
        enc.put_opaque(&self.encrypted_halves);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(KeyNegClientKeys {
            client_key: dec.get_opaque()?,
            encrypted_halves: dec.get_opaque()?,
        })
    }
}

/// The client's half of the key negotiation.
pub struct KeyNegClient {
    path: SelfCertifyingPath,
    ephemeral: RabinPrivateKey,
}

/// Client state between receiving the server key and the server halves.
///
/// Debug intentionally omits the key material.
pub struct KeyNegClientAwaitingHalves {
    server_key: RabinPublicKey,
    ephemeral: RabinPrivateKey,
    kc: KeyHalves,
}

impl KeyNegClient {
    /// Starts a negotiation for `path` using the client's current
    /// `ephemeral` key (regenerated hourly in the client master).
    pub fn new(path: SelfCertifyingPath, ephemeral: RabinPrivateKey) -> Self {
        KeyNegClient { path, ephemeral }
    }

    /// Step 1: the hello message.
    pub fn hello(&self) -> KeyNegRequest {
        KeyNegRequest {
            location: self.path.location.clone(),
            host_id: self.path.host_id,
        }
    }

    /// Step 2→3: verify the server key against the HostID (the
    /// self-certification step) and produce the encrypted client halves.
    pub fn on_server_reply<R: RandomSource>(
        self,
        reply: &KeyNegServerReply,
        rng: &mut R,
    ) -> Result<(KeyNegClientAwaitingHalves, KeyNegClientKeys), KeyNegError> {
        let key_bytes = match reply {
            KeyNegServerReply::ServerKey(k) => k,
            KeyNegServerReply::Revoked(cert) => {
                // Only honor certificates that actually revoke this path.
                if cert.revokes(&self.path) {
                    return Err(KeyNegError::Revoked(Box::new(cert.clone())));
                }
                return Err(KeyNegError::HostIdMismatch);
            }
        };
        let server_key = RabinPublicKey::from_bytes(key_bytes)?;
        if !self.path.certifies(&server_key) {
            return Err(KeyNegError::HostIdMismatch);
        }
        let kc = KeyHalves::random(rng);
        let encrypted = server_key.encrypt(&kc.to_xdr_bytes(), rng)?;
        let msg = KeyNegClientKeys {
            client_key: self.ephemeral.public().to_bytes(),
            encrypted_halves: encrypted,
        };
        Ok((
            KeyNegClientAwaitingHalves {
                server_key,
                ephemeral: self.ephemeral,
                kc,
            },
            msg,
        ))
    }
}

impl std::fmt::Debug for KeyNegClientAwaitingHalves {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyNegClientAwaitingHalves {{ .. }}")
    }
}

impl KeyNegClientAwaitingHalves {
    /// Step 4: decrypt the server's key halves and derive the session
    /// keys.
    pub fn on_server_halves(self, encrypted: &[u8]) -> Result<SessionKeys, KeyNegError> {
        let ks = KeyHalves::from_xdr_bytes(&self.ephemeral.decrypt(encrypted)?)?;
        Ok(SessionKeys::derive(
            &self.server_key,
            self.ephemeral.public(),
            &self.kc,
            &ks,
        ))
    }
}

/// The server's half of the negotiation: processes step 3 and produces
/// step 4 plus its own session keys.
pub fn server_process_client_keys<R: RandomSource>(
    server_key: &RabinPrivateKey,
    msg: &KeyNegClientKeys,
    rng: &mut R,
) -> Result<(SessionKeys, Vec<u8>), KeyNegError> {
    let client_key = RabinPublicKey::from_bytes(&msg.client_key)?;
    let kc = KeyHalves::from_xdr_bytes(&server_key.decrypt(&msg.encrypted_halves)?)?;
    let ks = KeyHalves::random(rng);
    let encrypted = client_key.encrypt(&ks.to_xdr_bytes(), rng)?;
    let keys = SessionKeys::derive(server_key.public(), &client_key, &kc, &ks);
    Ok((keys, encrypted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;
    use std::sync::OnceLock;

    /// Shared test keys (generation is the slow part).
    fn server_key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0x5EED);
            generate_keypair(768, &mut rng)
        })
    }

    fn ephemeral_key() -> RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0xE4E);
            generate_keypair(768, &mut rng)
        })
        .clone()
    }

    fn run_negotiation() -> (SessionKeys, SessionKeys) {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(11);
        let mut srng = XorShiftSource::new(22);

        let client = KeyNegClient::new(path, ephemeral_key());
        let _hello = client.hello();
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (server_keys, msg4) = server_process_client_keys(skey, &msg3, &mut srng).unwrap();
        let client_keys = awaiting.on_server_halves(&msg4).unwrap();
        (client_keys, server_keys)
    }

    #[test]
    fn both_sides_agree() {
        let (c, s) = run_negotiation();
        assert_eq!(c, s);
        assert_ne!(c.kcs, c.ksc, "directions must use distinct keys");
    }

    #[test]
    fn sessions_are_unique() {
        let (a, _) = run_negotiation();
        // Different randomness yields different keys.
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(77);
        let mut srng = XorShiftSource::new(88);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (_, msg4) = server_process_client_keys(skey, &msg3, &mut srng).unwrap();
        let b = awaiting.on_server_halves(&msg4).unwrap();
        assert_ne!(a.session_id, b.session_id);
    }

    #[test]
    fn mitm_key_substitution_detected() {
        // An attacker presents its own key for the same Location.
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut rng = XorShiftSource::new(1);
        let mut attacker_rng = XorShiftSource::new(666);
        let attacker = generate_keypair(768, &mut attacker_rng);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(attacker.public().to_bytes());
        let err = client.on_server_reply(&reply, &mut rng).unwrap_err();
        assert_eq!(err, KeyNegError::HostIdMismatch);
    }

    #[test]
    fn tampered_halves_rejected() {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(2);
        let mut srng = XorShiftSource::new(3);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (_, mut msg4) = server_process_client_keys(skey, &msg3, &mut srng).unwrap();
        msg4[5] ^= 1;
        assert!(matches!(
            awaiting.on_server_halves(&msg4).unwrap_err(),
            KeyNegError::Crypto(_)
        ));
    }

    #[test]
    fn tampered_client_message_rejected_by_server() {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(4);
        let mut srng = XorShiftSource::new(5);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (_awaiting, mut msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        msg3.encrypted_halves[7] ^= 1;
        assert!(server_process_client_keys(skey, &msg3, &mut srng).is_err());
    }

    #[test]
    fn messages_roundtrip_xdr() {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("x.example.org", skey.public());
        let req = KeyNegRequest {
            location: path.location.clone(),
            host_id: path.host_id,
        };
        assert_eq!(KeyNegRequest::from_xdr(&req.to_xdr()).unwrap(), req);
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        assert_eq!(KeyNegServerReply::from_xdr(&reply.to_xdr()).unwrap(), reply);
        let msg = KeyNegClientKeys {
            client_key: vec![1, 2, 3],
            encrypted_halves: vec![4, 5],
        };
        assert_eq!(KeyNegClientKeys::from_xdr(&msg.to_xdr()).unwrap(), msg);
    }

    #[test]
    fn forward_secrecy_structure() {
        // The shared secrets are the four key halves; k_C halves are
        // encrypted to K_S, k_S halves to the *ephemeral* K_C. With only
        // K_S^-1 (post-hoc compromise) an attacker recovers k_C1/k_C2 but
        // not k_S1/k_S2, hence neither session key. We verify the k_S
        // message is bound to the ephemeral key by decrypting it with the
        // wrong key and failing.
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(6);
        let mut srng = XorShiftSource::new(7);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (_awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (_, msg4) = server_process_client_keys(skey, &msg3, &mut srng).unwrap();
        // The server's long-lived key cannot decrypt message 4.
        assert!(skey.decrypt(&msg4).is_err());
    }
}
