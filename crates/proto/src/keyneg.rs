//! The SFS key-negotiation protocol (Figure 3, §3.1.1).
//!
//! ```text
//! 1. C → S: Location, HostID
//! 2. S → C: K_S                        (client checks SHA-1 against HostID)
//! 3. C → S: K_C, {k_C1, k_C2}_K_S     (K_C is short-lived / ephemeral)
//! 4. S → C: {k_S1, k_S2}_K_C
//!
//! k_CS = SHA-1("KCS", K_S, k_S1, K_C, k_C1)
//! k_SC = SHA-1("KSC", K_S, k_S2, K_C, k_C2)
//! ```
//!
//! "This key negotiation protocol assures the client that no one else can
//! know k_CS and k_SC without also possessing K_S⁻¹. … Clients discard and
//! regenerate K_C at regular intervals (every hour by default)", which is
//! what gives recorded sessions forward secrecy (§2.4: an attacker who
//! later steals the server key "cannot decrypt previously recorded network
//! transmissions").
//!
//! RECONSTRUCTION: the exact per-direction ordering of key halves inside
//! the two SHA-1 derivations is not printable from the paper's damaged
//! glyphs; the structure above (constant, server key, server half, client
//! key, client half) follows the visible subscripts.
//!
//! # Suite negotiation
//!
//! The channel cipher is negotiable (§3's separation of key management
//! from the transport cipher). The client's hello carries its offered
//! suite list in the extensions string (`suites=…`); the server picks one
//! and announces it in message 4. Downgrade protection comes from binding
//! the *raw offer string* and the chosen suite into the session-key
//! derivation, and from a confirmation MAC over the derived keys in
//! message 4: a man in the middle who strips or reorders the offer makes
//! the two sides derive different keys, so the confirmation check fails
//! and the client aborts instead of silently running the weaker suite.
//!
//! # Session resumption
//!
//! A completed negotiation also yields a *resumption secret* (derived
//! from the session keys, never sent in clear). The server hands the
//! client an opaque ticket — the secret sealed under a server-local
//! ticket key. On reconnect the client presents the ticket plus a fresh
//! nonce; both sides derive fresh keys from the secret and the two
//! nonces, skipping the Rabin decryptions entirely. Forward secrecy is
//! preserved at ticket-lifetime granularity rather than per-session.

use sfs_bignum::RandomSource;
use sfs_crypto::rabin::{RabinError, RabinPrivateKey, RabinPublicKey};
use sfs_crypto::sha1::{sha1_concat, DIGEST_LEN};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

use crate::channel::SuiteId;
use crate::pathname::{HostId, SelfCertifyingPath};
use crate::revoke::RevocationCert;

/// Length of each random key half.
pub const KEY_HALF_LEN: usize = 16;

/// Length of the client/server nonces in a ticket resume.
pub const RESUME_NONCE_LEN: usize = 16;

/// The extensions-string token prefix carrying the suite offer.
pub const SUITES_EXT_PREFIX: &str = "suites=";

/// Renders a suite offer as an extensions-string token. The
/// baseline-only offer renders as the empty string, keeping legacy
/// clients and the paper's wire format byte-identical.
pub fn offer_extensions(suites: &[SuiteId]) -> String {
    if suites == [SuiteId::Arc4Sha1] {
        return String::new();
    }
    let labels: Vec<&str> = suites.iter().map(|s| s.label()).collect();
    format!("{SUITES_EXT_PREFIX}{}", labels.join(","))
}

/// Parses the offered suite list out of a hello extensions string. No
/// `suites=` token means a legacy client: baseline only. Unknown labels
/// are ignored (a newer client may offer suites we do not know).
pub fn offered_suites(extensions: &str) -> Vec<SuiteId> {
    for token in extensions.split_whitespace() {
        if let Some(list) = token.strip_prefix(SUITES_EXT_PREFIX) {
            let mut suites: Vec<SuiteId> = list.split(',').filter_map(SuiteId::parse).collect();
            if !suites.contains(&SuiteId::Arc4Sha1) {
                suites.push(SuiteId::Arc4Sha1);
            }
            return suites;
        }
    }
    vec![SuiteId::Arc4Sha1]
}

/// Removes the `suites=` token from an extensions string, returning what
/// dispatch rules should see (they match extensions exactly and predate
/// suite negotiation).
pub fn strip_suites_ext(extensions: &str) -> String {
    extensions
        .split_whitespace()
        .filter(|t| !t.starts_with(SUITES_EXT_PREFIX))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The server's pick: the first offered suite, in the client's
/// preference order. The offer always contains at least the baseline.
pub fn choose_suite(offered: &[SuiteId]) -> SuiteId {
    offered.first().copied().unwrap_or(SuiteId::Arc4Sha1)
}

/// The negotiation transcript digest bound into key derivation: the raw
/// offer string exactly as the client sent it, plus the server's choice.
fn suite_transcript(offer_ext: &str, chosen: SuiteId) -> [u8; DIGEST_LEN] {
    sha1_concat(&[
        b"SuiteOffer",
        offer_ext.as_bytes(),
        &chosen.wire_id().to_be_bytes(),
    ])
}

/// The message-4 confirmation MAC proving the server derived the same
/// keys over the same transcript.
fn suite_confirm(keys: &SessionKeys, transcript: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    sha1_concat(&[b"SuiteConfirm", &keys.kcs, &keys.ksc, transcript])
}

/// Errors during key negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyNegError {
    /// The server's claimed public key does not hash to the pathname's
    /// HostID — self-certification failed.
    HostIdMismatch,
    /// Public-key decryption failed (malformed or tampered message).
    Crypto(RabinError),
    /// Message failed to unmarshal.
    Xdr(XdrError),
    /// The server answered with a valid revocation certificate for this
    /// path.
    Revoked(Box<RevocationCert>),
    /// Suite negotiation failed its downgrade check: the server chose a
    /// suite we never offered, or the confirmation MAC did not match —
    /// someone tampered with the offer in flight.
    Downgrade(String),
}

impl std::fmt::Display for KeyNegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyNegError::HostIdMismatch => {
                write!(f, "server public key does not match HostID")
            }
            KeyNegError::Crypto(e) => write!(f, "key negotiation crypto failure: {e}"),
            KeyNegError::Xdr(e) => write!(f, "key negotiation decode failure: {e}"),
            KeyNegError::Revoked(_) => write!(f, "pathname has been revoked"),
            KeyNegError::Downgrade(why) => {
                write!(f, "suite negotiation downgrade detected: {why}")
            }
        }
    }
}

impl std::error::Error for KeyNegError {}

impl From<RabinError> for KeyNegError {
    fn from(e: RabinError) -> Self {
        KeyNegError::Crypto(e)
    }
}

impl From<XdrError> for KeyNegError {
    fn from(e: XdrError) -> Self {
        KeyNegError::Xdr(e)
    }
}

/// The session keys both sides derive, plus the SessionID used by user
/// authentication.
#[derive(Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Client→server key.
    pub kcs: [u8; DIGEST_LEN],
    /// Server→client key.
    pub ksc: [u8; DIGEST_LEN],
    /// SessionID = SHA-1("SessionInfo", k_SC, k_CS) (§3.1.2).
    pub session_id: [u8; DIGEST_LEN],
}

impl SessionKeys {
    fn derive(
        server_key: &RabinPublicKey,
        client_key: &RabinPublicKey,
        kc: &KeyHalves,
        ks: &KeyHalves,
        transcript: &[u8; DIGEST_LEN],
    ) -> SessionKeys {
        // The suite transcript is always appended — a legacy empty offer
        // hashes to a fixed digest, so both sides still agree.
        let kcs = sha1_concat(&[
            b"KCS",
            &server_key.to_bytes(),
            &ks.half1,
            &client_key.to_bytes(),
            &kc.half1,
            transcript,
        ]);
        let ksc = sha1_concat(&[
            b"KSC",
            &server_key.to_bytes(),
            &ks.half2,
            &client_key.to_bytes(),
            &kc.half2,
            transcript,
        ]);
        let session_id = sha1_concat(&[b"SessionInfo", &ksc, &kcs]);
        SessionKeys {
            kcs,
            ksc,
            session_id,
        }
    }
}

impl std::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; the SessionID is public.
        write!(
            f,
            "SessionKeys {{ session_id: {:02x?} }}",
            &self.session_id[..4]
        )
    }
}

/// A pair of random key halves.
#[derive(Clone, PartialEq, Eq)]
struct KeyHalves {
    half1: [u8; KEY_HALF_LEN],
    half2: [u8; KEY_HALF_LEN],
}

impl KeyHalves {
    fn random<R: RandomSource>(rng: &mut R) -> Self {
        let mut half1 = [0u8; KEY_HALF_LEN];
        let mut half2 = [0u8; KEY_HALF_LEN];
        rng.fill(&mut half1);
        rng.fill(&mut half2);
        KeyHalves { half1, half2 }
    }

    fn to_xdr_bytes(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_opaque_fixed(&self.half1);
        enc.put_opaque_fixed(&self.half2);
        enc.into_bytes()
    }

    fn from_xdr_bytes(data: &[u8]) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(data);
        let h1 = dec.get_opaque_fixed(KEY_HALF_LEN)?;
        let h2 = dec.get_opaque_fixed(KEY_HALF_LEN)?;
        dec.finish()?;
        Ok(KeyHalves {
            half1: h1.try_into().expect("length checked"),
            half2: h2.try_into().expect("length checked"),
        })
    }
}

/// Step 1 — the client's hello, announcing which file system it wants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyNegRequest {
    /// Location from the self-certifying pathname.
    pub location: String,
    /// HostID from the self-certifying pathname.
    pub host_id: HostId,
}

impl Xdr for KeyNegRequest {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.location);
        self.host_id.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(KeyNegRequest {
            location: dec.get_string()?,
            host_id: HostId::decode(dec)?,
        })
    }
}

/// Step 2 — the server's reply: its public key, or a revocation
/// certificate ("When SFS first connects to a server … The server can
/// respond with a revocation certificate", §2.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyNegServerReply {
    /// The server's long-lived public key.
    ServerKey(Vec<u8>),
    /// This pathname has been revoked.
    Revoked(RevocationCert),
}

impl Xdr for KeyNegServerReply {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            KeyNegServerReply::ServerKey(k) => {
                enc.put_u32(0);
                enc.put_opaque(k);
            }
            KeyNegServerReply::Revoked(cert) => {
                enc.put_u32(1);
                cert.encode(enc);
            }
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(KeyNegServerReply::ServerKey(dec.get_opaque()?)),
            1 => Ok(KeyNegServerReply::Revoked(RevocationCert::decode(dec)?)),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

/// Step 3 — the client's ephemeral key and its encrypted key halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyNegClientKeys {
    /// The client's short-lived public key K_C ("anonymous and has no
    /// bearing on access control").
    pub client_key: Vec<u8>,
    /// {k_C1, k_C2} encrypted to K_S.
    pub encrypted_halves: Vec<u8>,
}

impl Xdr for KeyNegClientKeys {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(&self.client_key);
        enc.put_opaque(&self.encrypted_halves);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(KeyNegClientKeys {
            client_key: dec.get_opaque()?,
            encrypted_halves: dec.get_opaque()?,
        })
    }
}

/// Step 4 — the server's encrypted key halves, its suite choice with the
/// downgrade-protecting confirmation MAC, and a resumption ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyNegServerHalves {
    /// {k_S1, k_S2} encrypted to the ephemeral K_C.
    pub encrypted_halves: Vec<u8>,
    /// Wire id of the suite the server chose ([`SuiteId::wire_id`]).
    pub chosen: u32,
    /// SHA-1("SuiteConfirm", k_CS, k_SC, transcript) — only computable
    /// by a server that saw the genuine offer and derived the same keys.
    pub confirm: [u8; DIGEST_LEN],
    /// An opaque session-resumption ticket (empty if the server does not
    /// issue them).
    pub ticket: Vec<u8>,
}

impl Xdr for KeyNegServerHalves {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(&self.encrypted_halves);
        enc.put_u32(self.chosen);
        enc.put_opaque_fixed(&self.confirm);
        enc.put_opaque(&self.ticket);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(KeyNegServerHalves {
            encrypted_halves: dec.get_opaque()?,
            chosen: dec.get_u32()?,
            confirm: dec
                .get_opaque_fixed(DIGEST_LEN)?
                .try_into()
                .expect("length checked"),
            ticket: dec.get_opaque()?,
        })
    }
}

/// The client's half of the key negotiation.
pub struct KeyNegClient {
    path: SelfCertifyingPath,
    ephemeral: RabinPrivateKey,
    suites: Vec<SuiteId>,
}

/// Client state between receiving the server key and the server halves.
///
/// Debug intentionally omits the key material.
pub struct KeyNegClientAwaitingHalves {
    server_key: RabinPublicKey,
    ephemeral: RabinPrivateKey,
    kc: KeyHalves,
    suites: Vec<SuiteId>,
    offer_ext: String,
}

impl KeyNegClient {
    /// Starts a negotiation for `path` using the client's current
    /// `ephemeral` key (regenerated hourly in the client master),
    /// offering only the paper-baseline suite.
    pub fn new(path: SelfCertifyingPath, ephemeral: RabinPrivateKey) -> Self {
        Self::with_suites(path, ephemeral, &[SuiteId::Arc4Sha1])
    }

    /// Starts a negotiation offering `suites` in preference order.
    pub fn with_suites(
        path: SelfCertifyingPath,
        ephemeral: RabinPrivateKey,
        suites: &[SuiteId],
    ) -> Self {
        let mut suites = suites.to_vec();
        if !suites.contains(&SuiteId::Arc4Sha1) {
            suites.push(SuiteId::Arc4Sha1);
        }
        KeyNegClient {
            path,
            ephemeral,
            suites,
        }
    }

    /// Step 1: the hello message.
    pub fn hello(&self) -> KeyNegRequest {
        KeyNegRequest {
            location: self.path.location.clone(),
            host_id: self.path.host_id,
        }
    }

    /// The extensions-string token carrying this client's suite offer
    /// (empty for a baseline-only offer). Must be sent verbatim in the
    /// hello: it is what both sides bind into key derivation.
    pub fn offer_extensions(&self) -> String {
        offer_extensions(&self.suites)
    }

    /// Step 2→3: verify the server key against the HostID (the
    /// self-certification step) and produce the encrypted client halves.
    pub fn on_server_reply<R: RandomSource>(
        self,
        reply: &KeyNegServerReply,
        rng: &mut R,
    ) -> Result<(KeyNegClientAwaitingHalves, KeyNegClientKeys), KeyNegError> {
        let key_bytes = match reply {
            KeyNegServerReply::ServerKey(k) => k,
            KeyNegServerReply::Revoked(cert) => {
                // Only honor certificates that actually revoke this path.
                if cert.revokes(&self.path) {
                    return Err(KeyNegError::Revoked(Box::new(cert.clone())));
                }
                return Err(KeyNegError::HostIdMismatch);
            }
        };
        let server_key = RabinPublicKey::from_bytes(key_bytes)?;
        if !self.path.certifies(&server_key) {
            return Err(KeyNegError::HostIdMismatch);
        }
        let kc = KeyHalves::random(rng);
        let encrypted = server_key.encrypt(&kc.to_xdr_bytes(), rng)?;
        let msg = KeyNegClientKeys {
            client_key: self.ephemeral.public().to_bytes(),
            encrypted_halves: encrypted,
        };
        Ok((
            KeyNegClientAwaitingHalves {
                server_key,
                ephemeral: self.ephemeral,
                kc,
                offer_ext: offer_extensions(&self.suites),
                suites: self.suites,
            },
            msg,
        ))
    }
}

impl std::fmt::Debug for KeyNegClientAwaitingHalves {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyNegClientAwaitingHalves {{ .. }}")
    }
}

impl KeyNegClientAwaitingHalves {
    /// Step 4: verify the server's suite choice against our offer,
    /// decrypt its key halves, derive the session keys, and check the
    /// confirmation MAC. Any mismatch — a choice we never offered, or a
    /// confirm computed over a different transcript — is a downgrade
    /// attack and aborts the handshake.
    pub fn on_server_halves(
        self,
        msg: &KeyNegServerHalves,
    ) -> Result<(SessionKeys, SuiteId), KeyNegError> {
        let chosen = SuiteId::from_wire(msg.chosen)
            .ok_or_else(|| KeyNegError::Downgrade(format!("unknown suite id {}", msg.chosen)))?;
        if !self.suites.contains(&chosen) {
            return Err(KeyNegError::Downgrade(format!(
                "server chose {chosen}, which we never offered"
            )));
        }
        let ks = KeyHalves::from_xdr_bytes(&self.ephemeral.decrypt(&msg.encrypted_halves)?)?;
        let transcript = suite_transcript(&self.offer_ext, chosen);
        let keys = SessionKeys::derive(
            &self.server_key,
            self.ephemeral.public(),
            &self.kc,
            &ks,
            &transcript,
        );
        if suite_confirm(&keys, &transcript) != msg.confirm {
            return Err(KeyNegError::Downgrade(
                "confirmation MAC mismatch: the offer the server saw is not the offer we sent"
                    .into(),
            ));
        }
        Ok((keys, chosen))
    }
}

/// The server's half of the negotiation: processes step 3 (given the
/// offer string from the client's hello, verbatim) and produces step 4
/// plus its own session keys and chosen suite. The returned message's
/// `ticket` is empty; a server that issues resumption tickets fills it
/// in before replying.
pub fn server_process_client_keys<R: RandomSource>(
    server_key: &RabinPrivateKey,
    msg: &KeyNegClientKeys,
    offer_ext: &str,
    rng: &mut R,
) -> Result<(SessionKeys, SuiteId, KeyNegServerHalves), KeyNegError> {
    let client_key = RabinPublicKey::from_bytes(&msg.client_key)?;
    let kc = KeyHalves::from_xdr_bytes(&server_key.decrypt(&msg.encrypted_halves)?)?;
    let ks = KeyHalves::random(rng);
    let encrypted = client_key.encrypt(&ks.to_xdr_bytes(), rng)?;
    let chosen = choose_suite(&offered_suites(offer_ext));
    let transcript = suite_transcript(offer_ext, chosen);
    let keys = SessionKeys::derive(server_key.public(), &client_key, &kc, &ks, &transcript);
    let confirm = suite_confirm(&keys, &transcript);
    Ok((
        keys,
        chosen,
        KeyNegServerHalves {
            encrypted_halves: encrypted,
            chosen: chosen.wire_id(),
            confirm,
            ticket: Vec::new(),
        },
    ))
}

/// The resumption secret both sides hold after a completed negotiation.
/// Derived from (not equal to) the session keys; it is what a ticket
/// seals and what fresh keys are derived from on resume.
pub fn resume_secret(keys: &SessionKeys) -> [u8; DIGEST_LEN] {
    sha1_concat(&[b"ResumeSecret", &keys.kcs, &keys.ksc])
}

/// Derives fresh session keys for a ticket-resumed session. Both nonces
/// are fresh per resume, so a replayed Resume message yields keys the
/// replaying party cannot use; the suite is bound in so a resume cannot
/// silently change suites.
pub fn resume_session(
    secret: &[u8; DIGEST_LEN],
    suite: SuiteId,
    client_nonce: &[u8; RESUME_NONCE_LEN],
    server_nonce: &[u8; RESUME_NONCE_LEN],
) -> SessionKeys {
    let suite_id = suite.wire_id().to_be_bytes();
    let kcs = sha1_concat(&[b"Resume-KCS", secret, &suite_id, client_nonce, server_nonce]);
    let ksc = sha1_concat(&[b"Resume-KSC", secret, &suite_id, client_nonce, server_nonce]);
    let session_id = sha1_concat(&[b"SessionInfo", &ksc, &kcs]);
    SessionKeys {
        kcs,
        ksc,
        session_id,
    }
}

/// The server's proof-of-possession in ResumeOk: only a server that
/// could unseal the ticket (and therefore knows the secret) can compute
/// the resumed keys.
pub fn resume_confirm(keys: &SessionKeys) -> [u8; DIGEST_LEN] {
    sha1_concat(&[b"ResumeConfirm", &keys.kcs, &keys.ksc])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;
    use std::sync::OnceLock;

    /// Shared test keys (generation is the slow part).
    fn server_key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0x5EED);
            generate_keypair(768, &mut rng)
        })
    }

    fn ephemeral_key() -> RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0xE4E);
            generate_keypair(768, &mut rng)
        })
        .clone()
    }

    /// Runs a full negotiation with the given client suite offer,
    /// returning both sides' keys and chosen suites.
    fn run_negotiation_with(
        suites: &[SuiteId],
        cseed: u64,
        sseed: u64,
    ) -> ((SessionKeys, SuiteId), (SessionKeys, SuiteId)) {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(cseed);
        let mut srng = XorShiftSource::new(sseed);

        let client = KeyNegClient::with_suites(path, ephemeral_key(), suites);
        let _hello = client.hello();
        let offer = client.offer_extensions();
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (server_keys, chosen, msg4) =
            server_process_client_keys(skey, &msg3, &offer, &mut srng).unwrap();
        let (client_keys, client_chosen) = awaiting.on_server_halves(&msg4).unwrap();
        ((client_keys, client_chosen), (server_keys, chosen))
    }

    fn run_negotiation() -> (SessionKeys, SessionKeys) {
        let ((c, _), (s, _)) = run_negotiation_with(&[SuiteId::Arc4Sha1], 11, 22);
        (c, s)
    }

    #[test]
    fn both_sides_agree() {
        let (c, s) = run_negotiation();
        assert_eq!(c, s);
        assert_ne!(c.kcs, c.ksc, "directions must use distinct keys");
    }

    #[test]
    fn sessions_are_unique() {
        let (a, _) = run_negotiation();
        // Different randomness yields different keys.
        let ((b, _), _) = run_negotiation_with(&[SuiteId::Arc4Sha1], 77, 88);
        assert_ne!(a.session_id, b.session_id);
    }

    #[test]
    fn negotiation_picks_the_offered_fast_suite() {
        let ((c, c_suite), (s, s_suite)) =
            run_negotiation_with(&[SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1], 31, 32);
        assert_eq!(c, s);
        assert_eq!(c_suite, SuiteId::ChaCha20Poly1305);
        assert_eq!(s_suite, SuiteId::ChaCha20Poly1305);
    }

    #[test]
    fn legacy_and_negotiated_offers_derive_distinct_keys() {
        // The offer string is bound into derivation, so the same
        // randomness with a different offer yields different keys.
        let ((a, _), _) = run_negotiation_with(&[SuiteId::Arc4Sha1], 11, 22);
        let ((b, _), _) =
            run_negotiation_with(&[SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1], 11, 22);
        assert_ne!(a.kcs, b.kcs);
        assert_ne!(a.session_id, b.session_id);
    }

    #[test]
    fn offer_extension_helpers_roundtrip() {
        assert_eq!(offer_extensions(&[SuiteId::Arc4Sha1]), "");
        let offer = offer_extensions(&[SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1]);
        assert_eq!(offer, "suites=chacha20-poly1305,arc4-sha1");
        assert_eq!(
            offered_suites(&offer),
            vec![SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1]
        );
        assert_eq!(offered_suites(""), vec![SuiteId::Arc4Sha1]);
        assert_eq!(offered_suites("newcache"), vec![SuiteId::Arc4Sha1]);
        // Unknown labels are skipped; the baseline is always present.
        assert_eq!(
            offered_suites("suites=quantum-foo,chacha20-poly1305"),
            vec![SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1]
        );
        // Stripping leaves only what dispatch rules expect.
        assert_eq!(strip_suites_ext(&format!("newcache {offer}")), "newcache");
        assert_eq!(strip_suites_ext(&offer), "");
        assert_eq!(strip_suites_ext("newcache"), "newcache");
    }

    #[test]
    fn stripped_offer_fails_confirmation() {
        // A MITM strips the client's suite offer before it reaches the
        // server (hoping to force the weaker baseline). The server
        // processes an empty offer; its confirm is computed over a
        // different transcript, so the client aborts.
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(41);
        let mut srng = XorShiftSource::new(42);
        let client = KeyNegClient::with_suites(
            path,
            ephemeral_key(),
            &[SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1],
        );
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        // The attack: offer stripped to "" in flight.
        let (_, chosen, msg4) = server_process_client_keys(skey, &msg3, "", &mut srng).unwrap();
        assert_eq!(chosen, SuiteId::Arc4Sha1, "server fell back to baseline");
        let err = awaiting.on_server_halves(&msg4).unwrap_err();
        assert!(matches!(err, KeyNegError::Downgrade(_)), "{err:?}");
    }

    #[test]
    fn forged_suite_choice_rejected() {
        // A MITM rewrites the server's choice without being able to fix
        // the confirm MAC (it does not know the session keys).
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(51);
        let mut srng = XorShiftSource::new(52);
        let client = KeyNegClient::with_suites(
            path,
            ephemeral_key(),
            &[SuiteId::ChaCha20Poly1305, SuiteId::Arc4Sha1],
        );
        let offer = client.offer_extensions();
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (_, _, mut msg4) = server_process_client_keys(skey, &msg3, &offer, &mut srng).unwrap();
        msg4.chosen = SuiteId::Arc4Sha1.wire_id();
        let err = awaiting.on_server_halves(&msg4).unwrap_err();
        assert!(matches!(err, KeyNegError::Downgrade(_)), "{err:?}");
    }

    #[test]
    fn resume_derivations_agree_and_bind_everything() {
        let (keys, _) = run_negotiation();
        let secret = resume_secret(&keys);
        assert_ne!(&secret[..], &keys.kcs[..]);
        let cn = [1u8; RESUME_NONCE_LEN];
        let sn = [2u8; RESUME_NONCE_LEN];
        let a = resume_session(&secret, SuiteId::ChaCha20Poly1305, &cn, &sn);
        let b = resume_session(&secret, SuiteId::ChaCha20Poly1305, &cn, &sn);
        assert_eq!(a, b, "both sides derive the same resumed keys");
        assert_ne!(a.kcs, keys.kcs, "resumed keys are fresh");
        // Every input changes the result.
        assert_ne!(a, resume_session(&secret, SuiteId::Arc4Sha1, &cn, &sn));
        assert_ne!(
            a,
            resume_session(&secret, SuiteId::ChaCha20Poly1305, &sn, &cn)
        );
        let mut other = secret;
        other[0] ^= 1;
        assert_ne!(
            a,
            resume_session(&other, SuiteId::ChaCha20Poly1305, &cn, &sn)
        );
        assert_ne!(resume_confirm(&a), resume_confirm(&keys));
    }

    #[test]
    fn mitm_key_substitution_detected() {
        // An attacker presents its own key for the same Location.
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut rng = XorShiftSource::new(1);
        let mut attacker_rng = XorShiftSource::new(666);
        let attacker = generate_keypair(768, &mut attacker_rng);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(attacker.public().to_bytes());
        let err = client.on_server_reply(&reply, &mut rng).unwrap_err();
        assert_eq!(err, KeyNegError::HostIdMismatch);
    }

    #[test]
    fn tampered_halves_rejected() {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(2);
        let mut srng = XorShiftSource::new(3);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (_, _, mut msg4) = server_process_client_keys(skey, &msg3, "", &mut srng).unwrap();
        msg4.encrypted_halves[5] ^= 1;
        assert!(matches!(
            awaiting.on_server_halves(&msg4).unwrap_err(),
            KeyNegError::Crypto(_)
        ));
    }

    #[test]
    fn tampered_client_message_rejected_by_server() {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(4);
        let mut srng = XorShiftSource::new(5);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (_awaiting, mut msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        msg3.encrypted_halves[7] ^= 1;
        assert!(server_process_client_keys(skey, &msg3, "", &mut srng).is_err());
    }

    #[test]
    fn messages_roundtrip_xdr() {
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("x.example.org", skey.public());
        let req = KeyNegRequest {
            location: path.location.clone(),
            host_id: path.host_id,
        };
        assert_eq!(KeyNegRequest::from_xdr(&req.to_xdr()).unwrap(), req);
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        assert_eq!(KeyNegServerReply::from_xdr(&reply.to_xdr()).unwrap(), reply);
        let msg = KeyNegClientKeys {
            client_key: vec![1, 2, 3],
            encrypted_halves: vec![4, 5],
        };
        assert_eq!(KeyNegClientKeys::from_xdr(&msg.to_xdr()).unwrap(), msg);
        let halves = KeyNegServerHalves {
            encrypted_halves: vec![6, 7, 8],
            chosen: SuiteId::ChaCha20Poly1305.wire_id(),
            confirm: [0xAB; DIGEST_LEN],
            ticket: vec![9; 40],
        };
        assert_eq!(
            KeyNegServerHalves::from_xdr(&halves.to_xdr()).unwrap(),
            halves
        );
    }

    #[test]
    fn forward_secrecy_structure() {
        // The shared secrets are the four key halves; k_C halves are
        // encrypted to K_S, k_S halves to the *ephemeral* K_C. With only
        // K_S^-1 (post-hoc compromise) an attacker recovers k_C1/k_C2 but
        // not k_S1/k_S2, hence neither session key. We verify the k_S
        // message is bound to the ephemeral key by decrypting it with the
        // wrong key and failing.
        let skey = server_key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", skey.public());
        let mut crng = XorShiftSource::new(6);
        let mut srng = XorShiftSource::new(7);
        let client = KeyNegClient::new(path, ephemeral_key());
        let reply = KeyNegServerReply::ServerKey(skey.public().to_bytes());
        let (_awaiting, msg3) = client.on_server_reply(&reply, &mut crng).unwrap();
        let (_, _, msg4) = server_process_client_keys(skey, &msg3, "", &mut srng).unwrap();
        // The server's long-lived key cannot decrypt message 4.
        assert!(skey.decrypt(&msg4.encrypted_halves).is_err());
    }
}
