//! SFS wire protocols.
//!
//! This crate implements everything §2 and §3.1 of the paper define:
//!
//! - [`pathname`]: self-certifying pathnames `/sfs/Location:HostID`, the
//!   base-32 encoding, and HostID computation (§2.2);
//! - [`keyneg`]: the key-negotiation protocol of Figure 3, yielding
//!   per-direction session keys with forward secrecy (§3.1.1);
//! - [`channel`]: the secure channel — ARC4 encryption with a SHA-1 MAC
//!   re-keyed per message from the cipher stream (§3.1.3);
//! - [`userauth`]: the user-authentication protocol of Figure 4 —
//!   SessionID/AuthInfo/AuthID, signed requests, sequence-number windows
//!   (§3.1.2);
//! - [`revoke`]: key revocation certificates and forwarding pointers
//!   (§2.6);
//! - [`readonly`]: the public read-only dialect that "proves the contents
//!   of file systems with digital signatures" so replicas can live on
//!   untrusted machines (§2.4, §3.2).

pub mod channel;
pub mod keyneg;
pub mod pathname;
pub mod readonly;
pub mod repl;
pub mod revoke;
pub mod userauth;

pub use channel::{ChannelError, SecureChannelEnd, SuiteId};
pub use keyneg::{KeyNegClient, KeyNegServerHalves, KeyNegServerReply, SessionKeys};
pub use pathname::{HostId, PathError, SelfCertifyingPath, SFS_ROOT};
pub use readonly::{RoDatabase, RoNode, SignedRoot};
pub use repl::{ReplOp, ReplRecord};
pub use revoke::{ForwardingPointer, RevocationCert};
pub use userauth::{AuthInfo, AuthMsg, SeqWindow, AUTHNO_ANONYMOUS};
