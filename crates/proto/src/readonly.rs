//! The public read-only dialect (§2.4, §3.2).
//!
//! "We implemented a dialect of the SFS protocol that allows servers to
//! prove the contents of public, read-only file systems using precomputed
//! digital signatures. This dialect makes the amount of cryptographic
//! computation required from read-only servers proportional to the file
//! system's size and rate of change, rather than to the number of clients
//! connecting. It also frees read-only servers from the need to keep any
//! on-line copies of their private keys, which in turn allows read-only
//! file systems to be replicated on untrusted machines."
//!
//! RECONSTRUCTION: the paper does not give the data format. We use a
//! content-hash tree — each node is addressed by the SHA-1 of its
//! serialization, directories reference children by digest, and the root
//! digest is signed once, offline. This matches the published follow-up
//! (SFSRO, OSDI 2000) in structure. A replica can serve blocks without any
//! key; clients verify each block against the digest that named it and the
//! root against the server's public key.

use std::collections::BTreeMap;

use sfs_crypto::rabin::{RabinPrivateKey, RabinPublicKey, RabinSignature};
use sfs_crypto::sha1::{sha1, DIGEST_LEN};
use sfs_vfs::{Credentials, FileType, Ino, Vfs};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

/// A content digest naming a node.
pub type Digest = [u8; DIGEST_LEN];

/// A node in the read-only file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoNode {
    /// A regular file's contents.
    File(Vec<u8>),
    /// A directory: name → (type, child digest), sorted by name.
    Dir(Vec<(String, RoEntryType, Digest)>),
    /// A symbolic link target.
    Symlink(String),
}

/// Entry types in a read-only directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoEntryType {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symlink.
    Symlink,
}

impl Xdr for RoNode {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            RoNode::File(data) => {
                enc.put_u32(0);
                enc.put_opaque(data);
            }
            RoNode::Dir(entries) => {
                enc.put_u32(1);
                enc.put_u32(entries.len() as u32);
                for (name, ty, digest) in entries {
                    enc.put_string(name);
                    enc.put_u32(match ty {
                        RoEntryType::File => 0,
                        RoEntryType::Dir => 1,
                        RoEntryType::Symlink => 2,
                    });
                    enc.put_opaque_fixed(digest);
                }
            }
            RoNode::Symlink(target) => {
                enc.put_u32(2);
                enc.put_string(target);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(RoNode::File(dec.get_opaque()?)),
            1 => {
                let n = dec.get_u32()?;
                let mut entries = Vec::new();
                for _ in 0..n {
                    let name = dec.get_string()?;
                    let ty = match dec.get_u32()? {
                        0 => RoEntryType::File,
                        1 => RoEntryType::Dir,
                        2 => RoEntryType::Symlink,
                        other => return Err(XdrError::BadDiscriminant(other)),
                    };
                    let digest: Digest = dec
                        .get_opaque_fixed(DIGEST_LEN)?
                        .try_into()
                        .expect("length checked");
                    entries.push((name, ty, digest));
                }
                Ok(RoNode::Dir(entries))
            }
            2 => Ok(RoNode::Symlink(dec.get_string()?)),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

impl RoNode {
    /// The digest addressing this node.
    pub fn digest(&self) -> Digest {
        sha1(&self.to_xdr())
    }
}

/// The offline-signed root of a read-only file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedRoot {
    /// Digest of the root directory node.
    pub root_digest: Digest,
    /// Version counter (monotonically increasing; prevents rollback to an
    /// older snapshot by a malicious replica when clients remember the
    /// highest version seen).
    pub version: u64,
    /// Signature by the file system's private key.
    pub signature: Vec<u8>,
}

fn root_body(root_digest: &Digest, version: u64) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    enc.put_string("RoSignedRoot");
    enc.put_opaque_fixed(root_digest);
    enc.put_u64(version);
    enc.into_bytes()
}

impl SignedRoot {
    /// Signs a root digest. This is the only private-key operation in the
    /// dialect, performed offline by the publisher.
    pub fn sign(key: &RabinPrivateKey, root_digest: Digest, version: u64) -> Self {
        let sig = key.sign(&root_body(&root_digest, version));
        SignedRoot {
            root_digest,
            version,
            signature: sig.to_bytes(key.public().len()),
        }
    }

    /// Verifies against the publisher's public key (which the client
    /// already certified via the HostID).
    pub fn verify(&self, key: &RabinPublicKey) -> bool {
        let Ok(sig) = RabinSignature::from_bytes(&self.signature) else {
            return false;
        };
        key.verify(&root_body(&self.root_digest, self.version), &sig)
    }
}

impl Xdr for SignedRoot {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque_fixed(&self.root_digest);
        enc.put_u64(self.version);
        enc.put_opaque(&self.signature);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(SignedRoot {
            root_digest: dec
                .get_opaque_fixed(DIGEST_LEN)?
                .try_into()
                .expect("length checked"),
            version: dec.get_u64()?,
            signature: dec.get_opaque()?,
        })
    }
}

/// Errors from read-only database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoError {
    /// No node with the requested digest.
    NotFound,
    /// The served block does not hash to the requested digest (a lying
    /// replica).
    DigestMismatch,
    /// The signed root failed verification.
    BadSignature,
    /// Structural decode failure.
    Xdr(XdrError),
}

impl std::fmt::Display for RoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoError::NotFound => write!(f, "no such block"),
            RoError::DigestMismatch => write!(f, "block does not match digest"),
            RoError::BadSignature => write!(f, "signed root verification failed"),
            RoError::Xdr(e) => write!(f, "read-only decode failure: {e}"),
        }
    }
}

impl std::error::Error for RoError {}

/// A published read-only file system: the signed root plus a
/// content-addressed block store. Replicas hold exactly this data and no
/// keys.
#[derive(Debug, Clone)]
pub struct RoDatabase {
    /// The signed root.
    pub root: SignedRoot,
    /// Content-addressed blocks.
    blocks: BTreeMap<Digest, Vec<u8>>,
}

impl RoDatabase {
    /// Publishes a snapshot of `vfs` starting at its root directory,
    /// signing with `key` (done offline by the owner).
    pub fn publish(vfs: &Vfs, key: &RabinPrivateKey, version: u64) -> Self {
        let mut blocks = BTreeMap::new();
        let creds = Credentials::root();
        let root_digest = Self::publish_tree(vfs, &creds, vfs.root(), &mut blocks);
        let root = SignedRoot::sign(key, root_digest, version);
        RoDatabase { root, blocks }
    }

    fn publish_tree(
        vfs: &Vfs,
        creds: &Credentials,
        ino: Ino,
        blocks: &mut BTreeMap<Digest, Vec<u8>>,
    ) -> Digest {
        let attr = vfs.getattr(ino).expect("live inode");
        let node = match attr.ftype {
            FileType::Regular => RoNode::File(vfs.read_file(creds, ino).expect("readable")),
            FileType::Symlink => RoNode::Symlink(vfs.readlink(ino).expect("symlink")),
            FileType::Directory => {
                let (entries, _) = vfs.readdir(creds, ino, None, usize::MAX).expect("dir");
                let mut out = Vec::with_capacity(entries.len());
                for (name, child) in entries {
                    let cattr = vfs.getattr(child).expect("live child");
                    let ty = match cattr.ftype {
                        FileType::Regular => RoEntryType::File,
                        FileType::Directory => RoEntryType::Dir,
                        FileType::Symlink => RoEntryType::Symlink,
                    };
                    let digest = Self::publish_tree(vfs, creds, child, blocks);
                    out.push((name, ty, digest));
                }
                RoNode::Dir(out)
            }
        };
        let bytes = node.to_xdr();
        let digest = sha1(&bytes);
        blocks.insert(digest, bytes);
        digest
    }

    /// Serves a block by digest (what an untrusted replica does; no
    /// crypto involved — "the amount of cryptographic computation required
    /// from read-only servers \[is\] proportional to the file system's size
    /// and rate of change, rather than to the number of clients").
    pub fn fetch_raw(&self, digest: &Digest) -> Result<&[u8], RoError> {
        self.blocks
            .get(digest)
            .map(|v| v.as_slice())
            .ok_or(RoError::NotFound)
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.blocks.values().map(|v| v.len()).sum()
    }

    /// Serializes the whole database — signed root plus every
    /// content-addressed block — into the distribution bundle an
    /// `sfsrodb`-style publisher ships to its replicas. The bundle
    /// contains no key material of any kind: possessing it lets a
    /// machine *serve* the file system, never alter it undetectably.
    pub fn export(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        self.root.encode(&mut enc);
        enc.put_u32(self.blocks.len() as u32);
        for (digest, block) in &self.blocks {
            enc.put_opaque_fixed(digest);
            enc.put_opaque(block);
        }
        enc.into_bytes()
    }

    /// Rebuilds a database from a distribution bundle, re-hashing every
    /// block against the digest that names it — a replica refuses a
    /// corrupted bundle up front rather than serving blocks clients
    /// would reject one by one.
    pub fn import(bytes: &[u8]) -> Result<Self, RoError> {
        let mut dec = XdrDecoder::new(bytes);
        let root = SignedRoot::decode(&mut dec).map_err(RoError::Xdr)?;
        let n = dec.get_u32().map_err(RoError::Xdr)?;
        let mut blocks = BTreeMap::new();
        for _ in 0..n {
            let digest: Digest = dec
                .get_opaque_fixed(DIGEST_LEN)
                .map_err(RoError::Xdr)?
                .try_into()
                .expect("length checked");
            let block = dec.get_opaque().map_err(RoError::Xdr)?;
            if sha1(&block) != digest {
                return Err(RoError::DigestMismatch);
            }
            blocks.insert(digest, block);
        }
        Ok(RoDatabase { root, blocks })
    }

    /// Corrupts a block in place — test hook standing in for a malicious
    /// replica.
    pub fn tamper_with_block(&mut self, digest: &Digest) -> bool {
        if let Some(block) = self.blocks.get_mut(digest) {
            if let Some(b) = block.last_mut() {
                *b ^= 1;
                return true;
            }
        }
        false
    }
}

/// Client-side verified fetch: checks the block hashes to the digest that
/// named it before decoding.
pub fn verified_fetch(db: &RoDatabase, digest: &Digest) -> Result<RoNode, RoError> {
    let raw = db.fetch_raw(digest)?;
    if sha1(raw) != *digest {
        return Err(RoError::DigestMismatch);
    }
    RoNode::from_xdr(raw).map_err(RoError::Xdr)
}

/// Client-side verified root: checks the signature before trusting the
/// root digest.
pub fn verified_root(db: &RoDatabase, key: &RabinPublicKey) -> Result<Digest, RoError> {
    if !db.root.verify(key) {
        return Err(RoError::BadSignature);
    }
    Ok(db.root.root_digest)
}

/// Resolves a `/`-separated path through a verified read-only tree.
pub fn resolve_path(db: &RoDatabase, root: Digest, path: &str) -> Result<RoNode, RoError> {
    let mut node = verified_fetch(db, &root)?;
    for part in path.split('/').filter(|p| !p.is_empty()) {
        let RoNode::Dir(entries) = &node else {
            return Err(RoError::NotFound);
        };
        let (_, _, digest) = entries
            .iter()
            .find(|(name, _, _)| name == part)
            .ok_or(RoError::NotFound)?;
        node = verified_fetch(db, digest)?;
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;
    use sfs_sim::SimClock;
    use std::sync::OnceLock;

    fn key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0x20);
            generate_keypair(512, &mut rng)
        })
    }

    fn sample_fs() -> Vfs {
        let vfs = Vfs::new(3, SimClock::new());
        let creds = Credentials::root();
        let root = vfs.root();
        vfs.write_file(&creds, root, "README", b"certification authority")
            .unwrap();
        let sub = vfs.mkdir_p("/links").unwrap();
        vfs.symlink(&creds, sub, "mit", "/sfs/sfs.lcs.mit.edu:abc...")
            .unwrap();
        vfs.write_file(&creds, sub, "data.bin", &[0u8; 1000])
            .unwrap();
        vfs
    }

    #[test]
    fn publish_and_resolve() {
        let db = RoDatabase::publish(&sample_fs(), key(), 1);
        let root = verified_root(&db, key().public()).unwrap();
        match resolve_path(&db, root, "/README").unwrap() {
            RoNode::File(data) => assert_eq!(data, b"certification authority"),
            other => panic!("{other:?}"),
        }
        match resolve_path(&db, root, "/links/mit").unwrap() {
            RoNode::Symlink(t) => assert!(t.starts_with("/sfs/")),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            resolve_path(&db, root, "/missing").unwrap_err(),
            RoError::NotFound
        );
    }

    #[test]
    fn signature_rejects_wrong_key() {
        let db = RoDatabase::publish(&sample_fs(), key(), 1);
        let mut rng = XorShiftSource::new(0x99);
        let other = generate_keypair(512, &mut rng);
        assert_eq!(
            verified_root(&db, other.public()).unwrap_err(),
            RoError::BadSignature
        );
    }

    #[test]
    fn tampered_block_detected() {
        let mut db = RoDatabase::publish(&sample_fs(), key(), 1);
        let root = verified_root(&db, key().public()).unwrap();
        // Find the README digest and corrupt its block.
        let RoNode::Dir(entries) = verified_fetch(&db, &root).unwrap() else {
            panic!("root must be a dir");
        };
        let (_, _, readme) = entries.iter().find(|(n, _, _)| n == "README").unwrap();
        assert!(db.tamper_with_block(readme));
        assert_eq!(
            verified_fetch(&db, readme).unwrap_err(),
            RoError::DigestMismatch
        );
    }

    #[test]
    fn rollback_attack_visible_via_version() {
        let fs = sample_fs();
        let db_v1 = RoDatabase::publish(&fs, key(), 1);
        // Publisher updates the file system.
        fs.write_file(&Credentials::root(), fs.root(), "README", b"updated")
            .unwrap();
        let db_v2 = RoDatabase::publish(&fs, key(), 2);
        // Both roots verify (old signatures stay valid) but versions order
        // them; a client remembering v2 rejects v1.
        assert!(db_v1.root.verify(key().public()));
        assert!(db_v2.root.verify(key().public()));
        assert!(db_v2.root.version > db_v1.root.version);
        assert_ne!(db_v1.root.root_digest, db_v2.root.root_digest);
    }

    #[test]
    fn identical_content_deduplicates() {
        let vfs = Vfs::new(3, SimClock::new());
        let creds = Credentials::root();
        vfs.write_file(&creds, vfs.root(), "a", b"same bytes")
            .unwrap();
        vfs.write_file(&creds, vfs.root(), "b", b"same bytes")
            .unwrap();
        let db = RoDatabase::publish(&vfs, key(), 1);
        // Two files, one content block (+ the root dir block).
        assert_eq!(db.block_count(), 2);
    }

    #[test]
    fn replica_serving_requires_no_key() {
        // A "replica" is just the database value: cloning it and serving
        // blocks involves no private key; the client still verifies.
        let db = RoDatabase::publish(&sample_fs(), key(), 1);
        let replica = db.clone();
        let root = verified_root(&replica, key().public()).unwrap();
        assert!(resolve_path(&replica, root, "/README").is_ok());
    }

    #[test]
    fn export_import_roundtrip_serves_identically() {
        let db = RoDatabase::publish(&sample_fs(), key(), 7);
        let bundle = db.export();
        let replica = RoDatabase::import(&bundle).unwrap();
        assert_eq!(replica.root, db.root);
        assert_eq!(replica.block_count(), db.block_count());
        let root = verified_root(&replica, key().public()).unwrap();
        match resolve_path(&replica, root, "/README").unwrap() {
            RoNode::File(data) => assert_eq!(data, b"certification authority"),
            other => panic!("{other:?}"),
        }
        // The bundle is deterministic: re-exporting the replica yields
        // byte-identical distribution media.
        assert_eq!(replica.export(), bundle);
    }

    #[test]
    fn import_rejects_corrupted_bundle() {
        let mut db = RoDatabase::publish(&sample_fs(), key(), 1);
        // A corrupted root-directory block no longer hashes to the digest
        // that names it in the bundle.
        let root_digest = db.root.root_digest;
        assert!(db.tamper_with_block(&root_digest));
        assert_eq!(
            RoDatabase::import(&db.export()).unwrap_err(),
            RoError::DigestMismatch
        );
        // Truncation is a structural failure.
        assert!(matches!(
            RoDatabase::import(&db.export()[..20]).unwrap_err(),
            RoError::Xdr(_)
        ));
    }

    #[test]
    fn node_xdr_roundtrip() {
        let nodes = vec![
            RoNode::File(b"x".to_vec()),
            RoNode::Symlink("/sfs/a:b".into()),
            RoNode::Dir(vec![
                ("a".into(), RoEntryType::File, [1u8; 20]),
                ("b".into(), RoEntryType::Dir, [2u8; 20]),
                ("c".into(), RoEntryType::Symlink, [3u8; 20]),
            ]),
        ];
        for n in nodes {
            assert_eq!(RoNode::from_xdr(&n.to_xdr()).unwrap(), n);
        }
    }
}
