//! The SFS secure channel (§2.1.2, §3.1.3).
//!
//! "Clients and read-write servers always communicate over a low-level
//! secure channel that guarantees secrecy, data integrity, freshness
//! (including replay prevention), and forward secrecy."
//!
//! Mechanics per §3.1.3: each direction runs one long-lived ARC4 stream
//! keyed by its 20-byte session key. For every message, 32 bytes are pulled
//! from the stream to key a fresh SHA-1 MAC (those bytes are *not* used for
//! encryption); the MAC covers the length and plaintext; then length,
//! message, and MAC are all encrypted with the stream.
//!
//! Freshness/replay protection falls out of the stream position: a
//! replayed, dropped, or reordered ciphertext decrypts under the wrong part
//! of the key stream and fails the MAC, which poisons the channel.
//!
//! The paper separates key management from the transport cipher (§3), so
//! the channel is cipher-agile: both ends agree on a [`SuiteId`] during
//! key negotiation and construct their ends with
//! [`SecureChannelEnd::client_with_suite`] /
//! [`SecureChannelEnd::server_with_suite`]. [`SuiteId::Arc4Sha1`] is the
//! paper-parity baseline above; [`SuiteId::ChaCha20Poly1305`] replaces
//! the stream-position discipline with a per-direction message counter
//! used as the AEAD nonce — a replayed, dropped, or reordered frame is
//! authenticated under the wrong nonce and fails the tag, poisoning the
//! channel with exactly the same semantics.

use sfs_crypto::arc4::Arc4;
use sfs_crypto::chachapoly;
use sfs_crypto::mac::{SfsMac, MAC_KEY_LEN, MAC_LEN};
use sfs_crypto::sha1::sha1_concat;
use sfs_telemetry::Telemetry;

use crate::keyneg::SessionKeys;

/// Errors from the secure channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// MAC verification failed: the message was tampered with, replayed,
    /// or received out of order.
    MacFailure,
    /// The frame is structurally too short.
    Truncated,
    /// The channel was poisoned by an earlier failure and refuses further
    /// traffic.
    Poisoned,
    /// Claimed length exceeds the frame cap.
    TooLong,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::MacFailure => write!(f, "secure channel MAC failure"),
            ChannelError::Truncated => write!(f, "secure channel frame truncated"),
            ChannelError::Poisoned => write!(f, "secure channel poisoned"),
            ChannelError::TooLong => write!(f, "secure channel frame too long"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Cap on a single message (16 MiB), bounding hostile length fields.
pub const MAX_MESSAGE: usize = 1 << 24;

/// Bytes reserved at the start of a frame for the (encrypted) length
/// word. [`SecureChannelEnd::seal_into`] requires this many reserved
/// bytes between `frame_start` and the plaintext.
pub const FRAME_HEADER_LEN: usize = 4;

/// Bytes appended to every frame (the encrypted MAC) under the baseline
/// suite. Suite-aware callers should use [`SuiteId::trailer_len`].
pub const FRAME_TRAILER_LEN: usize = MAC_LEN;

/// A negotiable cipher suite for the secure channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteId {
    /// The paper's §3.1.3 construction: per-direction ARC4 streams with a
    /// per-message SHA-1 MAC keyed from the stream. Always offered; keeps
    /// byte-level parity with the pre-negotiation wire format.
    Arc4Sha1,
    /// ChaCha20-Poly1305 (RFC 8439) per direction, nonce = message
    /// counter. The negotiated fast path.
    ChaCha20Poly1305,
}

impl SuiteId {
    /// Stable wire identifier (bound into the suite-confirmation MAC).
    pub const fn wire_id(self) -> u32 {
        match self {
            SuiteId::Arc4Sha1 => 1,
            SuiteId::ChaCha20Poly1305 => 2,
        }
    }

    /// Inverse of [`Self::wire_id`].
    pub fn from_wire(id: u32) -> Option<SuiteId> {
        match id {
            1 => Some(SuiteId::Arc4Sha1),
            2 => Some(SuiteId::ChaCha20Poly1305),
            _ => None,
        }
    }

    /// The label used in hello-extension offers.
    pub const fn label(self) -> &'static str {
        match self {
            SuiteId::Arc4Sha1 => "arc4-sha1",
            SuiteId::ChaCha20Poly1305 => "chacha20-poly1305",
        }
    }

    /// Inverse of [`Self::label`].
    pub fn parse(label: &str) -> Option<SuiteId> {
        match label {
            "arc4-sha1" => Some(SuiteId::Arc4Sha1),
            "chacha20-poly1305" => Some(SuiteId::ChaCha20Poly1305),
            _ => None,
        }
    }

    /// Relative per-byte CPU cost of this suite as a `(num, den)`
    /// fraction of the paper-baseline ARC4+SHA-1 channel, for the
    /// simulator's virtual cost model. The ChaCha20-Poly1305 ratio
    /// matches the measured `BENCH_hotpath.json` 8 KiB seal+open gap
    /// (≈4×).
    pub const fn cost_ratio(self) -> (u64, u64) {
        match self {
            SuiteId::Arc4Sha1 => (1, 1),
            SuiteId::ChaCha20Poly1305 => (1, 4),
        }
    }

    /// Bytes this suite appends to every frame.
    pub const fn trailer_len(self) -> usize {
        match self {
            SuiteId::Arc4Sha1 => MAC_LEN,
            SuiteId::ChaCha20Poly1305 => chachapoly::TAG_LEN,
        }
    }
}

impl std::fmt::Display for SuiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Expands a 20-byte directional session key into the 32 bytes the
/// ChaCha20-Poly1305 suite needs.
fn expand_channel_key(dir_key: &[u8; 20]) -> [u8; chachapoly::KEY_LEN] {
    let a = sha1_concat(&[b"suite-key/1", dir_key]);
    let b = sha1_concat(&[b"suite-key/2", dir_key]);
    let mut key = [0u8; chachapoly::KEY_LEN];
    key[..20].copy_from_slice(&a);
    key[20..].copy_from_slice(&b[..12]);
    key
}

/// The per-direction nonce: 4 zero bytes then the message counter LE.
/// Counters are per direction and per session key, so (key, nonce) pairs
/// never repeat.
fn chacha_nonce(seq: u64) -> [u8; chachapoly::NONCE_LEN] {
    let mut nonce = [0u8; chachapoly::NONCE_LEN];
    nonce[4..].copy_from_slice(&seq.to_le_bytes());
    nonce
}

/// One direction's cipher state.
///
/// The ARC4 variant carries its full 1 KiB permutation inline: channel
/// ends are built once per session and the cipher state is touched on
/// every sealed frame, so the indirection a `Box` would add to the hot
/// path buys nothing for a one-time size saving.
#[allow(clippy::large_enum_variant)]
enum DirectionCipher {
    /// Long-lived ARC4 stream; MAC keys and frame bytes both advance it.
    Arc4Sha1(Arc4),
    /// AEAD key plus the message counter that forms the nonce.
    ChaChaPoly {
        key: [u8; chachapoly::KEY_LEN],
        seq: u64,
    },
}

impl DirectionCipher {
    fn new(suite: SuiteId, dir_key: &[u8; 20]) -> DirectionCipher {
        match suite {
            SuiteId::Arc4Sha1 => DirectionCipher::Arc4Sha1(Arc4::new(dir_key)),
            SuiteId::ChaCha20Poly1305 => DirectionCipher::ChaChaPoly {
                key: expand_channel_key(dir_key),
                seq: 0,
            },
        }
    }
}

/// One endpoint of a secure channel.
///
/// Construct the client end with [`SecureChannelEnd::client`] and the
/// server end with [`SecureChannelEnd::server`]; the two ends then
/// [`seal`](Self::seal) outgoing and [`open`](Self::open) incoming
/// messages.
pub struct SecureChannelEnd {
    suite: SuiteId,
    send: DirectionCipher,
    recv: DirectionCipher,
    poisoned: bool,
    sent: u64,
    received: u64,
    tel: Telemetry,
    host: &'static str,
}

impl SecureChannelEnd {
    /// The client end under the paper-baseline suite: sends under k_CS,
    /// receives under k_SC.
    pub fn client(keys: &SessionKeys) -> Self {
        Self::client_with_suite(keys, SuiteId::Arc4Sha1)
    }

    /// The server end under the paper-baseline suite: sends under k_SC,
    /// receives under k_CS.
    pub fn server(keys: &SessionKeys) -> Self {
        Self::server_with_suite(keys, SuiteId::Arc4Sha1)
    }

    /// The client end under a negotiated suite.
    pub fn client_with_suite(keys: &SessionKeys, suite: SuiteId) -> Self {
        SecureChannelEnd {
            suite,
            send: DirectionCipher::new(suite, &keys.kcs),
            recv: DirectionCipher::new(suite, &keys.ksc),
            poisoned: false,
            sent: 0,
            received: 0,
            tel: Telemetry::disabled(),
            host: "client",
        }
    }

    /// The server end under a negotiated suite.
    pub fn server_with_suite(keys: &SessionKeys, suite: SuiteId) -> Self {
        SecureChannelEnd {
            suite,
            send: DirectionCipher::new(suite, &keys.ksc),
            recv: DirectionCipher::new(suite, &keys.kcs),
            poisoned: false,
            sent: 0,
            received: 0,
            tel: Telemetry::disabled(),
            host: "server",
        }
    }

    /// The suite this end runs.
    pub fn suite(&self) -> SuiteId {
        self.suite
    }

    /// Attaches a tracing sink. Byte/message counters (and the poison
    /// instant) are reported under this end's host dimension ("client"
    /// for [`Self::client`] ends, "server" for [`Self::server`] ends).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Messages sealed so far.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages opened so far.
    pub fn messages_received(&self) -> u64 {
        self.received
    }

    /// Whether the channel has been poisoned by a MAC failure.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Seals a plaintext message into a wire frame.
    ///
    /// Frame layout (before encryption): `len(4) ‖ plaintext ‖ MAC(20)`.
    /// The whole frame is encrypted; the MAC key is 32 stream bytes pulled
    /// first.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let trailer = self.suite.trailer_len();
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + plaintext.len() + trailer);
        frame.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
        frame.extend_from_slice(plaintext);
        self.seal_into(&mut frame, 0)?;
        Ok(frame)
    }

    /// Seals in place: `buf[frame_start..]` must hold
    /// [`FRAME_HEADER_LEN`] reserved bytes followed by the plaintext.
    /// On success that region (plus an appended MAC) has become the
    /// encrypted wire frame; bytes before `frame_start` are untouched,
    /// letting a caller build a cleartext envelope and the frame in one
    /// buffer. Produces exactly the bytes [`Self::seal`] would.
    pub fn seal_into(&mut self, buf: &mut Vec<u8>, frame_start: usize) -> Result<(), ChannelError> {
        if self.poisoned {
            return Err(ChannelError::Poisoned);
        }
        if buf.len() < frame_start + FRAME_HEADER_LEN {
            return Err(ChannelError::Truncated);
        }
        let plen = buf.len() - frame_start - FRAME_HEADER_LEN;
        if plen > MAX_MESSAGE {
            return Err(ChannelError::TooLong);
        }
        match &mut self.send {
            DirectionCipher::Arc4Sha1(stream) => {
                // Pull the per-message MAC key (not used for encryption).
                let mut mac_key = [0u8; MAC_KEY_LEN];
                stream.keystream(&mut mac_key);
                let mac = SfsMac::compute(&mac_key, &buf[frame_start + FRAME_HEADER_LEN..]);
                buf[frame_start..frame_start + FRAME_HEADER_LEN]
                    .copy_from_slice(&(plen as u32).to_be_bytes());
                buf.extend_from_slice(&mac);
                stream.process(&mut buf[frame_start..]);
            }
            DirectionCipher::ChaChaPoly { key, seq } => {
                // Single AEAD pass over len ‖ plaintext; tag appended.
                buf[frame_start..frame_start + FRAME_HEADER_LEN]
                    .copy_from_slice(&(plen as u32).to_be_bytes());
                let nonce = chacha_nonce(*seq);
                let tag = chachapoly::seal_in_place(key, &nonce, &[], &mut buf[frame_start..]);
                buf.extend_from_slice(&tag);
                *seq += 1;
            }
        }
        self.sent += 1;
        self.tel.count(self.host, "channel.msgs_sealed", 1);
        self.tel
            .count(self.host, "channel.bytes_sealed", plen as u64);
        Ok(())
    }

    /// Opens a wire frame into the plaintext message. Any failure poisons
    /// the channel (the paper's channels abort on tampering; recovery
    /// requires a fresh key negotiation).
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let mut buf = frame.to_vec();
        self.open_in_place(&mut buf).map(|p| p.to_vec())
    }

    /// Opens a frame by decrypting it in place, returning the plaintext
    /// as a subslice of `frame` — no allocation. On failure the channel
    /// poisons exactly as [`Self::open`] does (and `frame` is left
    /// partially decrypted, which no longer matters: a poisoned channel
    /// refuses all further traffic).
    pub fn open_in_place<'a>(&mut self, frame: &'a mut [u8]) -> Result<&'a [u8], ChannelError> {
        if self.poisoned {
            return Err(ChannelError::Poisoned);
        }
        let result = self.open_in_place_inner(frame);
        match &result {
            Ok(plaintext) => {
                self.tel.count(self.host, "channel.msgs_opened", 1);
                self.tel
                    .count(self.host, "channel.bytes_opened", plaintext.len() as u64);
            }
            Err(_) => {
                self.poisoned = true;
                self.tel.instant(self.host, "proto.channel", "poisoned");
            }
        }
        result
    }

    fn open_in_place_inner<'a>(&mut self, frame: &'a mut [u8]) -> Result<&'a [u8], ChannelError> {
        let plaintext = match &mut self.recv {
            DirectionCipher::Arc4Sha1(stream) => {
                if frame.len() < FRAME_HEADER_LEN + MAC_LEN {
                    return Err(ChannelError::Truncated);
                }
                let mut mac_key = [0u8; MAC_KEY_LEN];
                stream.keystream(&mut mac_key);
                stream.process(frame);
                let len =
                    u32::from_be_bytes(frame[..FRAME_HEADER_LEN].try_into().unwrap()) as usize;
                if len > MAX_MESSAGE {
                    return Err(ChannelError::TooLong);
                }
                if frame.len() != FRAME_HEADER_LEN + len + MAC_LEN {
                    return Err(ChannelError::Truncated);
                }
                let (head, mac) = frame.split_at(FRAME_HEADER_LEN + len);
                let plaintext = &head[FRAME_HEADER_LEN..];
                if !SfsMac::verify(&mac_key, plaintext, mac) {
                    return Err(ChannelError::MacFailure);
                }
                plaintext
            }
            DirectionCipher::ChaChaPoly { key, seq } => {
                if frame.len() < FRAME_HEADER_LEN + chachapoly::TAG_LEN {
                    return Err(ChannelError::Truncated);
                }
                let split = frame.len() - chachapoly::TAG_LEN;
                let (body, tag) = frame.split_at_mut(split);
                let nonce = chacha_nonce(*seq);
                // Tag verification happens before any decryption; a
                // replayed or reordered frame authenticates under the
                // wrong nonce and fails here.
                chachapoly::open_in_place(key, &nonce, &[], body, tag)
                    .map_err(|_| ChannelError::MacFailure)?;
                *seq += 1;
                let len = u32::from_be_bytes(body[..FRAME_HEADER_LEN].try_into().unwrap()) as usize;
                if len > MAX_MESSAGE {
                    return Err(ChannelError::TooLong);
                }
                if body.len() != FRAME_HEADER_LEN + len {
                    return Err(ChannelError::Truncated);
                }
                &body[FRAME_HEADER_LEN..]
            }
        };
        self.received += 1;
        Ok(plaintext)
    }
}

impl std::fmt::Debug for SecureChannelEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannelEnd")
            .field("suite", &self.suite)
            .field("sent", &self.sent)
            .field("received", &self.received)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

/// Result of [`FrameSequencer::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqPush {
    /// The frame was buffered (or is already openable if it completes the
    /// head of the sequence — drain with [`FrameSequencer::take`]).
    Buffered,
    /// A frame for this stream position is already buffered, or the
    /// position was already consumed; the duplicate was discarded.
    Duplicate,
    /// The frame is too far ahead of the next expected position for the
    /// sequencer's capacity; the caller should treat the channel as
    /// failed (a well-behaved peer never runs this far ahead).
    Overflow,
}

/// Reorders sealed frames back into cipher-stream order.
///
/// The secure channel's ARC4 streams are position-sensitive: frames MUST
/// be decrypted in exactly the order they were sealed. The pipelined RPC
/// path carries each frame's stream position (`chanseq`) in cleartext,
/// and a `FrameSequencer` on the receiving side buffers whatever arrives
/// out of order until the gap fills. Duplicates (retransmissions of
/// frames already received) are detected here, *before* they can touch
/// the cipher and poison it.
#[derive(Debug, Default)]
pub struct FrameSequencer {
    /// Buffered frames keyed by stream position. BTreeMap so draining is
    /// deterministic and in order.
    slots: std::collections::BTreeMap<u64, (u32, Vec<u8>)>,
    capacity: usize,
}

impl FrameSequencer {
    /// A sequencer buffering at most `capacity` out-of-order frames.
    pub fn new(capacity: usize) -> Self {
        FrameSequencer {
            slots: std::collections::BTreeMap::new(),
            capacity,
        }
    }

    /// Offers a frame at stream position `chanseq` with request tag
    /// `xid`, where `expected` is the next position the channel will
    /// decrypt (its messages-received count). First frame wins on a
    /// position collision — retransmitted frames are byte-identical, so
    /// which copy survives never matters.
    pub fn push(&mut self, chanseq: u64, xid: u32, frame: Vec<u8>, expected: u64) -> SeqPush {
        if chanseq < expected || self.slots.contains_key(&chanseq) {
            return SeqPush::Duplicate;
        }
        if chanseq >= expected + self.capacity as u64 {
            return SeqPush::Overflow;
        }
        self.slots.insert(chanseq, (xid, frame));
        SeqPush::Buffered
    }

    /// Removes and returns the frame at position `chanseq`, if buffered.
    /// Callers take positions in channel order (`expected`, `expected+1`,
    /// …) and stop at the first gap.
    pub fn take(&mut self, chanseq: u64) -> Option<(u32, Vec<u8>)> {
        self.slots.remove(&chanseq)
    }

    /// Number of frames currently buffered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no frames are buffered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SessionKeys {
        SessionKeys {
            kcs: *b"client-to-server-key",
            ksc: *b"server-to-client-key",
            session_id: [9u8; 20],
        }
    }

    fn pair() -> (SecureChannelEnd, SecureChannelEnd) {
        let k = keys();
        (SecureChannelEnd::client(&k), SecureChannelEnd::server(&k))
    }

    #[test]
    fn roundtrip_both_directions() {
        let (mut c, mut s) = pair();
        let f = c.seal(b"NFS3 LOOKUP foo").unwrap();
        assert_eq!(s.open(&f).unwrap(), b"NFS3 LOOKUP foo");
        let f = s.seal(b"NFS3 LOOKUP reply").unwrap();
        assert_eq!(c.open(&f).unwrap(), b"NFS3 LOOKUP reply");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut c, _) = pair();
        let f = c.seal(b"super secret data").unwrap();
        // The plaintext must not appear in the frame.
        assert!(!f
            .windows(b"super secret".len())
            .any(|w| w == b"super secret"));
    }

    #[test]
    fn sequence_of_messages() {
        let (mut c, mut s) = pair();
        for i in 0..50u32 {
            let msg = format!("message number {i}");
            let f = c.seal(msg.as_bytes()).unwrap();
            assert_eq!(s.open(&f).unwrap(), msg.as_bytes());
        }
        assert_eq!(c.messages_sent(), 50);
        assert_eq!(s.messages_received(), 50);
    }

    #[test]
    fn tampering_detected_and_poisons() {
        let (mut c, mut s) = pair();
        let mut f = c.seal(b"chmod 0644").unwrap();
        f[6] ^= 0x01;
        assert_eq!(s.open(&f).unwrap_err(), ChannelError::MacFailure);
        assert!(s.is_poisoned());
        // Further messages are refused.
        let f2 = c.seal(b"next").unwrap();
        assert_eq!(s.open(&f2).unwrap_err(), ChannelError::Poisoned);
    }

    #[test]
    fn replay_detected() {
        let (mut c, mut s) = pair();
        let f1 = c.seal(b"pay alice $1").unwrap();
        assert!(s.open(&f1).is_ok());
        // Replaying the same ciphertext hits a different stream position:
        // the frame garbles (bad length or MAC) and the channel poisons.
        assert!(s.open(&f1).is_err());
        assert!(s.is_poisoned());
    }

    #[test]
    fn reorder_detected() {
        let (mut c, mut s) = pair();
        let f1 = c.seal(b"first").unwrap();
        let f2 = c.seal(b"second").unwrap();
        assert!(s.open(&f2).is_err());
        assert!(s.is_poisoned());
        let _ = f1;
    }

    #[test]
    fn drop_detected_on_next_message() {
        let (mut c, mut s) = pair();
        let _lost = c.seal(b"lost in transit").unwrap();
        let f2 = c.seal(b"arrives").unwrap();
        assert!(s.open(&f2).is_err());
        assert!(s.is_poisoned());
    }

    #[test]
    fn wrong_direction_rejected() {
        // A frame sealed by the client cannot be opened by another client
        // end (same keys, wrong direction).
        let k = keys();
        let mut c1 = SecureChannelEnd::client(&k);
        let mut c2 = SecureChannelEnd::client(&k);
        let f = c1.seal(b"hello").unwrap();
        // c2 receives under ksc, but the frame was sealed under kcs.
        assert!(c2.open(&f).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let (mut c, mut s) = pair();
        let f = c.seal(b"hello").unwrap();
        assert_eq!(s.open(&f[..10]).unwrap_err(), ChannelError::Truncated);
    }

    #[test]
    fn empty_message_ok() {
        let (mut c, mut s) = pair();
        let f = c.seal(b"").unwrap();
        assert_eq!(s.open(&f).unwrap(), b"");
    }

    /// The sizes the golden-frame equivalence tests sweep: empty, the
    /// unaligned minima, and a 4 KiB page.
    const GOLDEN_SIZES: [usize; 4] = [0, 1, 3, 4096];

    #[test]
    fn seal_into_is_byte_identical_to_seal() {
        // Two channel ends with identical keys must emit identical
        // frames whether they seal by allocation or in place — the
        // cipher-stream positions advance in lockstep.
        let k = keys();
        let mut old = SecureChannelEnd::client(&k);
        let mut new = SecureChannelEnd::client(&k);
        for (i, &n) in GOLDEN_SIZES.iter().enumerate() {
            let plaintext = vec![i as u8 + 1; n];
            let golden = old.seal(&plaintext).unwrap();
            let mut frame = vec![0u8; FRAME_HEADER_LEN];
            frame.extend_from_slice(&plaintext);
            new.seal_into(&mut frame, 0).unwrap();
            assert_eq!(frame, golden, "size {n}");
        }
    }

    #[test]
    fn seal_into_mid_buffer_leaves_prefix_clear() {
        // Sealing at an offset must produce the same frame bytes after
        // the untouched cleartext prefix — the envelope fast path.
        let k = keys();
        let mut old = SecureChannelEnd::client(&k);
        let mut new = SecureChannelEnd::client(&k);
        for &n in &GOLDEN_SIZES {
            let plaintext = vec![0x5A; n];
            let golden = old.seal(&plaintext).unwrap();
            let mut buf = b"ENVELOPE".to_vec();
            buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
            buf.extend_from_slice(&plaintext);
            new.seal_into(&mut buf, 8).unwrap();
            assert_eq!(&buf[..8], b"ENVELOPE");
            assert_eq!(&buf[8..], &golden[..], "size {n}");
        }
    }

    #[test]
    fn open_in_place_matches_open() {
        let k = keys();
        let mut c = SecureChannelEnd::client(&k);
        let mut s_old = SecureChannelEnd::server(&k);
        let mut s_new = SecureChannelEnd::server(&k);
        for (i, &n) in GOLDEN_SIZES.iter().enumerate() {
            let plaintext = vec![i as u8 + 7; n];
            let frame = c.seal(&plaintext).unwrap();
            let via_open = s_old.open(&frame).unwrap();
            let mut buf = frame.clone();
            let via_in_place = s_new.open_in_place(&mut buf).unwrap();
            assert_eq!(via_in_place, &via_open[..], "size {n}");
            assert_eq!(via_in_place, &plaintext[..], "size {n}");
        }
        assert_eq!(s_new.messages_received(), GOLDEN_SIZES.len() as u64);
    }

    #[test]
    fn open_in_place_mac_reject_poisons_like_open() {
        // Every reject path must produce the same error and the same
        // poisoned end-state as the allocating path.
        for &n in &GOLDEN_SIZES {
            let k = keys();
            let mut c = SecureChannelEnd::client(&k);
            let mut s_old = SecureChannelEnd::server(&k);
            let mut s_new = SecureChannelEnd::server(&k);
            let mut frame = c.seal(&vec![9u8; n]).unwrap();
            frame[FRAME_HEADER_LEN] ^= 0x40; // corrupt length or body
            let e_old = s_old.open(&frame).unwrap_err();
            let mut buf = frame.clone();
            let e_new = s_new.open_in_place(&mut buf).unwrap_err();
            assert_eq!(e_new, e_old, "size {n}");
            assert!(s_new.is_poisoned());
            // Poisoned ends refuse everything, in-place or not.
            let mut next = c.seal(b"next").unwrap();
            assert_eq!(
                s_new.open_in_place(&mut next).unwrap_err(),
                ChannelError::Poisoned
            );
        }
    }

    #[test]
    fn open_in_place_truncated_frame_rejected() {
        let k = keys();
        let mut c = SecureChannelEnd::client(&k);
        let mut s = SecureChannelEnd::server(&k);
        let frame = c.seal(b"hello").unwrap();
        let mut short = frame[..10].to_vec();
        assert_eq!(
            s.open_in_place(&mut short).unwrap_err(),
            ChannelError::Truncated
        );
        assert!(s.is_poisoned());
    }

    #[test]
    fn seal_into_without_reserved_header_is_an_error() {
        let k = keys();
        let mut c = SecureChannelEnd::client(&k);
        let mut buf = vec![1u8; FRAME_HEADER_LEN - 1];
        assert_eq!(
            c.seal_into(&mut buf, 0).unwrap_err(),
            ChannelError::Truncated
        );
        assert_eq!(c.messages_sent(), 0, "failed seal must not advance");
    }

    #[test]
    fn mixed_seal_styles_interleave_on_one_channel() {
        // A single connection may seal via both entry points; stream
        // positions must stay consistent.
        let (mut c, mut s) = pair();
        let f1 = c.seal(b"first").unwrap();
        let mut f2 = vec![0u8; FRAME_HEADER_LEN];
        f2.extend_from_slice(b"second");
        c.seal_into(&mut f2, 0).unwrap();
        assert_eq!(s.open(&f1).unwrap(), b"first");
        assert_eq!(s.open_in_place(&mut f2).unwrap(), b"second");
    }

    #[test]
    fn sequencer_reorders_and_rejects_duplicates() {
        let mut seq = FrameSequencer::new(8);
        assert!(seq.is_empty());
        // Frames 1 and 2 arrive before frame 0.
        assert_eq!(seq.push(1, 11, vec![1], 0), SeqPush::Buffered);
        assert_eq!(seq.push(2, 12, vec![2], 0), SeqPush::Buffered);
        assert_eq!(seq.len(), 2);
        // No head yet: position 0 is missing.
        assert_eq!(seq.take(0), None);
        assert_eq!(seq.push(0, 10, vec![0], 0), SeqPush::Buffered);
        // Drain strictly in order.
        assert_eq!(seq.take(0), Some((10, vec![0])));
        assert_eq!(seq.take(1), Some((11, vec![1])));
        assert_eq!(seq.take(2), Some((12, vec![2])));
        assert!(seq.is_empty());
        // A retransmit of an already-consumed position is a duplicate.
        assert_eq!(seq.push(1, 11, vec![1], 3), SeqPush::Duplicate);
        // A collision with a buffered frame keeps the first copy.
        assert_eq!(seq.push(5, 15, vec![5], 3), SeqPush::Buffered);
        assert_eq!(seq.push(5, 99, vec![99], 3), SeqPush::Duplicate);
        assert_eq!(seq.take(5), Some((15, vec![5])));
    }

    #[test]
    fn sequencer_overflow_past_capacity() {
        let mut seq = FrameSequencer::new(4);
        assert_eq!(seq.push(3, 0, vec![], 0), SeqPush::Buffered);
        assert_eq!(seq.push(4, 0, vec![], 0), SeqPush::Overflow);
        assert_eq!(seq.push(100, 0, vec![], 0), SeqPush::Overflow);
        // Window slides with `expected`.
        assert_eq!(seq.push(4, 0, vec![], 1), SeqPush::Buffered);
    }

    fn chacha_pair() -> (SecureChannelEnd, SecureChannelEnd) {
        let k = keys();
        (
            SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305),
            SecureChannelEnd::server_with_suite(&k, SuiteId::ChaCha20Poly1305),
        )
    }

    #[test]
    fn suite_id_wire_and_label_roundtrip() {
        for suite in [SuiteId::Arc4Sha1, SuiteId::ChaCha20Poly1305] {
            assert_eq!(SuiteId::from_wire(suite.wire_id()), Some(suite));
            assert_eq!(SuiteId::parse(suite.label()), Some(suite));
        }
        assert_eq!(SuiteId::from_wire(0), None);
        assert_eq!(SuiteId::from_wire(3), None);
        assert_eq!(SuiteId::parse("rot13"), None);
    }

    #[test]
    fn default_constructors_run_the_baseline_suite() {
        let (c, s) = pair();
        assert_eq!(c.suite(), SuiteId::Arc4Sha1);
        assert_eq!(s.suite(), SuiteId::Arc4Sha1);
    }

    #[test]
    fn chacha_roundtrip_both_directions() {
        let (mut c, mut s) = chacha_pair();
        for i in 0..50u32 {
            let msg = format!("negotiated message {i}");
            let f = c.seal(msg.as_bytes()).unwrap();
            assert_eq!(
                f.len(),
                FRAME_HEADER_LEN + msg.len() + SuiteId::ChaCha20Poly1305.trailer_len()
            );
            assert_eq!(s.open(&f).unwrap(), msg.as_bytes());
            let r = s.seal(b"reply").unwrap();
            assert_eq!(c.open(&r).unwrap(), b"reply");
        }
        assert_eq!(c.messages_sent(), 50);
        assert_eq!(s.messages_received(), 50);
    }

    #[test]
    fn chacha_seal_into_is_byte_identical_to_seal() {
        let k = keys();
        let mut old = SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305);
        let mut new = SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305);
        for (i, &n) in GOLDEN_SIZES.iter().enumerate() {
            let plaintext = vec![i as u8 + 1; n];
            let golden = old.seal(&plaintext).unwrap();
            let mut buf = b"ENVELOPE".to_vec();
            buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
            buf.extend_from_slice(&plaintext);
            new.seal_into(&mut buf, 8).unwrap();
            assert_eq!(&buf[..8], b"ENVELOPE");
            assert_eq!(&buf[8..], &golden[..], "size {n}");
        }
    }

    #[test]
    fn chacha_open_in_place_matches_open() {
        let k = keys();
        let mut c = SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305);
        let mut s_old = SecureChannelEnd::server_with_suite(&k, SuiteId::ChaCha20Poly1305);
        let mut s_new = SecureChannelEnd::server_with_suite(&k, SuiteId::ChaCha20Poly1305);
        for (i, &n) in GOLDEN_SIZES.iter().enumerate() {
            let plaintext = vec![i as u8 + 7; n];
            let frame = c.seal(&plaintext).unwrap();
            let via_open = s_old.open(&frame).unwrap();
            let mut buf = frame.clone();
            let via_in_place = s_new.open_in_place(&mut buf).unwrap();
            assert_eq!(via_in_place, &via_open[..], "size {n}");
            assert_eq!(via_in_place, &plaintext[..], "size {n}");
        }
    }

    #[test]
    fn chacha_tampering_detected_and_poisons() {
        let (mut c, mut s) = chacha_pair();
        let mut f = c.seal(b"chmod 0644").unwrap();
        f[6] ^= 0x01;
        assert_eq!(s.open(&f).unwrap_err(), ChannelError::MacFailure);
        assert!(s.is_poisoned());
        let f2 = c.seal(b"next").unwrap();
        assert_eq!(s.open(&f2).unwrap_err(), ChannelError::Poisoned);
    }

    #[test]
    fn chacha_replay_reorder_and_drop_detected() {
        // Replay: same frame, advanced nonce.
        let (mut c, mut s) = chacha_pair();
        let f1 = c.seal(b"pay alice $1").unwrap();
        assert!(s.open(&f1).is_ok());
        assert_eq!(s.open(&f1).unwrap_err(), ChannelError::MacFailure);
        assert!(s.is_poisoned());
        // Reorder: second frame under first nonce.
        let (mut c, mut s) = chacha_pair();
        let _f1 = c.seal(b"first").unwrap();
        let f2 = c.seal(b"second").unwrap();
        assert_eq!(s.open(&f2).unwrap_err(), ChannelError::MacFailure);
        assert!(s.is_poisoned());
        // Drop: the gap surfaces on the next delivered frame.
        let (mut c, mut s) = chacha_pair();
        let _lost = c.seal(b"lost in transit").unwrap();
        let f2 = c.seal(b"arrives").unwrap();
        assert!(s.open(&f2).is_err());
        assert!(s.is_poisoned());
    }

    #[test]
    fn chacha_ciphertext_hides_plaintext() {
        let (mut c, _) = chacha_pair();
        let f = c.seal(b"super secret data").unwrap();
        assert!(!f
            .windows(b"super secret".len())
            .any(|w| w == b"super secret"));
    }

    #[test]
    fn chacha_wrong_direction_and_cross_suite_rejected() {
        let k = keys();
        // Same suite, wrong direction.
        let mut c1 = SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305);
        let mut c2 = SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305);
        let f = c1.seal(b"hello").unwrap();
        assert!(c2.open(&f).is_err());
        // Same keys, mismatched suites — ends that disagree on the
        // negotiated suite must not interoperate.
        let mut c = SecureChannelEnd::client_with_suite(&k, SuiteId::ChaCha20Poly1305);
        let mut s = SecureChannelEnd::server(&k);
        let f = c.seal(b"hello").unwrap();
        assert!(s.open(&f).is_err());
    }

    #[test]
    fn chacha_truncated_and_empty_frames() {
        let (mut c, mut s) = chacha_pair();
        let f = c.seal(b"").unwrap();
        assert_eq!(
            f.len(),
            FRAME_HEADER_LEN + SuiteId::ChaCha20Poly1305.trailer_len()
        );
        assert_eq!(s.open(&f).unwrap(), b"");
        let f2 = c.seal(b"hello").unwrap();
        assert_eq!(s.open(&f2[..10]).unwrap_err(), ChannelError::Truncated);
        assert!(s.is_poisoned());
    }

    #[test]
    fn distinct_sessions_cannot_cross_decrypt() {
        let k1 = keys();
        let k2 = SessionKeys {
            kcs: *b"different-kcs-key-!!",
            ksc: *b"different-ksc-key-!!",
            session_id: [1u8; 20],
        };
        let mut c = SecureChannelEnd::client(&k1);
        let mut s = SecureChannelEnd::server(&k2);
        let f = c.seal(b"cross").unwrap();
        assert!(s.open(&f).is_err());
    }
}
