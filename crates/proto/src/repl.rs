//! Log-shipping and promotion records for the replicated write path.
//!
//! A read-write HostID is a *key*, not a machine (§2.2): any replica
//! holding the group's private key can serve the realm. What makes a
//! replica *safe* to promote is holding the committed operation
//! history, and these records are that history's wire form. The
//! primary appends one [`ReplRecord::Op`] per mutating NFS call to its
//! own log and ships the same frame to every backup; a write is acked
//! to the client only once a quorum of logs holds the frame durably.
//! Checkpoint marks record coordinated truncation points; a promotion
//! record is the first frame a newly promoted primary writes, pinning
//! which boot epoch took over and from which LSN.
//!
//! Records are XDR, tag-dispatched like `sfs::JournalRecord`, and are
//! carried inside `sfs_sim::JournalDisk` CRC frames — corruption is
//! the journal layer's problem, interpretation is this layer's.

use sfs_xdr::{XdrDecoder, XdrEncoder};

/// One replicated mutating operation, exactly as the primary executed
/// it: resolved credentials plus the NFS-form request body (procedure
/// number and XDR-encoded arguments with plaintext handles — backups
/// re-derive wire handles from the shared group key, so NFS form is
/// the canonical one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplOp {
    /// Log sequence number, 1-based, dense, assigned by the primary.
    pub lsn: u64,
    /// Authenticated uid the primary resolved for the call.
    pub uid: u32,
    /// Supplementary gids of the caller.
    pub gids: Vec<u32>,
    /// NFSv3 procedure number.
    pub proc: u32,
    /// XDR-encoded NFS-form arguments.
    pub args: Vec<u8>,
}

/// One frame of the replication log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplRecord {
    /// A mutating operation the primary executed at this LSN.
    Op(ReplOp),
    /// All members have applied and truncated through `lsn`; frames at
    /// or below it will never be shipped again.
    Checkpoint { lsn: u64 },
    /// A backup took over as primary: its server's boot `epoch` at
    /// promotion, and the first LSN (`next_lsn`) it will assign.
    Promote { epoch: u64, next_lsn: u64 },
}

impl ReplRecord {
    /// Encodes one record.
    pub fn to_xdr(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        match self {
            ReplRecord::Op(op) => {
                enc.put_u32(0)
                    .put_u64(op.lsn)
                    .put_u32(op.uid)
                    .put_u32(op.gids.len() as u32);
                for g in &op.gids {
                    enc.put_u32(*g);
                }
                enc.put_u32(op.proc).put_opaque(&op.args);
            }
            ReplRecord::Checkpoint { lsn } => {
                enc.put_u32(1).put_u64(*lsn);
            }
            ReplRecord::Promote { epoch, next_lsn } => {
                enc.put_u32(2).put_u64(*epoch).put_u64(*next_lsn);
            }
        }
        enc.into_bytes()
    }

    /// Decodes one record.
    pub fn from_xdr(bytes: &[u8]) -> Result<Self, String> {
        let e = |e: sfs_xdr::XdrError| e.to_string();
        let mut dec = XdrDecoder::new(bytes);
        let tag = dec.get_u32().map_err(e)?;
        let rec = match tag {
            0 => {
                let lsn = dec.get_u64().map_err(e)?;
                let uid = dec.get_u32().map_err(e)?;
                let n = dec.get_u32().map_err(e)?;
                let mut gids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    gids.push(dec.get_u32().map_err(e)?);
                }
                ReplRecord::Op(ReplOp {
                    lsn,
                    uid,
                    gids,
                    proc: dec.get_u32().map_err(e)?,
                    args: dec.get_opaque().map_err(e)?,
                })
            }
            1 => ReplRecord::Checkpoint {
                lsn: dec.get_u64().map_err(e)?,
            },
            2 => ReplRecord::Promote {
                epoch: dec.get_u64().map_err(e)?,
                next_lsn: dec.get_u64().map_err(e)?,
            },
            other => return Err(format!("unknown repl record tag {other}")),
        };
        Ok(rec)
    }

    /// The LSN this record pins, if any (`Op` → its lsn, `Checkpoint` →
    /// the truncation point, `Promote` → none).
    pub fn lsn(&self) -> Option<u64> {
        match self {
            ReplRecord::Op(op) => Some(op.lsn),
            ReplRecord::Checkpoint { lsn } => Some(*lsn),
            ReplRecord::Promote { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: ReplRecord) {
        let bytes = rec.to_xdr();
        assert_eq!(ReplRecord::from_xdr(&bytes).unwrap(), rec);
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(ReplRecord::Op(ReplOp {
            lsn: 42,
            uid: 1000,
            gids: vec![1000, 20, 0],
            proc: 7,
            args: vec![0xDE, 0xAD, 0xBE, 0xEF, 0x01],
        }));
        roundtrip(ReplRecord::Op(ReplOp {
            lsn: u64::MAX,
            uid: 0,
            gids: vec![],
            proc: 0,
            args: vec![],
        }));
        roundtrip(ReplRecord::Checkpoint { lsn: 8 });
        roundtrip(ReplRecord::Promote {
            epoch: 3,
            next_lsn: 129,
        });
    }

    #[test]
    fn unknown_tag_and_truncated_frames_are_errors() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(9);
        assert!(ReplRecord::from_xdr(&enc.into_bytes()).is_err());
        let good = ReplRecord::Checkpoint { lsn: 5 }.to_xdr();
        assert!(ReplRecord::from_xdr(&good[..good.len() - 2]).is_err());
    }

    #[test]
    fn lsn_accessor_matches_variant() {
        assert_eq!(
            ReplRecord::Op(ReplOp {
                lsn: 7,
                uid: 1,
                gids: vec![],
                proc: 4,
                args: vec![]
            })
            .lsn(),
            Some(7)
        );
        assert_eq!(ReplRecord::Checkpoint { lsn: 3 }.lsn(), Some(3));
        assert_eq!(
            ReplRecord::Promote {
                epoch: 1,
                next_lsn: 2
            }
            .lsn(),
            None
        );
    }
}
