//! Self-certifying pathnames (§2.2).
//!
//! "Every SFS file system is accessible under a pathname of the form
//! `/sfs/Location:HostID`. … HostID is a cryptographic hash of that key and
//! the server's Location":
//!
//! ```text
//! HostID = SHA-1("HostInfo", Location, PublicKey,
//!                "HostInfo", Location, PublicKey)
//! ```
//!
//! "SFS encodes the 20-byte HostID in base 32, using 32 digits and
//! lower-case letters. (To avoid confusion, the encoding omits the
//! characters 'l' [lower-case L], '1' \[one\], '0' and 'o'.)"

use sfs_crypto::rabin::RabinPublicKey;
use sfs_crypto::sha1::{Sha1, DIGEST_LEN};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

/// The mount directory for all remote SFS file systems.
pub const SFS_ROOT: &str = "/sfs";

/// The base-32 alphabet: digits and lowercase letters minus `l`, `1`, `0`,
/// `o`.
pub const BASE32_ALPHABET: &[u8; 32] = b"23456789abcdefghijkmnpqrstuvwxyz";

/// Length of an encoded HostID: 20 bytes = 160 bits = 32 base-32 digits.
pub const HOSTID_ENCODED_LEN: usize = 32;

/// A 20-byte HostID.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub [u8; DIGEST_LEN]);

/// Errors parsing self-certifying pathnames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The string is not under `/sfs/` or lacks the `Location:HostID`
    /// shape.
    BadFormat,
    /// The HostID portion contains characters outside the alphabet or has
    /// the wrong length.
    BadHostId,
    /// The Location is empty or contains illegal characters.
    BadLocation,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::BadFormat => write!(f, "not a self-certifying pathname"),
            PathError::BadHostId => write!(f, "malformed HostID"),
            PathError::BadLocation => write!(f, "malformed Location"),
        }
    }
}

impl std::error::Error for PathError {}

/// Encodes 20 bytes as 32 base-32 digits.
pub fn base32_encode(data: &[u8; DIGEST_LEN]) -> String {
    let mut out = String::with_capacity(HOSTID_ENCODED_LEN);
    // Process 160 bits, 5 at a time, MSB first.
    let mut acc: u32 = 0;
    let mut nbits = 0;
    for &b in data {
        acc = (acc << 8) | b as u32;
        nbits += 8;
        while nbits >= 5 {
            nbits -= 5;
            out.push(BASE32_ALPHABET[((acc >> nbits) & 31) as usize] as char);
        }
    }
    debug_assert_eq!(nbits, 0);
    out
}

/// Decodes a 32-digit base-32 string back to 20 bytes.
pub fn base32_decode(s: &str) -> Result<[u8; DIGEST_LEN], PathError> {
    if s.len() != HOSTID_ENCODED_LEN {
        return Err(PathError::BadHostId);
    }
    let mut out = [0u8; DIGEST_LEN];
    let mut acc: u32 = 0;
    let mut nbits = 0;
    let mut pos = 0;
    for ch in s.bytes() {
        let v = BASE32_ALPHABET
            .iter()
            .position(|&a| a == ch)
            .ok_or(PathError::BadHostId)? as u32;
        acc = (acc << 5) | v;
        nbits += 5;
        if nbits >= 8 {
            nbits -= 8;
            out[pos] = (acc >> nbits) as u8;
            pos += 1;
        }
    }
    Ok(out)
}

impl HostId {
    /// Computes a HostID from a location and public key, per §2.2 — note
    /// the deliberately *doubled* input: "Any collision of the duplicate
    /// input SHA-1 is also a collision of SHA-1," so the duplication cannot
    /// weaken, and might strengthen, the construction.
    pub fn compute(location: &str, public_key: &RabinPublicKey) -> Self {
        let mut enc = XdrEncoder::new();
        // The hash is computed over marshaled XDR (§3.2: "Any data that SFS
        // hashes … is defined as an XDR data structure").
        for _ in 0..2 {
            enc.put_string("HostInfo");
            enc.put_string(location);
            enc.put_opaque(&public_key.to_bytes());
        }
        let mut h = Sha1::new();
        h.update(enc.bytes());
        HostId(h.finalize())
    }

    /// Renders in base 32.
    pub fn encoded(&self) -> String {
        base32_encode(&self.0)
    }

    /// Parses from base 32.
    pub fn parse(s: &str) -> Result<Self, PathError> {
        Ok(HostId(base32_decode(s)?))
    }
}

impl std::fmt::Debug for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostId({})", self.encoded())
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.encoded())
    }
}

impl Xdr for HostId {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.0.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(HostId(<[u8; DIGEST_LEN]>::decode(dec)?))
    }
}

/// A parsed self-certifying pathname: `Location:HostID` plus an optional
/// path remainder on the remote server.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelfCertifyingPath {
    /// DNS name or IP address telling the client where to find the server.
    pub location: String,
    /// Hash of the server's public key (and location).
    pub host_id: HostId,
}

impl SelfCertifyingPath {
    /// Builds the pathname for a server at `location` with `public_key`.
    pub fn for_server(location: &str, public_key: &RabinPublicKey) -> Self {
        SelfCertifyingPath {
            location: location.to_string(),
            host_id: HostId::compute(location, public_key),
        }
    }

    /// Verifies that a claimed public key actually matches this pathname —
    /// the self-certification step: "HostIDs let clients ask servers for
    /// their public keys and verify the authenticity of the reply."
    pub fn certifies(&self, public_key: &RabinPublicKey) -> bool {
        HostId::compute(&self.location, public_key) == self.host_id
    }

    /// The `Location:HostID` directory name under `/sfs`.
    pub fn dir_name(&self) -> String {
        format!("{}:{}", self.location, self.host_id.encoded())
    }

    /// The full absolute path (`/sfs/Location:HostID`).
    pub fn full_path(&self) -> String {
        format!("{}/{}", SFS_ROOT, self.dir_name())
    }

    /// Parses a `Location:HostID` component (no `/sfs/` prefix).
    pub fn parse_dir_name(name: &str) -> Result<Self, PathError> {
        let colon = name.rfind(':').ok_or(PathError::BadFormat)?;
        let (location, host) = name.split_at(colon);
        let host = &host[1..];
        if location.is_empty()
            || !location
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
        {
            return Err(PathError::BadLocation);
        }
        Ok(SelfCertifyingPath {
            location: location.to_string(),
            host_id: HostId::parse(host)?,
        })
    }

    /// Parses a full absolute path, returning the self-certifying prefix
    /// and the residual path on the remote server.
    pub fn parse_full(path: &str) -> Result<(Self, String), PathError> {
        let rest = path.strip_prefix("/sfs/").ok_or(PathError::BadFormat)?;
        let (dir, remainder) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].to_string()),
            None => (rest, String::new()),
        };
        Ok((Self::parse_dir_name(dir)?, remainder))
    }
}

impl std::fmt::Display for SelfCertifyingPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full_path())
    }
}

impl Xdr for SelfCertifyingPath {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.location);
        self.host_id.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(SelfCertifyingPath {
            location: dec.get_string()?,
            host_id: HostId::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;

    fn key() -> RabinPublicKey {
        let mut rng = XorShiftSource::new(0xCAFE);
        generate_keypair(512, &mut rng).public().clone()
    }

    #[test]
    fn alphabet_excludes_confusing_chars() {
        for c in [b'l', b'1', b'0', b'o'] {
            assert!(!BASE32_ALPHABET.contains(&c), "{}", c as char);
        }
        assert_eq!(BASE32_ALPHABET.len(), 32);
        // All distinct.
        let mut sorted = BASE32_ALPHABET.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
    }

    #[test]
    fn base32_roundtrip() {
        let mut data = [0u8; 20];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 13 + 7) as u8;
        }
        let s = base32_encode(&data);
        assert_eq!(s.len(), 32);
        assert_eq!(base32_decode(&s).unwrap(), data);
    }

    #[test]
    fn base32_rejects_bad_input() {
        assert_eq!(base32_decode("short"), Err(PathError::BadHostId));
        let with_l = "l".repeat(32);
        assert_eq!(base32_decode(&with_l), Err(PathError::BadHostId));
        let upper = "A".repeat(32);
        assert_eq!(base32_decode(&upper), Err(PathError::BadHostId));
    }

    #[test]
    fn hostid_binds_location_and_key() {
        let k = key();
        let h1 = HostId::compute("sfs.lcs.mit.edu", &k);
        let h2 = HostId::compute("sfs.lcs.mit.edu", &k);
        assert_eq!(h1, h2);
        let h3 = HostId::compute("evil.example.com", &k);
        assert_ne!(h1, h3, "different location must change HostID");
        let mut rng = XorShiftSource::new(2);
        let other = generate_keypair(512, &mut rng).public().clone();
        let h4 = HostId::compute("sfs.lcs.mit.edu", &other);
        assert_ne!(h1, h4, "different key must change HostID");
    }

    #[test]
    fn certifies_accepts_only_matching_key() {
        let k = key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", &k);
        assert!(path.certifies(&k));
        let mut rng = XorShiftSource::new(3);
        let other = generate_keypair(512, &mut rng).public().clone();
        assert!(!path.certifies(&other));
    }

    #[test]
    fn full_path_shape() {
        let k = key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", &k);
        let full = path.full_path();
        assert!(full.starts_with("/sfs/sfs.lcs.mit.edu:"));
        assert_eq!(full.len(), "/sfs/sfs.lcs.mit.edu:".len() + 32);
    }

    #[test]
    fn parse_full_roundtrip() {
        let k = key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", &k);
        let with_rest = format!("{}/home/user/file.txt", path.full_path());
        let (parsed, rest) = SelfCertifyingPath::parse_full(&with_rest).unwrap();
        assert_eq!(parsed, path);
        assert_eq!(rest, "/home/user/file.txt");
        let (parsed2, rest2) = SelfCertifyingPath::parse_full(&path.full_path()).unwrap();
        assert_eq!(parsed2, path);
        assert_eq!(rest2, "");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SelfCertifyingPath::parse_full("/usr/bin/true").is_err());
        assert!(SelfCertifyingPath::parse_full("/sfs/no-colon-here").is_err());
        assert!(SelfCertifyingPath::parse_dir_name(":abcd").is_err());
        let bad_host = format!("host.example.com:{}", "x".repeat(31));
        assert!(SelfCertifyingPath::parse_dir_name(&bad_host).is_err());
        let bad_loc = format!("ho st:{}", "2".repeat(32));
        assert!(SelfCertifyingPath::parse_dir_name(&bad_loc).is_err());
    }

    #[test]
    fn xdr_roundtrip() {
        let k = key();
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", &k);
        let back = SelfCertifyingPath::from_xdr(&path.to_xdr()).unwrap();
        assert_eq!(back, path);
    }

    #[test]
    fn ip_address_location_accepted() {
        let name = format!("18.26.4.9:{}", "2".repeat(32));
        let p = SelfCertifyingPath::parse_dir_name(&name).unwrap();
        assert_eq!(p.location, "18.26.4.9");
    }
}

#[cfg(test)]
mod doubling_tests {
    use super::*;
    use sfs_crypto::sha1::Sha1;

    /// §2.2 footnote: "SFS actually duplicates the input to SHA-1. Any
    /// collision of the duplicate input SHA-1 is also a collision of
    /// SHA-1." Verify the HostID really hashes the marshaled HostInfo
    /// twice.
    #[test]
    fn hostid_hashes_doubled_input() {
        let key = RabinPublicKey::from_modulus(sfs_bignum::Nat::from_hex("deadbeefcafe1").unwrap());
        let mut enc = XdrEncoder::new();
        enc.put_string("HostInfo");
        enc.put_string("host.example.org");
        enc.put_opaque(&key.to_bytes());
        let once = enc.bytes().to_vec();
        let mut h = Sha1::new();
        h.update(&once);
        h.update(&once);
        let expect = HostId(h.finalize());
        assert_eq!(HostId::compute("host.example.org", &key), expect);
        // And single-input hashing would give something different.
        let mut h1 = Sha1::new();
        h1.update(&once);
        assert_ne!(expect.0, h1.finalize());
    }
}
