//! Key revocation certificates and forwarding pointers (§2.6).
//!
//! ```text
//! RevocationCert = sign_{K⁻¹}("PathRevoke", Location, K, NULL)
//! ForwardingPtr  = sign_{K⁻¹}("PathRevoke", Location, K, new-path)
//! ```
//!
//! "Revocation certificates are self-authenticating" — anyone may relay
//! them, and "a revocation certificate always overrules a forwarding
//! pointer for the same HostID." Once a client sees a valid certificate it
//! blocks every user's access to the revoked HostID; agents can
//! additionally request per-user *HostID blocking* without a certificate
//! (handled in the agent, not here, since it is a local policy decision).

use sfs_crypto::rabin::{RabinPrivateKey, RabinPublicKey, RabinSignature};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

use crate::pathname::{HostId, SelfCertifyingPath};

/// The link target that revoked paths resolve to: "both revoked and
/// blocked self-certifying pathnames become symbolic links to the
/// non-existent file" of this name, so `ls -l` reveals the revocation.
///
/// RECONSTRUCTION: the literal file name is unprintable in the paper's
/// scanned text; any reserved non-existent name preserves the behaviour.
pub const REVOKED_LINK_TARGET: &str = ":REVOKED:";

fn signed_body(location: &str, key_bytes: &[u8], target: Option<&SelfCertifyingPath>) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    enc.put_string("PathRevoke");
    enc.put_string(location);
    enc.put_opaque(key_bytes);
    // NULL distinguishes revocations from "similarly formatted forwarding
    // pointers".
    match target {
        None => {
            enc.put_bool(false);
        }
        Some(path) => {
            enc.put_bool(true);
            path.encode(&mut enc);
        }
    }
    enc.into_bytes()
}

/// A self-authenticating revocation certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationCert {
    /// Location of the revoked pathname.
    pub location: String,
    /// The revoked public key.
    pub public_key: Vec<u8>,
    /// Signature by that key over the PathRevoke body.
    pub signature: Vec<u8>,
}

impl RevocationCert {
    /// Issues a revocation for `location` under `key` (requires the
    /// private key — "key revocation happens only by permission of a file
    /// server's owner").
    pub fn issue(key: &RabinPrivateKey, location: &str) -> Self {
        let key_bytes = key.public().to_bytes();
        let body = signed_body(location, &key_bytes, None);
        let sig = key.sign(&body);
        RevocationCert {
            location: location.to_string(),
            public_key: key_bytes,
            signature: sig.to_bytes(key.public().len()),
        }
    }

    /// The HostID this certificate revokes.
    pub fn host_id(&self) -> Option<HostId> {
        let key = RabinPublicKey::from_bytes(&self.public_key).ok()?;
        Some(HostId::compute(&self.location, &key))
    }

    /// Verifies the self-authenticating signature.
    pub fn verify(&self) -> bool {
        let Ok(key) = RabinPublicKey::from_bytes(&self.public_key) else {
            return false;
        };
        let Ok(sig) = RabinSignature::from_bytes(&self.signature) else {
            return false;
        };
        let body = signed_body(&self.location, &self.public_key, None);
        key.verify(&body, &sig)
    }

    /// Whether this certificate (validly) revokes `path`.
    pub fn revokes(&self, path: &SelfCertifyingPath) -> bool {
        self.verify() && self.location == path.location && self.host_id() == Some(path.host_id)
    }
}

impl Xdr for RevocationCert {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.location);
        enc.put_opaque(&self.public_key);
        enc.put_opaque(&self.signature);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(RevocationCert {
            location: dec.get_string()?,
            public_key: dec.get_opaque()?,
            signature: dec.get_opaque()?,
        })
    }
}

/// A forwarding pointer: "one can replace the root directory of the old
/// file system with a single symbolic link or forwarding pointer to the
/// new self-certifying pathname" (§2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardingPointer {
    /// Location of the old pathname.
    pub location: String,
    /// The old public key.
    pub public_key: Vec<u8>,
    /// Where the file system now lives.
    pub new_path: SelfCertifyingPath,
    /// Signature by the old key.
    pub signature: Vec<u8>,
}

impl ForwardingPointer {
    /// Issues a forwarding pointer from `location` (under `old_key`) to
    /// `new_path`.
    pub fn issue(old_key: &RabinPrivateKey, location: &str, new_path: SelfCertifyingPath) -> Self {
        let key_bytes = old_key.public().to_bytes();
        let body = signed_body(location, &key_bytes, Some(&new_path));
        let sig = old_key.sign(&body);
        ForwardingPointer {
            location: location.to_string(),
            public_key: key_bytes,
            new_path,
            signature: sig.to_bytes(old_key.public().len()),
        }
    }

    /// The HostID being forwarded.
    pub fn host_id(&self) -> Option<HostId> {
        let key = RabinPublicKey::from_bytes(&self.public_key).ok()?;
        Some(HostId::compute(&self.location, &key))
    }

    /// Verifies the signature.
    pub fn verify(&self) -> bool {
        let Ok(key) = RabinPublicKey::from_bytes(&self.public_key) else {
            return false;
        };
        let Ok(sig) = RabinSignature::from_bytes(&self.signature) else {
            return false;
        };
        let body = signed_body(&self.location, &self.public_key, Some(&self.new_path));
        key.verify(&body, &sig)
    }

    /// Whether this pointer (validly) forwards `path`.
    pub fn forwards(&self, path: &SelfCertifyingPath) -> bool {
        self.verify() && self.location == path.location && self.host_id() == Some(path.host_id)
    }
}

impl Xdr for ForwardingPointer {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.location);
        enc.put_opaque(&self.public_key);
        self.new_path.encode(enc);
        enc.put_opaque(&self.signature);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(ForwardingPointer {
            location: dec.get_string()?,
            public_key: dec.get_opaque()?,
            new_path: SelfCertifyingPath::decode(dec)?,
            signature: dec.get_opaque()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;
    use std::sync::OnceLock;

    fn old_key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0x01D);
            generate_keypair(512, &mut rng)
        })
    }

    fn new_key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0x4E4);
            generate_keypair(512, &mut rng)
        })
    }

    #[test]
    fn revocation_verifies_and_targets_path() {
        let cert = RevocationCert::issue(old_key(), "sfs.lcs.mit.edu");
        assert!(cert.verify());
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", old_key().public());
        assert!(cert.revokes(&path));
    }

    #[test]
    fn revocation_does_not_apply_to_other_paths() {
        let cert = RevocationCert::issue(old_key(), "sfs.lcs.mit.edu");
        // Same key, different location.
        let other = SelfCertifyingPath::for_server("other.example.com", old_key().public());
        assert!(!cert.revokes(&other));
        // Same location, different key.
        let other = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", new_key().public());
        assert!(!cert.revokes(&other));
    }

    #[test]
    fn forged_revocation_rejected() {
        // An attacker without the private key cannot forge a certificate:
        // take a valid one and swap the claimed key.
        let mut cert = RevocationCert::issue(old_key(), "sfs.lcs.mit.edu");
        cert.public_key = new_key().public().to_bytes();
        assert!(!cert.verify());
        // Or tamper with the location.
        let mut cert = RevocationCert::issue(old_key(), "sfs.lcs.mit.edu");
        cert.location = "victim.example.com".into();
        assert!(!cert.verify());
    }

    #[test]
    fn forwarding_pointer_verifies() {
        let new_path = SelfCertifyingPath::for_server("new.lcs.mit.edu", new_key().public());
        let fwd = ForwardingPointer::issue(old_key(), "sfs.lcs.mit.edu", new_path.clone());
        assert!(fwd.verify());
        let old_path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", old_key().public());
        assert!(fwd.forwards(&old_path));
        assert_eq!(fwd.new_path, new_path);
    }

    #[test]
    fn forwarding_target_cannot_be_swapped() {
        let new_path = SelfCertifyingPath::for_server("new.lcs.mit.edu", new_key().public());
        let mut fwd = ForwardingPointer::issue(old_key(), "sfs.lcs.mit.edu", new_path);
        // Redirect to an attacker path: signature breaks.
        fwd.new_path = SelfCertifyingPath::for_server("evil.example.com", new_key().public());
        assert!(!fwd.verify());
    }

    #[test]
    fn revocation_and_forwarding_signatures_domain_separated() {
        // A forwarding pointer's signature must not validate as a
        // revocation (the NULL discriminant separates them).
        let new_path = SelfCertifyingPath::for_server("new.lcs.mit.edu", new_key().public());
        let fwd = ForwardingPointer::issue(old_key(), "sfs.lcs.mit.edu", new_path);
        let as_revocation = RevocationCert {
            location: fwd.location.clone(),
            public_key: fwd.public_key.clone(),
            signature: fwd.signature.clone(),
        };
        assert!(!as_revocation.verify());
    }

    #[test]
    fn xdr_roundtrips() {
        let cert = RevocationCert::issue(old_key(), "sfs.lcs.mit.edu");
        assert_eq!(RevocationCert::from_xdr(&cert.to_xdr()).unwrap(), cert);
        let new_path = SelfCertifyingPath::for_server("new.lcs.mit.edu", new_key().public());
        let fwd = ForwardingPointer::issue(old_key(), "sfs.lcs.mit.edu", new_path);
        assert_eq!(ForwardingPointer::from_xdr(&fwd.to_xdr()).unwrap(), fwd);
    }
}
