//! The SFS user-authentication protocol (Figure 4, §3.1.2).
//!
//! ```text
//! SessionID     = SHA-1("SessionInfo", k_SC, k_CS)
//! AuthInfo      = ("AuthInfo", "FS", Location, HostID, SessionID)
//! AuthID        = SHA-1(AuthInfo)
//! SignedAuthReq = ("SignedAuthReq", AuthID, SeqNo)
//! AuthMsg       = (K_U, sign_{K_U⁻¹}(SignedAuthReq))
//! ```
//!
//! The client sends AuthInfo + SeqNo to the agent; the agent signs and
//! returns an AuthMsg, which the client treats as opaque data and relays
//! through the file server to the authserver. "Sequence numbers are not
//! required for the security of user authentication … \[they\] prevent one
//! agent from using the signed authentication request of another agent on
//! the same client", and the AuthID binds the request to the secure
//! channel's session.

use sfs_crypto::rabin::{RabinPrivateKey, RabinPublicKey, RabinSignature};
use sfs_crypto::sha1::{sha1, DIGEST_LEN};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

use crate::pathname::HostId;

/// The authentication number reserved for anonymous access.
pub const AUTHNO_ANONYMOUS: u32 = 0;

/// The session/path description the client hands to the agent for signing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthInfo {
    /// Service tag; always "FS" for file-system authentication.
    pub service: String,
    /// Location of the server being accessed.
    pub location: String,
    /// HostID of the server being accessed.
    pub host_id: HostId,
    /// SessionID of the secure channel the request will travel over.
    pub session_id: [u8; DIGEST_LEN],
}

impl AuthInfo {
    /// Builds an AuthInfo for the file-system service.
    pub fn for_fs(location: &str, host_id: HostId, session_id: [u8; DIGEST_LEN]) -> Self {
        AuthInfo {
            service: "FS".to_string(),
            location: location.to_string(),
            host_id,
            session_id,
        }
    }

    /// AuthID = SHA-1 of the marshaled AuthInfo.
    pub fn auth_id(&self) -> [u8; DIGEST_LEN] {
        let mut enc = XdrEncoder::new();
        enc.put_string("AuthInfo");
        enc.put_string(&self.service);
        enc.put_string(&self.location);
        self.host_id.encode(&mut enc);
        enc.put_opaque_fixed(&self.session_id);
        sha1(enc.bytes())
    }
}

impl Xdr for AuthInfo {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.service);
        enc.put_string(&self.location);
        self.host_id.encode(enc);
        enc.put_opaque_fixed(&self.session_id);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(AuthInfo {
            service: dec.get_string()?,
            location: dec.get_string()?,
            host_id: HostId::decode(dec)?,
            session_id: dec
                .get_opaque_fixed(DIGEST_LEN)?
                .try_into()
                .expect("length checked"),
        })
    }
}

/// The marshaled bytes an agent signs.
fn signed_auth_req_bytes(auth_id: &[u8; DIGEST_LEN], seq_no: u32) -> Vec<u8> {
    let mut enc = XdrEncoder::new();
    enc.put_string("SignedAuthReq");
    enc.put_opaque_fixed(auth_id);
    enc.put_u32(seq_no);
    enc.into_bytes()
}

/// The opaque authentication message an agent produces.
///
/// "The client treats this authentication message as opaque data" — only
/// the authserver interprets it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthMsg {
    /// The user's public key.
    pub user_key: Vec<u8>,
    /// Signature over the SignedAuthReq.
    pub signature: Vec<u8>,
}

impl AuthMsg {
    /// Agent side: sign an authentication request.
    ///
    /// The request records, per §2.5.1, enough for "a full audit trail of
    /// every private key operation" — callers log the AuthInfo alongside.
    pub fn sign(user_key: &RabinPrivateKey, auth_info: &AuthInfo, seq_no: u32) -> AuthMsg {
        let body = signed_auth_req_bytes(&auth_info.auth_id(), seq_no);
        let sig = user_key.sign(&body);
        AuthMsg {
            user_key: user_key.public().to_bytes(),
            signature: sig.to_bytes(user_key.public().len()),
        }
    }

    /// Authserver side: verify the signature and return the signer's
    /// public key.
    ///
    /// The caller must separately check that `auth_id` matches the session
    /// and that `seq_no` is fresh (see [`SeqWindow`]).
    pub fn verify(
        &self,
        auth_id: &[u8; DIGEST_LEN],
        seq_no: u32,
    ) -> Result<RabinPublicKey, AuthError> {
        let key = RabinPublicKey::from_bytes(&self.user_key).map_err(|_| AuthError::BadKey)?;
        let sig =
            RabinSignature::from_bytes(&self.signature).map_err(|_| AuthError::BadSignature)?;
        let body = signed_auth_req_bytes(auth_id, seq_no);
        if key.verify(&body, &sig) {
            Ok(key)
        } else {
            Err(AuthError::BadSignature)
        }
    }
}

impl Xdr for AuthMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(&self.user_key);
        enc.put_opaque(&self.signature);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(AuthMsg {
            user_key: dec.get_opaque()?,
            signature: dec.get_opaque()?,
        })
    }
}

/// User-authentication failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The public key failed to parse.
    BadKey,
    /// The signature failed to parse or verify.
    BadSignature,
    /// The sequence number was already used (or fell outside the window).
    ReplayedSeqNo,
    /// The AuthID does not match this session.
    WrongSession,
    /// The key is not registered with the authserver.
    UnknownUser,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::BadKey => write!(f, "malformed user public key"),
            AuthError::BadSignature => write!(f, "bad authentication signature"),
            AuthError::ReplayedSeqNo => write!(f, "replayed sequence number"),
            AuthError::WrongSession => write!(f, "AuthID does not match session"),
            AuthError::UnknownUser => write!(f, "public key not registered"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Sequence-number freshness tracking.
///
/// "The server accepts out-of-order sequence numbers within a reasonable
/// window to accommodate the possibility of multiple agents on the client
/// returning out of order" (§3.1.2 footnote).
#[derive(Debug, Clone)]
pub struct SeqWindow {
    /// Highest sequence number accepted.
    high: u64,
    /// Bitmap of accepted numbers in `(high - WINDOW, high]`.
    seen: u64,
    window: u32,
}

impl SeqWindow {
    /// Creates a window accepting up to `window` out-of-order numbers
    /// (max 64).
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or greater than 64.
    pub fn new(window: u32) -> Self {
        assert!((1..=64).contains(&window), "window must be 1-64");
        SeqWindow {
            high: 0,
            seen: 0,
            window,
        }
    }

    /// Attempts to accept `seq`; returns `false` for duplicates and
    /// numbers older than the window.
    pub fn accept(&mut self, seq: u32) -> bool {
        let seq = seq as u64 + 1; // Shift so 0 means "nothing seen".
        if seq > self.high {
            let shift = seq - self.high;
            self.seen = if shift >= 64 { 0 } else { self.seen << shift };
            self.seen |= 1;
            self.high = seq;
            return true;
        }
        let age = self.high - seq;
        if age >= self.window as u64 {
            return false;
        }
        let bit = 1u64 << age;
        if self.seen & bit != 0 {
            return false;
        }
        self.seen |= bit;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;
    use std::sync::OnceLock;

    fn user_key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0xA11CE);
            generate_keypair(512, &mut rng)
        })
    }

    fn auth_info() -> AuthInfo {
        AuthInfo::for_fs("sfs.lcs.mit.edu", HostId([3u8; 20]), [7u8; 20])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let info = auth_info();
        let msg = AuthMsg::sign(user_key(), &info, 1);
        let key = msg.verify(&info.auth_id(), 1).unwrap();
        assert_eq!(&key, user_key().public());
    }

    #[test]
    fn wrong_seqno_rejected() {
        let info = auth_info();
        let msg = AuthMsg::sign(user_key(), &info, 1);
        assert_eq!(
            msg.verify(&info.auth_id(), 2).unwrap_err(),
            AuthError::BadSignature
        );
    }

    #[test]
    fn wrong_session_rejected() {
        // The same user+seqno signed for one session must not verify for
        // another (AuthID binds the SessionID).
        let info1 = auth_info();
        let info2 = AuthInfo::for_fs("sfs.lcs.mit.edu", HostId([3u8; 20]), [8u8; 20]);
        assert_ne!(info1.auth_id(), info2.auth_id());
        let msg = AuthMsg::sign(user_key(), &info1, 1);
        assert!(msg.verify(&info2.auth_id(), 1).is_err());
    }

    #[test]
    fn auth_id_binds_every_field() {
        let base = auth_info();
        let mut other = base.clone();
        other.location = "evil.example.com".into();
        assert_ne!(base.auth_id(), other.auth_id());
        let mut other = base.clone();
        other.host_id = HostId([4u8; 20]);
        assert_ne!(base.auth_id(), other.auth_id());
        let mut other = base.clone();
        other.service = "MAIL".into();
        assert_ne!(base.auth_id(), other.auth_id());
    }

    #[test]
    fn tampered_signature_rejected() {
        let info = auth_info();
        let mut msg = AuthMsg::sign(user_key(), &info, 5);
        let n = msg.signature.len();
        msg.signature[n / 2] ^= 1;
        assert!(msg.verify(&info.auth_id(), 5).is_err());
    }

    #[test]
    fn xdr_roundtrip() {
        let info = auth_info();
        assert_eq!(AuthInfo::from_xdr(&info.to_xdr()).unwrap(), info);
        let msg = AuthMsg::sign(user_key(), &info, 9);
        assert_eq!(AuthMsg::from_xdr(&msg.to_xdr()).unwrap(), msg);
    }

    #[test]
    fn seq_window_monotonic() {
        let mut w = SeqWindow::new(8);
        assert!(w.accept(0));
        assert!(w.accept(1));
        assert!(w.accept(2));
        assert!(!w.accept(1), "duplicate");
        assert!(!w.accept(0), "duplicate");
    }

    #[test]
    fn seq_window_out_of_order_within_window() {
        let mut w = SeqWindow::new(8);
        assert!(w.accept(10));
        assert!(w.accept(7), "within window");
        assert!(w.accept(9));
        assert!(!w.accept(7), "duplicate within window");
        assert!(!w.accept(2), "older than window");
    }

    #[test]
    fn seq_window_large_jump() {
        let mut w = SeqWindow::new(8);
        assert!(w.accept(5));
        assert!(w.accept(1000));
        assert!(!w.accept(5), "5 is far outside the window now");
        assert!(w.accept(999));
    }

    #[test]
    #[should_panic(expected = "window must be 1-64")]
    fn oversized_window_panics() {
        let _ = SeqWindow::new(65);
    }

    /// xorshift64* for the hand-rolled property tests below (the
    /// workspace deliberately has no external property-testing
    /// dependency).
    fn prop_rng(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn seq_window_matches_reference_model() {
        // Property: for any arrival order, `accept` agrees with the
        // obvious reference model — accept iff the number is newer than
        // everything seen, or within the window and not yet seen.
        // Duplicates rejected, reorders within the window accepted,
        // stragglers beyond the window rejected — all fall out of the
        // model.
        for seed in 1..=20u64 {
            for window in [1u32, 2, 8, 32, 64] {
                let mut w = SeqWindow::new(window);
                let mut state = seed.wrapping_mul(0x9E37_79B9) | 1;
                // Shifted domain (seq + 1) so 0 means "nothing seen yet",
                // mirroring the implementation's encoding.
                let mut high = 0u64;
                let mut seen = std::collections::HashSet::new();
                for _ in 0..2000 {
                    let r = prop_rng(&mut state);
                    // Mostly cluster near the current high so duplicates,
                    // in-window reorders, and beyond-window stragglers
                    // all occur; occasionally jump far ahead.
                    let seq = if r.is_multiple_of(7) {
                        (prop_rng(&mut state) % 100_000) as u32
                    } else {
                        (high as i64 + (r % 129) as i64 - 64).max(0) as u32
                    };
                    let shifted = seq as u64 + 1;
                    let expect = if shifted > high {
                        true
                    } else if high - shifted >= window as u64 {
                        false
                    } else {
                        !seen.contains(&shifted)
                    };
                    assert_eq!(
                        w.accept(seq),
                        expect,
                        "seed {seed} window {window} seq {seq} high {high}"
                    );
                    if expect {
                        seen.insert(shifted);
                        high = high.max(shifted);
                    }
                }
            }
        }
    }

    #[test]
    fn seq_window_never_accepts_a_duplicate() {
        // Property: a sequence number accepted once is never accepted
        // again, whatever arrives in between — the §3.1.3 freshness
        // guarantee the server's replay gate depends on.
        for seed in 1..=10u64 {
            let mut w = SeqWindow::new(32);
            let mut state = seed.wrapping_mul(0x00C0_FFEE) | 1;
            let mut accepted = std::collections::HashSet::new();
            for _ in 0..3000 {
                let seq = (prop_rng(&mut state) % 500) as u32;
                if w.accept(seq) {
                    assert!(
                        accepted.insert(seq),
                        "seq {seq} accepted twice (seed {seed})"
                    );
                }
            }
        }
    }
}
