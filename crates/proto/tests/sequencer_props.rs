//! Property tests: `FrameSequencer` preserves channel order under
//! adversarial completion schedules.
//!
//! Under multi-core dispatch, seal/open *completions* can arrive in any
//! order — a frame scheduled on a fast core finishes before its
//! predecessor on a busy one, retransmissions inject duplicates, and the
//! wire reorders on top. The cipher, however, is position-sensitive:
//! frames must be decrypted strictly in channel-sequence order. The
//! `FrameSequencer` is the discipline that guarantees this; these
//! properties drive it with ≥1k seeded adversarial schedules and assert
//! the drain order is exactly the seal order, every frame exactly once.

use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_proto::channel::{FrameSequencer, SeqPush};

fn next_u64(rng: &mut XorShiftSource) -> u64 {
    let mut b = [0u8; 8];
    rng.fill(&mut b);
    u64::from_le_bytes(b)
}

fn next_below(rng: &mut XorShiftSource, bound: u64) -> u64 {
    next_u64(rng) % bound.max(1)
}

/// One adversarial delivery schedule: `window` frames sealed in channel
/// order 0..window, delivered in a seeded permutation with seeded
/// duplicate injections (both of not-yet-consumed and already-consumed
/// frames), drained via the server discipline (`take(expected)` loop
/// after every `Buffered` push).
fn run_schedule(seed: u64) -> (usize, usize) {
    let mut rng = XorShiftSource::new(seed);
    let window = 1 + next_below(&mut rng, 32) as usize;
    let capacity = window.max(1 + next_below(&mut rng, 64) as usize);
    let frames: Vec<(u64, u32, Vec<u8>)> = (0..window)
        .map(|i| {
            let mut body = vec![0u8; 1 + next_below(&mut rng, 24) as usize];
            rng.fill(&mut body);
            (i as u64, i as u32, body)
        })
        .collect();

    // The completion schedule: every frame at least once, plus
    // duplicates, in a seeded shuffle. Workers finishing out of order
    // are exactly a permutation of delivery.
    let mut schedule: Vec<usize> = (0..window).collect();
    let dups = next_below(&mut rng, 1 + window as u64 / 2) as usize;
    for _ in 0..dups {
        let pick = next_below(&mut rng, window as u64) as usize;
        schedule.push(pick);
    }
    for i in (1..schedule.len()).rev() {
        let j = next_below(&mut rng, (i + 1) as u64) as usize;
        schedule.swap(i, j);
    }

    let mut seq = FrameSequencer::new(capacity);
    let mut expected = 0u64;
    let mut drained: Vec<(u64, u32, Vec<u8>)> = Vec::new();
    let mut replays_after_consume = 0usize;
    for &i in &schedule {
        let (chanseq, xid, body) = &frames[i];
        match seq.push(*chanseq, *xid, body.clone(), expected) {
            SeqPush::Buffered => {
                while let Some((xid, frame)) = seq.take(expected) {
                    drained.push((expected, xid, frame));
                    expected += 1;
                }
            }
            SeqPush::Duplicate => {
                // Either a second copy of a still-buffered frame (it
                // answers when the gap fills) or a replay of a consumed
                // one (the reply cache answers it).
                if *chanseq < expected {
                    replays_after_consume += 1;
                } else {
                    assert!(
                        *chanseq >= expected,
                        "seed {seed}: duplicate verdict for an undelivered frame"
                    );
                }
            }
            SeqPush::Overflow => panic!(
                "seed {seed}: overflow on a schedule that never exceeds \
                 capacity {capacity} (window {window})"
            ),
        }
    }

    assert_eq!(
        expected, window as u64,
        "seed {seed}: not every frame was drained"
    );
    assert!(seq.is_empty(), "seed {seed}: frames left buffered");
    for (pos, (chanseq, xid, body)) in drained.iter().enumerate() {
        assert_eq!(*chanseq, pos as u64, "seed {seed}: drain out of order");
        let (want_seq, want_xid, want_body) = &frames[pos];
        assert_eq!((chanseq, xid), (want_seq, want_xid), "seed {seed}");
        assert_eq!(body, want_body, "seed {seed}: frame bytes mangled");
    }
    (window, replays_after_consume)
}

#[test]
fn order_preserved_under_adversarial_completion_schedules() {
    let mut total_frames = 0usize;
    let mut total_replays = 0usize;
    for seed in 0..1200u64 {
        let (frames, replays) = run_schedule(0xC0DE_0000 + seed);
        total_frames += frames;
        total_replays += replays;
    }
    assert!(
        total_frames > 10_000,
        "schedules too small to mean anything"
    );
    assert!(
        total_replays > 0,
        "no schedule ever replayed a consumed frame — the duplicate arm is untested"
    );
}

#[test]
fn overflow_is_detected_and_leaves_state_intact() {
    for seed in 0..64u64 {
        let mut rng = XorShiftSource::new(0xBAD_0000 + seed);
        let capacity = 1 + next_below(&mut rng, 16) as usize;
        let mut seq = FrameSequencer::new(capacity);
        // Fill some slots ahead of the expected position.
        let buffered = next_below(&mut rng, capacity as u64);
        for i in 0..buffered {
            assert_eq!(seq.push(1 + i, i as u32, vec![0xAA], 0), SeqPush::Buffered);
        }
        let len_before = seq.len();
        // A frame at or past expected + capacity must overflow without
        // disturbing what's buffered.
        let beyond = capacity as u64 + next_below(&mut rng, 8);
        assert_eq!(seq.push(beyond, 99, vec![0xBB], 0), SeqPush::Overflow);
        assert_eq!(seq.len(), len_before);
    }
}

#[test]
fn first_frame_wins_position_collisions() {
    // Retransmitted frames are byte-identical in the real protocol, so
    // first-wins is safe; the property here is just that the second copy
    // is reported as a duplicate and the first copy's bytes survive.
    let mut seq = FrameSequencer::new(8);
    assert_eq!(seq.push(2, 7, vec![1, 2, 3], 0), SeqPush::Buffered);
    assert_eq!(seq.push(2, 7, vec![9, 9, 9], 0), SeqPush::Duplicate);
    assert_eq!(seq.push(0, 5, vec![0], 0), SeqPush::Buffered);
    assert_eq!(seq.take(0), Some((5, vec![0])));
    assert_eq!(seq.take(1), None, "gap must stop the drain");
    assert_eq!(seq.push(1, 6, vec![4], 1), SeqPush::Buffered);
    assert_eq!(seq.take(1), Some((6, vec![4])));
    assert_eq!(seq.take(2), Some((7, vec![1, 2, 3])));
}
