//! An in-memory, FFS-like Unix file system over a simulated disk.
//!
//! In the paper's deployment, the SFS server "acts as an NFS client, passing
//! the request to an NFS server on the same machine" (§3), which stores data
//! in FreeBSD's FFS; the client side hands NFS RPCs to the kernel. This
//! crate is that substrate: a complete Unix file-system semantics layer —
//! inodes, directories, symbolic and hard links, permissions, uid/gid
//! ownership, timestamps, device/inode numbers — with FFS-style cost
//! accounting against [`sfs_sim::SimDisk`] (synchronous metadata updates,
//! write-behind data).
//!
//! It serves three roles in the reproduction:
//! - the backing store behind the NFS3 server (`sfs-nfs3`),
//! - the "Local" baseline in every §4 benchmark,
//! - the namespace in which symlink-based key management (§2.4) lives.

pub mod fs;
pub mod types;

pub use fs::Vfs;
pub use types::{AccessMode, Attr, Credentials, FileType, FsError, FsResult, Ino, SetAttr};
