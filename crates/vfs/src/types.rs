//! Common file-system types: attributes, credentials, and errors.

/// An inode number.
pub type Ino = u64;

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

/// File-system errors, aligned with the NFS3 status codes they map to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory (NFS3ERR_NOENT).
    NotFound,
    /// File exists (NFS3ERR_EXIST).
    Exists,
    /// Not a directory (NFS3ERR_NOTDIR).
    NotDir,
    /// Is a directory (NFS3ERR_ISDIR).
    IsDir,
    /// Directory not empty (NFS3ERR_NOTEMPTY).
    NotEmpty,
    /// Permission denied by mode bits (NFS3ERR_ACCES).
    Access,
    /// Operation not permitted (ownership required; NFS3ERR_PERM).
    Perm,
    /// Name too long (NFS3ERR_NAMETOOLONG).
    NameTooLong,
    /// Invalid argument, e.g. bad name or offset (NFS3ERR_INVAL).
    Invalid,
    /// Stale file handle — the file was deleted (NFS3ERR_STALE).
    Stale,
    /// The file system is read-only (NFS3ERR_ROFS).
    ReadOnly,
    /// Too many hard links (NFS3ERR_MLINK).
    TooManyLinks,
    /// Operation only valid on a symlink / value is not a symlink.
    NotSymlink,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file or directory",
            FsError::Exists => "file exists",
            FsError::NotDir => "not a directory",
            FsError::IsDir => "is a directory",
            FsError::NotEmpty => "directory not empty",
            FsError::Access => "permission denied",
            FsError::Perm => "operation not permitted",
            FsError::NameTooLong => "file name too long",
            FsError::Invalid => "invalid argument",
            FsError::Stale => "stale file handle",
            FsError::ReadOnly => "read-only file system",
            FsError::TooManyLinks => "too many links",
            FsError::NotSymlink => "not a symbolic link",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for FsError {}

/// The type of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

/// File attributes (the information NFS3's `fattr3` carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// File type.
    pub ftype: FileType,
    /// Permission bits (low 12 bits of the Unix mode).
    pub mode: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// Device number of the containing file system ("by assigning each
    /// file system its own device number, this scheme prevents a malicious
    /// server from tricking the pwd command", §3.3).
    pub fsid: u64,
    /// Inode number.
    pub fileid: Ino,
    /// Access time, ns.
    pub atime: u64,
    /// Modification time, ns.
    pub mtime: u64,
    /// Attribute-change time, ns.
    pub ctime: u64,
}

/// Selective attribute update (NFS3 `sattr3`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// New mode bits.
    pub mode: Option<u32>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// Truncate/extend to this size.
    pub size: Option<u64>,
    /// Set access time.
    pub atime: Option<u64>,
    /// Set modification time.
    pub mtime: Option<u64>,
}

/// Unix credentials attached to every operation.
///
/// On an SFS server these are produced by the authserver from the user's
/// public key (§2.5.1: "authserv replies with a set of Unix credentials — a
/// user ID and list of group IDs"); anonymous access uses
/// [`Credentials::anonymous`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Effective uid.
    pub uid: u32,
    /// Group list (first entry is the effective gid).
    pub gids: Vec<u32>,
}

impl Credentials {
    /// Root credentials (bypass permission checks).
    pub fn root() -> Self {
        Credentials {
            uid: 0,
            gids: vec![0],
        }
    }

    /// An ordinary user.
    pub fn user(uid: u32, gid: u32) -> Self {
        Credentials {
            uid,
            gids: vec![gid],
        }
    }

    /// The anonymous "nobody" credentials SFS uses for authentication
    /// number zero (§3.1.2).
    pub fn anonymous() -> Self {
        Credentials {
            uid: u32::MAX - 2,
            gids: vec![u32::MAX - 2],
        }
    }

    /// Whether these credentials carry `gid`.
    pub fn in_group(&self, gid: u32) -> bool {
        self.gids.contains(&gid)
    }

    /// Whether this is the superuser.
    pub fn is_root(&self) -> bool {
        self.uid == 0
    }
}

/// Access bits for permission checks (a simplified NFS3 ACCESS mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read file data or list a directory.
    Read,
    /// Write file data or modify a directory.
    Write,
    /// Execute a file or search a directory.
    Execute,
}

impl Attr {
    /// Checks `mode`-bit permission for `creds` (root bypasses).
    pub fn permits(&self, creds: &Credentials, access: AccessMode) -> bool {
        if creds.is_root() {
            return true;
        }
        let shift = if creds.uid == self.uid {
            6
        } else if creds.in_group(self.gid) {
            3
        } else {
            0
        };
        let bit = match access {
            AccessMode::Read => 4,
            AccessMode::Write => 2,
            AccessMode::Execute => 1,
        };
        (self.mode >> shift) & bit != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(mode: u32, uid: u32, gid: u32) -> Attr {
        Attr {
            ftype: FileType::Regular,
            mode,
            nlink: 1,
            uid,
            gid,
            size: 0,
            fsid: 1,
            fileid: 2,
            atime: 0,
            mtime: 0,
            ctime: 0,
        }
    }

    #[test]
    fn owner_class_selected() {
        let a = attr(0o700, 1000, 100);
        let owner = Credentials::user(1000, 999);
        assert!(a.permits(&owner, AccessMode::Read));
        assert!(a.permits(&owner, AccessMode::Write));
        assert!(a.permits(&owner, AccessMode::Execute));
        let other = Credentials::user(1001, 999);
        assert!(!a.permits(&other, AccessMode::Read));
    }

    #[test]
    fn group_class_selected() {
        let a = attr(0o040, 1000, 100);
        let member = Credentials {
            uid: 2000,
            gids: vec![5, 100],
        };
        assert!(a.permits(&member, AccessMode::Read));
        assert!(!a.permits(&member, AccessMode::Write));
        let nonmember = Credentials::user(2000, 5);
        assert!(!a.permits(&nonmember, AccessMode::Read));
    }

    #[test]
    fn owner_class_shadows_other() {
        // Classic Unix semantics: the owner gets the owner bits even when
        // the "other" bits are more permissive.
        let a = attr(0o007, 1000, 100);
        let owner = Credentials::user(1000, 100);
        assert!(!a.permits(&owner, AccessMode::Read));
        let stranger = Credentials::user(3000, 300);
        assert!(stranger.uid != a.uid);
        assert!(a.permits(&stranger, AccessMode::Read));
    }

    #[test]
    fn root_bypasses() {
        let a = attr(0o000, 1000, 100);
        assert!(a.permits(&Credentials::root(), AccessMode::Write));
    }

    #[test]
    fn anonymous_is_not_root() {
        assert!(!Credentials::anonymous().is_root());
    }
}
