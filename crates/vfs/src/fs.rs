//! The file-system implementation.
//!
//! A [`Vfs`] is a forest of inodes rooted at a single directory, with
//! FFS-style cost accounting: metadata updates (create, remove, rename,
//! mkdir) are synchronous disk writes; file data goes through write-behind
//! and is flushed on `commit` (NFS3 COMMIT / close). All operations take
//! [`Credentials`] and enforce Unix permissions.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use sfs_sim::{SimClock, SimDisk};
use sfs_telemetry::sync::Mutex;

use crate::types::{AccessMode, Attr, Credentials, FileType, FsError, FsResult, Ino, SetAttr};

/// Maximum file-name length (FFS's NAME_MAX).
pub const NAME_MAX: usize = 255;

/// Maximum hard-link count (FFS's LINK_MAX).
pub const LINK_MAX: u32 = 32767;

#[derive(Debug, Clone)]
enum Content {
    Regular(Vec<u8>),
    Directory(BTreeMap<String, Ino>),
    Symlink(String),
}

#[derive(Debug, Clone)]
struct Inode {
    mode: u32,
    nlink: u32,
    uid: u32,
    gid: u32,
    atime: u64,
    mtime: u64,
    ctime: u64,
    content: Content,
}

impl Inode {
    fn ftype(&self) -> FileType {
        match self.content {
            Content::Regular(_) => FileType::Regular,
            Content::Directory(_) => FileType::Directory,
            Content::Symlink(_) => FileType::Symlink,
        }
    }

    fn size(&self) -> u64 {
        match &self.content {
            Content::Regular(d) => d.len() as u64,
            Content::Directory(entries) => (entries.len() as u64 + 2) * 32,
            Content::Symlink(target) => target.len() as u64,
        }
    }
}

#[derive(Debug)]
struct VfsInner {
    inodes: BTreeMap<Ino, Inode>,
    next_ino: Ino,
    root: Ino,
    /// Inodes whose data is *not* in the server's buffer cache; the first
    /// read of a cold inode pays disk costs, after which it is warm.
    /// Freshly written data is always warm (write-behind buffers it).
    cold: BTreeSet<Ino>,
}

/// An in-memory Unix file system.
///
/// Clones share state (the handle is cheap to pass between the NFS server
/// and tests).
#[derive(Debug, Clone)]
pub struct Vfs {
    inner: Arc<Mutex<VfsInner>>,
    clock: SimClock,
    disk: Option<SimDisk>,
    /// Exported as the `fsid` in attributes; SFS gives every mount point
    /// its own device number (§3.3).
    fsid: u64,
    read_only: bool,
}

impl Vfs {
    /// Creates a file system with a mode-0755 root owned by root.
    pub fn new(fsid: u64, clock: SimClock) -> Self {
        let mut inodes = BTreeMap::new();
        inodes.insert(
            1,
            Inode {
                mode: 0o755,
                nlink: 2,
                uid: 0,
                gid: 0,
                atime: 0,
                mtime: 0,
                ctime: 0,
                content: Content::Directory(BTreeMap::new()),
            },
        );
        Vfs {
            inner: Arc::new(Mutex::new(VfsInner {
                inodes,
                next_ino: 2,
                root: 1,
                cold: BTreeSet::new(),
            })),
            clock,
            disk: None,
            fsid,
            read_only: false,
        }
    }

    /// Attaches a simulated disk so operations accrue I/O costs.
    pub fn with_disk(mut self, disk: SimDisk) -> Self {
        self.disk = Some(disk);
        self
    }

    /// The attached simulated disk, if any (clones share state). A
    /// multi-core scheduler uses this to put the disk in tally mode
    /// around dispatch.
    pub fn disk(&self) -> Option<&SimDisk> {
        self.disk.as_ref()
    }

    /// Marks the file system read-only (used for replicated read-only
    /// exports, §2.4).
    pub fn set_read_only(&mut self, ro: bool) {
        self.read_only = ro;
    }

    /// Whether the file system is read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The root inode number.
    pub fn root(&self) -> Ino {
        self.inner.lock().root
    }

    /// The file system id / device number.
    pub fn fsid(&self) -> u64 {
        self.fsid
    }

    /// The clock used for timestamps and disk accounting.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn now(&self) -> u64 {
        self.clock.now().as_nanos()
    }

    fn charge_meta_write(&self, ino: Ino) {
        if let Some(d) = &self.disk {
            d.write_sync(ino * 16, 512);
        }
    }

    fn charge_data_read(&self, ino: Ino, off: u64, len: usize) {
        if let Some(d) = &self.disk {
            d.read(ino * 16 + off / 8192, len);
        }
    }

    fn charge_data_write(&self, ino: Ino, off: u64, len: usize, sync: bool) {
        if let Some(d) = &self.disk {
            if sync {
                d.write_sync(ino * 16 + off / 8192, len);
            } else {
                d.write_async(len);
            }
        }
    }

    /// Flushes write-behind data (NFS3 COMMIT).
    pub fn commit(&self) {
        if let Some(d) = &self.disk {
            d.flush();
        }
    }

    /// Evicts an inode from the (modeled) buffer cache so its next read
    /// pays disk costs. Benchmarks use this to start phases cold.
    pub fn mark_cold(&self, ino: Ino) {
        self.inner.lock().cold.insert(ino);
    }

    /// Marks every current inode cold.
    pub fn mark_all_cold(&self) {
        let mut inner = self.inner.lock();
        let all: Vec<Ino> = inner.inodes.keys().copied().collect();
        inner.cold.extend(all);
    }

    fn check_name(name: &str) -> FsResult<()> {
        if name.is_empty() || name == "." || name == ".." || name.contains('/') {
            return Err(FsError::Invalid);
        }
        if name.len() > NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        Ok(())
    }

    fn attr_of(&self, ino: Ino, inode: &Inode) -> Attr {
        Attr {
            ftype: inode.ftype(),
            mode: inode.mode,
            nlink: inode.nlink,
            uid: inode.uid,
            gid: inode.gid,
            size: inode.size(),
            fsid: self.fsid,
            fileid: ino,
            atime: inode.atime,
            mtime: inode.mtime,
            ctime: inode.ctime,
        }
    }

    /// Returns the attributes of `ino`.
    pub fn getattr(&self, ino: Ino) -> FsResult<Attr> {
        let inner = self.inner.lock();
        let inode = inner.inodes.get(&ino).ok_or(FsError::Stale)?;
        Ok(self.attr_of(ino, inode))
    }

    /// Applies a selective attribute update.
    pub fn setattr(&self, creds: &Credentials, ino: Ino, set: SetAttr) -> FsResult<Attr> {
        self.write_guard()?;
        let now = self.now();
        let mut inner = self.inner.lock();
        let inode = inner.inodes.get_mut(&ino).ok_or(FsError::Stale)?;
        // chmod/chown require ownership; truncation requires write
        // permission; root may do anything.
        let is_owner = creds.is_root() || creds.uid == inode.uid;
        if (set.mode.is_some() || set.uid.is_some() || set.gid.is_some()) && !is_owner {
            return Err(FsError::Perm);
        }
        if let Some(uid) = set.uid {
            if uid != inode.uid && !creds.is_root() {
                return Err(FsError::Perm);
            }
        }
        if set.size.is_some() {
            let attr = self.attr_of(ino, inode);
            if !attr.permits(creds, AccessMode::Write) {
                return Err(FsError::Access);
            }
        }
        if let Some(m) = set.mode {
            inode.mode = m & 0o7777;
        }
        if let Some(u) = set.uid {
            inode.uid = u;
        }
        if let Some(g) = set.gid {
            inode.gid = g;
        }
        if let Some(sz) = set.size {
            match &mut inode.content {
                Content::Regular(data) => data.resize(sz as usize, 0),
                _ => return Err(FsError::IsDir),
            }
            inode.mtime = now;
        }
        if let Some(a) = set.atime {
            inode.atime = a;
        }
        if let Some(m) = set.mtime {
            inode.mtime = m;
        }
        inode.ctime = now;
        let attr = self.attr_of(ino, inode);
        drop(inner);
        self.charge_meta_write(ino);
        Ok(attr)
    }

    /// Checks whether `creds` may access `ino` in the given mode (NFS3
    /// ACCESS).
    pub fn access(&self, creds: &Credentials, ino: Ino, access: AccessMode) -> FsResult<bool> {
        Ok(self.getattr(ino)?.permits(creds, access))
    }

    /// Looks up `name` in directory `dir`.
    pub fn lookup(&self, creds: &Credentials, dir: Ino, name: &str) -> FsResult<(Ino, Attr)> {
        let inner = self.inner.lock();
        let dnode = inner.inodes.get(&dir).ok_or(FsError::Stale)?;
        let dattr = self.attr_of(dir, dnode);
        if dattr.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if !dattr.permits(creds, AccessMode::Execute) {
            return Err(FsError::Access);
        }
        if name == "." {
            return Ok((dir, dattr));
        }
        let entries = match &dnode.content {
            Content::Directory(e) => e,
            _ => unreachable!("type checked above"),
        };
        let ino = *entries.get(name).ok_or(FsError::NotFound)?;
        let inode = inner.inodes.get(&ino).ok_or(FsError::Stale)?;
        Ok((ino, self.attr_of(ino, inode)))
    }

    /// Resolves a `/`-separated path from the root, following no symlinks
    /// (callers — the SFS client — implement symlink traversal themselves,
    /// which is where agents interpose, §2.3).
    pub fn lookup_path(&self, creds: &Credentials, path: &str) -> FsResult<(Ino, Attr)> {
        let mut cur = self.root();
        let mut attr = self.getattr(cur)?;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let (ino, a) = self.lookup(creds, cur, part)?;
            cur = ino;
            attr = a;
        }
        Ok((cur, attr))
    }

    fn write_guard(&self) -> FsResult<()> {
        if self.read_only {
            Err(FsError::ReadOnly)
        } else {
            Ok(())
        }
    }

    fn alloc_inode(
        inner: &mut VfsInner,
        creds: &Credentials,
        mode: u32,
        now: u64,
        content: Content,
    ) -> Ino {
        let ino = inner.next_ino;
        inner.next_ino += 1;
        let nlink = if matches!(content, Content::Directory(_)) {
            2
        } else {
            1
        };
        inner.inodes.insert(
            ino,
            Inode {
                mode: mode & 0o7777,
                nlink,
                uid: creds.uid,
                gid: creds.gids.first().copied().unwrap_or(0),
                atime: now,
                mtime: now,
                ctime: now,
                content,
            },
        );
        ino
    }

    fn dir_insert(
        &self,
        creds: &Credentials,
        dir: Ino,
        name: &str,
        mode: u32,
        content: Content,
    ) -> FsResult<(Ino, Attr)> {
        self.write_guard()?;
        Self::check_name(name)?;
        let now = self.now();
        let mut inner = self.inner.lock();
        let dnode = inner.inodes.get(&dir).ok_or(FsError::Stale)?;
        let dattr = self.attr_of(dir, dnode);
        if dattr.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if !dattr.permits(creds, AccessMode::Write) {
            return Err(FsError::Access);
        }
        if let Content::Directory(entries) = &dnode.content {
            if entries.contains_key(name) {
                return Err(FsError::Exists);
            }
        }
        let is_dir = matches!(content, Content::Directory(_));
        let ino = Self::alloc_inode(&mut inner, creds, mode, now, content);
        let dnode = inner.inodes.get_mut(&dir).unwrap();
        if let Content::Directory(entries) = &mut dnode.content {
            entries.insert(name.to_string(), ino);
        }
        dnode.mtime = now;
        dnode.ctime = now;
        if is_dir {
            dnode.nlink += 1;
        }
        let inode = inner.inodes.get(&ino).unwrap();
        let attr = self.attr_of(ino, inode);
        drop(inner);
        // FFS writes the new inode and the directory block synchronously.
        self.charge_meta_write(dir);
        self.charge_meta_write(ino);
        Ok((ino, attr))
    }

    /// Creates a regular file.
    pub fn create(
        &self,
        creds: &Credentials,
        dir: Ino,
        name: &str,
        mode: u32,
    ) -> FsResult<(Ino, Attr)> {
        self.dir_insert(creds, dir, name, mode, Content::Regular(Vec::new()))
    }

    /// Creates a directory.
    pub fn mkdir(
        &self,
        creds: &Credentials,
        dir: Ino,
        name: &str,
        mode: u32,
    ) -> FsResult<(Ino, Attr)> {
        self.dir_insert(creds, dir, name, mode, Content::Directory(BTreeMap::new()))
    }

    /// Creates a symbolic link with the given target string.
    ///
    /// Symlinks are SFS's key-certification primitive: "Symbolic links
    /// assign human-readable names to self-certifying pathnames" (§1).
    pub fn symlink(
        &self,
        creds: &Credentials,
        dir: Ino,
        name: &str,
        target: &str,
    ) -> FsResult<(Ino, Attr)> {
        self.dir_insert(
            creds,
            dir,
            name,
            0o777,
            Content::Symlink(target.to_string()),
        )
    }

    /// Reads a symlink's target.
    pub fn readlink(&self, ino: Ino) -> FsResult<String> {
        let inner = self.inner.lock();
        let inode = inner.inodes.get(&ino).ok_or(FsError::Stale)?;
        match &inode.content {
            Content::Symlink(t) => Ok(t.clone()),
            _ => Err(FsError::NotSymlink),
        }
    }

    /// Creates a hard link to a regular file.
    pub fn link(&self, creds: &Credentials, file: Ino, dir: Ino, name: &str) -> FsResult<Attr> {
        self.write_guard()?;
        Self::check_name(name)?;
        let now = self.now();
        let mut inner = self.inner.lock();
        let fnode = inner.inodes.get(&file).ok_or(FsError::Stale)?;
        if fnode.ftype() == FileType::Directory {
            return Err(FsError::IsDir);
        }
        if fnode.nlink >= LINK_MAX {
            return Err(FsError::TooManyLinks);
        }
        let dnode = inner.inodes.get(&dir).ok_or(FsError::Stale)?;
        let dattr = self.attr_of(dir, dnode);
        if dattr.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if !dattr.permits(creds, AccessMode::Write) {
            return Err(FsError::Access);
        }
        if let Content::Directory(entries) = &dnode.content {
            if entries.contains_key(name) {
                return Err(FsError::Exists);
            }
        }
        let dnode = inner.inodes.get_mut(&dir).unwrap();
        if let Content::Directory(entries) = &mut dnode.content {
            entries.insert(name.to_string(), file);
        }
        dnode.mtime = now;
        dnode.ctime = now;
        let fnode = inner.inodes.get_mut(&file).unwrap();
        fnode.nlink += 1;
        fnode.ctime = now;
        let attr = self.attr_of(file, fnode);
        drop(inner);
        self.charge_meta_write(dir);
        self.charge_meta_write(file);
        Ok(attr)
    }

    /// Removes a non-directory entry.
    pub fn remove(&self, creds: &Credentials, dir: Ino, name: &str) -> FsResult<()> {
        self.unlink_common(creds, dir, name, false)
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, creds: &Credentials, dir: Ino, name: &str) -> FsResult<()> {
        self.unlink_common(creds, dir, name, true)
    }

    fn unlink_common(
        &self,
        creds: &Credentials,
        dir: Ino,
        name: &str,
        want_dir: bool,
    ) -> FsResult<()> {
        self.write_guard()?;
        Self::check_name(name)?;
        let now = self.now();
        let mut inner = self.inner.lock();
        let dnode = inner.inodes.get(&dir).ok_or(FsError::Stale)?;
        let dattr = self.attr_of(dir, dnode);
        if dattr.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if !dattr.permits(creds, AccessMode::Write) {
            return Err(FsError::Access);
        }
        let entries = match &dnode.content {
            Content::Directory(e) => e,
            _ => unreachable!(),
        };
        let target = *entries.get(name).ok_or(FsError::NotFound)?;
        let tnode = inner.inodes.get(&target).ok_or(FsError::Stale)?;
        let is_dir = tnode.ftype() == FileType::Directory;
        match (want_dir, is_dir) {
            (true, false) => return Err(FsError::NotDir),
            (false, true) => return Err(FsError::IsDir),
            _ => {}
        }
        if is_dir {
            if let Content::Directory(e) = &tnode.content {
                if !e.is_empty() {
                    return Err(FsError::NotEmpty);
                }
            }
        }
        let dnode = inner.inodes.get_mut(&dir).unwrap();
        if let Content::Directory(entries) = &mut dnode.content {
            entries.remove(name);
        }
        dnode.mtime = now;
        dnode.ctime = now;
        if is_dir {
            dnode.nlink -= 1;
            inner.inodes.remove(&target);
        } else {
            let tnode = inner.inodes.get_mut(&target).unwrap();
            tnode.nlink -= 1;
            tnode.ctime = now;
            if tnode.nlink == 0 {
                inner.inodes.remove(&target);
            }
        }
        drop(inner);
        self.charge_meta_write(dir);
        self.charge_meta_write(target);
        Ok(())
    }

    /// Renames `from_dir/from_name` to `to_dir/to_name`, replacing a
    /// compatible existing target.
    pub fn rename(
        &self,
        creds: &Credentials,
        from_dir: Ino,
        from_name: &str,
        to_dir: Ino,
        to_name: &str,
    ) -> FsResult<()> {
        self.write_guard()?;
        Self::check_name(from_name)?;
        Self::check_name(to_name)?;
        let now = self.now();
        let mut inner = self.inner.lock();
        for d in [from_dir, to_dir] {
            let dnode = inner.inodes.get(&d).ok_or(FsError::Stale)?;
            let dattr = self.attr_of(d, dnode);
            if dattr.ftype != FileType::Directory {
                return Err(FsError::NotDir);
            }
            if !dattr.permits(creds, AccessMode::Write) {
                return Err(FsError::Access);
            }
        }
        let src_ino = match &inner.inodes.get(&from_dir).unwrap().content {
            Content::Directory(e) => *e.get(from_name).ok_or(FsError::NotFound)?,
            _ => unreachable!(),
        };
        let src_is_dir =
            inner.inodes.get(&src_ino).ok_or(FsError::Stale)?.ftype() == FileType::Directory;
        // Handle an existing destination.
        let dst_existing = match &inner.inodes.get(&to_dir).unwrap().content {
            Content::Directory(e) => e.get(to_name).copied(),
            _ => unreachable!(),
        };
        if let Some(dst_ino) = dst_existing {
            if dst_ino == src_ino {
                return Ok(()); // Renaming to itself is a no-op.
            }
            let dnode = inner.inodes.get(&dst_ino).ok_or(FsError::Stale)?;
            let dst_is_dir = dnode.ftype() == FileType::Directory;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                (true, true) => {
                    if let Content::Directory(e) = &dnode.content {
                        if !e.is_empty() {
                            return Err(FsError::NotEmpty);
                        }
                    }
                }
                (false, false) => {}
            }
            // Unlink the destination.
            if dst_is_dir {
                inner.inodes.remove(&dst_ino);
                inner.inodes.get_mut(&to_dir).unwrap().nlink -= 1;
            } else {
                let dnode = inner.inodes.get_mut(&dst_ino).unwrap();
                dnode.nlink -= 1;
                if dnode.nlink == 0 {
                    inner.inodes.remove(&dst_ino);
                }
            }
        }
        // Move the entry.
        if let Content::Directory(e) = &mut inner.inodes.get_mut(&from_dir).unwrap().content {
            e.remove(from_name);
        }
        if let Content::Directory(e) = &mut inner.inodes.get_mut(&to_dir).unwrap().content {
            e.insert(to_name.to_string(), src_ino);
        }
        // Fix directory link counts when a directory changes parent.
        if src_is_dir && from_dir != to_dir {
            inner.inodes.get_mut(&from_dir).unwrap().nlink -= 1;
            inner.inodes.get_mut(&to_dir).unwrap().nlink += 1;
        }
        for d in [from_dir, to_dir] {
            let dn = inner.inodes.get_mut(&d).unwrap();
            dn.mtime = now;
            dn.ctime = now;
        }
        drop(inner);
        self.charge_meta_write(from_dir);
        self.charge_meta_write(to_dir);
        Ok(())
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(
        &self,
        creds: &Credentials,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> FsResult<(Vec<u8>, bool)> {
        let now = self.now();
        let mut inner = self.inner.lock();
        let inode = inner.inodes.get_mut(&ino).ok_or(FsError::Stale)?;
        let attr = self.attr_of(ino, inode);
        match attr.ftype {
            FileType::Regular => {}
            FileType::Directory => return Err(FsError::IsDir),
            FileType::Symlink => return Err(FsError::Invalid),
        }
        if !attr.permits(creds, AccessMode::Read) {
            return Err(FsError::Access);
        }
        let data = match &inode.content {
            Content::Regular(d) => d,
            _ => unreachable!(),
        };
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        let out = data[start..end].to_vec();
        let eof = end == data.len();
        inode.atime = now;
        let was_cold = inner.cold.remove(&ino);
        drop(inner);
        if was_cold {
            self.charge_data_read(ino, offset, len.max(1));
        }
        Ok((out, eof))
    }

    /// Writes `data` at `offset`, extending the file as needed. `stable`
    /// requests a synchronous (NFS3 FILE_SYNC) write.
    pub fn write(
        &self,
        creds: &Credentials,
        ino: Ino,
        offset: u64,
        data: &[u8],
        stable: bool,
    ) -> FsResult<Attr> {
        self.write_guard()?;
        let now = self.now();
        let mut inner = self.inner.lock();
        let inode = inner.inodes.get_mut(&ino).ok_or(FsError::Stale)?;
        let attr = self.attr_of(ino, inode);
        match attr.ftype {
            FileType::Regular => {}
            FileType::Directory => return Err(FsError::IsDir),
            FileType::Symlink => return Err(FsError::Invalid),
        }
        if !attr.permits(creds, AccessMode::Write) {
            return Err(FsError::Access);
        }
        let content = match &mut inode.content {
            Content::Regular(d) => d,
            _ => unreachable!(),
        };
        let end = offset as usize + data.len();
        if content.len() < end {
            content.resize(end, 0);
        }
        content[offset as usize..end].copy_from_slice(data);
        inode.mtime = now;
        inode.ctime = now;
        let attr = self.attr_of(ino, inode);
        drop(inner);
        self.charge_data_write(ino, offset, data.len(), stable);
        Ok(attr)
    }

    /// Lists a directory, returning `(name, ino)` pairs sorted by name,
    /// starting after the cookie `start_after` (empty = from the start).
    pub fn readdir(
        &self,
        creds: &Credentials,
        dir: Ino,
        start_after: Option<&str>,
        max_entries: usize,
    ) -> FsResult<(Vec<(String, Ino)>, bool)> {
        let inner = self.inner.lock();
        let dnode = inner.inodes.get(&dir).ok_or(FsError::Stale)?;
        let dattr = self.attr_of(dir, dnode);
        if dattr.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if !dattr.permits(creds, AccessMode::Read) {
            return Err(FsError::Access);
        }
        let entries = match &dnode.content {
            Content::Directory(e) => e,
            _ => unreachable!(),
        };
        let mut out = Vec::new();
        let mut eof = true;
        for (name, &ino) in entries.iter() {
            if let Some(after) = start_after {
                if name.as_str() <= after {
                    continue;
                }
            }
            if out.len() == max_entries {
                eof = false;
                break;
            }
            out.push((name.clone(), ino));
        }
        Ok((out, eof))
    }

    /// Total number of live inodes (diagnostics).
    pub fn inode_count(&self) -> usize {
        self.inner.lock().inodes.len()
    }

    /// Convenience for setup code and tests: creates all missing directory
    /// components of `path` as root and returns the final directory inode.
    pub fn mkdir_p(&self, path: &str) -> FsResult<Ino> {
        let root_creds = Credentials::root();
        let mut cur = self.root();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            cur = match self.lookup(&root_creds, cur, part) {
                Ok((ino, attr)) => {
                    if attr.ftype != FileType::Directory {
                        return Err(FsError::NotDir);
                    }
                    ino
                }
                Err(FsError::NotFound) => self.mkdir(&root_creds, cur, part, 0o755)?.0,
                Err(e) => return Err(e),
            };
        }
        Ok(cur)
    }

    /// Convenience: writes a whole file (creating it if needed) as `creds`.
    pub fn write_file(
        &self,
        creds: &Credentials,
        dir: Ino,
        name: &str,
        data: &[u8],
    ) -> FsResult<Ino> {
        let ino = match self.lookup(creds, dir, name) {
            Ok((ino, _)) => ino,
            Err(FsError::NotFound) => self.create(creds, dir, name, 0o644)?.0,
            Err(e) => return Err(e),
        };
        self.setattr(
            creds,
            ino,
            SetAttr {
                size: Some(0),
                ..SetAttr::default()
            },
        )?;
        self.write(creds, ino, 0, data, false)?;
        Ok(ino)
    }

    /// Convenience: reads a whole file.
    pub fn read_file(&self, creds: &Credentials, ino: Ino) -> FsResult<Vec<u8>> {
        let attr = self.getattr(ino)?;
        Ok(self.read(creds, ino, 0, attr.size as usize)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Vfs {
        Vfs::new(7, SimClock::new())
    }

    fn root_creds() -> Credentials {
        Credentials::root()
    }

    #[test]
    fn create_lookup_read_write() {
        let fs = fs();
        let creds = root_creds();
        let (ino, attr) = fs.create(&creds, fs.root(), "hello.txt", 0o644).unwrap();
        assert_eq!(attr.ftype, FileType::Regular);
        assert_eq!(attr.size, 0);
        fs.write(&creds, ino, 0, b"hello world", false).unwrap();
        let (found, fattr) = fs.lookup(&creds, fs.root(), "hello.txt").unwrap();
        assert_eq!(found, ino);
        assert_eq!(fattr.size, 11);
        let (data, eof) = fs.read(&creds, ino, 0, 100).unwrap();
        assert_eq!(data, b"hello world");
        assert!(eof);
        let (part, eof) = fs.read(&creds, ino, 6, 5).unwrap();
        assert_eq!(part, b"world");
        assert!(eof);
    }

    #[test]
    fn sparse_write_extends_with_zeros() {
        let fs = fs();
        let creds = root_creds();
        let (ino, _) = fs.create(&creds, fs.root(), "sparse", 0o644).unwrap();
        fs.write(&creds, ino, 100, b"x", false).unwrap();
        let (data, _) = fs.read(&creds, ino, 0, 101).unwrap();
        assert_eq!(data.len(), 101);
        assert!(data[..100].iter().all(|&b| b == 0));
        assert_eq!(data[100], b'x');
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = fs();
        let creds = root_creds();
        fs.create(&creds, fs.root(), "f", 0o644).unwrap();
        assert_eq!(
            fs.create(&creds, fs.root(), "f", 0o644),
            Err(FsError::Exists)
        );
    }

    #[test]
    fn invalid_names_rejected() {
        let fs = fs();
        let creds = root_creds();
        for bad in ["", ".", "..", "a/b"] {
            assert_eq!(
                fs.create(&creds, fs.root(), bad, 0o644),
                Err(FsError::Invalid),
                "{bad:?}"
            );
        }
        let long = "x".repeat(256);
        assert_eq!(
            fs.create(&creds, fs.root(), &long, 0o644),
            Err(FsError::NameTooLong)
        );
    }

    #[test]
    fn mkdir_rmdir() {
        let fs = fs();
        let creds = root_creds();
        let (dir, attr) = fs.mkdir(&creds, fs.root(), "sub", 0o755).unwrap();
        assert_eq!(attr.ftype, FileType::Directory);
        assert_eq!(attr.nlink, 2);
        assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 3);
        fs.create(&creds, dir, "f", 0o644).unwrap();
        assert_eq!(fs.rmdir(&creds, fs.root(), "sub"), Err(FsError::NotEmpty));
        fs.remove(&creds, dir, "f").unwrap();
        fs.rmdir(&creds, fs.root(), "sub").unwrap();
        assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 2);
        assert_eq!(fs.getattr(dir), Err(FsError::Stale));
    }

    #[test]
    fn symlink_readlink() {
        let fs = fs();
        let creds = root_creds();
        let (ino, attr) = fs
            .symlink(&creds, fs.root(), "sfs", "/sfs/sfs.lcs.mit.edu:vefa...")
            .unwrap();
        assert_eq!(attr.ftype, FileType::Symlink);
        assert_eq!(fs.readlink(ino).unwrap(), "/sfs/sfs.lcs.mit.edu:vefa...");
        let (f, _) = fs.create(&creds, fs.root(), "file", 0o644).unwrap();
        assert_eq!(fs.readlink(f), Err(FsError::NotSymlink));
    }

    #[test]
    fn hard_links_share_data_and_count() {
        let fs = fs();
        let creds = root_creds();
        let (ino, _) = fs.create(&creds, fs.root(), "orig", 0o644).unwrap();
        fs.write(&creds, ino, 0, b"shared", false).unwrap();
        let attr = fs.link(&creds, ino, fs.root(), "alias").unwrap();
        assert_eq!(attr.nlink, 2);
        let (alias, _) = fs.lookup(&creds, fs.root(), "alias").unwrap();
        assert_eq!(alias, ino);
        fs.remove(&creds, fs.root(), "orig").unwrap();
        assert_eq!(fs.getattr(ino).unwrap().nlink, 1);
        let (data, _) = fs.read(&creds, ino, 0, 10).unwrap();
        assert_eq!(data, b"shared");
        fs.remove(&creds, fs.root(), "alias").unwrap();
        assert_eq!(fs.getattr(ino), Err(FsError::Stale));
    }

    #[test]
    fn link_to_directory_rejected() {
        let fs = fs();
        let creds = root_creds();
        let (dir, _) = fs.mkdir(&creds, fs.root(), "d", 0o755).unwrap();
        assert_eq!(
            fs.link(&creds, dir, fs.root(), "dlink"),
            Err(FsError::IsDir)
        );
    }

    #[test]
    fn rename_basic_and_replace() {
        let fs = fs();
        let creds = root_creds();
        let (a, _) = fs.create(&creds, fs.root(), "a", 0o644).unwrap();
        fs.write(&creds, a, 0, b"A", false).unwrap();
        let (b, _) = fs.create(&creds, fs.root(), "b", 0o644).unwrap();
        fs.write(&creds, b, 0, b"B", false).unwrap();
        // Replace b with a.
        fs.rename(&creds, fs.root(), "a", fs.root(), "b").unwrap();
        assert_eq!(
            fs.lookup(&creds, fs.root(), "a").unwrap_err(),
            FsError::NotFound
        );
        let (ino, _) = fs.lookup(&creds, fs.root(), "b").unwrap();
        assert_eq!(ino, a);
        assert_eq!(fs.getattr(b), Err(FsError::Stale));
    }

    #[test]
    fn rename_directory_across_parents_fixes_nlink() {
        let fs = fs();
        let creds = root_creds();
        let (p1, _) = fs.mkdir(&creds, fs.root(), "p1", 0o755).unwrap();
        let (p2, _) = fs.mkdir(&creds, fs.root(), "p2", 0o755).unwrap();
        fs.mkdir(&creds, p1, "child", 0o755).unwrap();
        assert_eq!(fs.getattr(p1).unwrap().nlink, 3);
        fs.rename(&creds, p1, "child", p2, "child").unwrap();
        assert_eq!(fs.getattr(p1).unwrap().nlink, 2);
        assert_eq!(fs.getattr(p2).unwrap().nlink, 3);
    }

    #[test]
    fn permissions_enforced_for_non_owner() {
        let fs = fs();
        let alice = Credentials::user(1000, 100);
        let bob = Credentials::user(1001, 101);
        let (dir, _) = fs.mkdir(&root_creds(), fs.root(), "home", 0o777).unwrap();
        let (f, _) = fs.create(&alice, dir, "private", 0o600).unwrap();
        fs.write(&alice, f, 0, b"secret", false).unwrap();
        assert_eq!(fs.read(&bob, f, 0, 10).unwrap_err(), FsError::Access);
        assert_eq!(
            fs.write(&bob, f, 0, b"x", false).unwrap_err(),
            FsError::Access
        );
        // chmod by non-owner rejected.
        assert_eq!(
            fs.setattr(
                &bob,
                f,
                SetAttr {
                    mode: Some(0o777),
                    ..Default::default()
                }
            )
            .unwrap_err(),
            FsError::Perm
        );
        // chown by non-root rejected.
        assert_eq!(
            fs.setattr(
                &alice,
                f,
                SetAttr {
                    uid: Some(1001),
                    ..Default::default()
                }
            )
            .unwrap_err(),
            FsError::Perm
        );
    }

    #[test]
    fn directory_search_permission_needed_for_lookup() {
        let fs = fs();
        let alice = Credentials::user(1000, 100);
        let (dir, _) = fs.mkdir(&root_creds(), fs.root(), "locked", 0o700).unwrap();
        fs.create(&root_creds(), dir, "f", 0o644).unwrap();
        assert_eq!(fs.lookup(&alice, dir, "f").unwrap_err(), FsError::Access);
    }

    #[test]
    fn readdir_pagination() {
        let fs = fs();
        let creds = root_creds();
        for i in 0..10 {
            fs.create(&creds, fs.root(), &format!("f{i:02}"), 0o644)
                .unwrap();
        }
        let (page1, eof1) = fs.readdir(&creds, fs.root(), None, 4).unwrap();
        assert_eq!(page1.len(), 4);
        assert!(!eof1);
        let last = page1.last().unwrap().0.clone();
        let (page2, _) = fs.readdir(&creds, fs.root(), Some(&last), 4).unwrap();
        assert_eq!(page2.len(), 4);
        assert!(page2[0].0 > last);
        let (page3, eof3) = fs
            .readdir(&creds, fs.root(), Some(&page2.last().unwrap().0), 4)
            .unwrap();
        assert_eq!(page3.len(), 2);
        assert!(eof3);
    }

    #[test]
    fn read_only_fs_rejects_mutation() {
        let mut fs = fs();
        let creds = root_creds();
        fs.create(&creds, fs.root(), "pre", 0o644).unwrap();
        fs.set_read_only(true);
        assert_eq!(
            fs.create(&creds, fs.root(), "f", 0o644).unwrap_err(),
            FsError::ReadOnly
        );
        assert_eq!(
            fs.remove(&creds, fs.root(), "pre").unwrap_err(),
            FsError::ReadOnly
        );
        // Reads still work.
        let (ino, _) = fs.lookup(&creds, fs.root(), "pre").unwrap();
        fs.read(&creds, ino, 0, 10).unwrap();
    }

    #[test]
    fn truncate_via_setattr() {
        let fs = fs();
        let creds = root_creds();
        let (ino, _) = fs.create(&creds, fs.root(), "t", 0o644).unwrap();
        fs.write(&creds, ino, 0, b"0123456789", false).unwrap();
        fs.setattr(
            &creds,
            ino,
            SetAttr {
                size: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        let (data, eof) = fs.read(&creds, ino, 0, 100).unwrap();
        assert_eq!(data, b"0123");
        assert!(eof);
    }

    #[test]
    fn mkdir_p_and_lookup_path() {
        let fs = fs();
        let ino = fs.mkdir_p("/a/b/c").unwrap();
        let (found, attr) = fs.lookup_path(&root_creds(), "/a/b/c").unwrap();
        assert_eq!(found, ino);
        assert_eq!(attr.ftype, FileType::Directory);
        // Idempotent.
        assert_eq!(fs.mkdir_p("/a/b/c").unwrap(), ino);
    }

    #[test]
    fn timestamps_advance_with_clock() {
        let clock = SimClock::new();
        let fs = Vfs::new(1, clock.clone());
        let creds = root_creds();
        let (ino, attr) = fs.create(&creds, fs.root(), "f", 0o644).unwrap();
        let t0 = attr.mtime;
        clock.advance_ns(1000);
        fs.write(&creds, ino, 0, b"x", false).unwrap();
        let attr = fs.getattr(ino).unwrap();
        assert!(attr.mtime > t0);
    }

    #[test]
    fn disk_costs_charged_when_attached() {
        let clock = SimClock::new();
        let disk = sfs_sim::SimDisk::new(clock.clone(), sfs_sim::DiskParams::ibm_18es());
        let fs = Vfs::new(1, clock.clone()).with_disk(disk);
        let creds = root_creds();
        // Metadata update is synchronous: clock advances.
        fs.create(&creds, fs.root(), "f", 0o644).unwrap();
        assert!(clock.now().as_nanos() > 0);
    }
}
