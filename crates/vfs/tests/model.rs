//! Model-based property testing: random operation sequences against the
//! file system must agree with a trivial in-memory reference model, and
//! structural invariants (link counts, reachability) must hold after any
//! sequence.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sfs_sim::SimClock;
use sfs_vfs::{Credentials, FileType, FsError, Vfs};

/// Operations the fuzzer may apply to a flat namespace of `f0..f7` under
/// the root.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    WriteAppend(u8, Vec<u8>),
    Truncate(u8, u8),
    Remove(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Read(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Create),
        ((0u8..8), proptest::collection::vec(any::<u8>(), 0..50))
            .prop_map(|(f, d)| Op::WriteAppend(f, d)),
        ((0u8..8), (0u8..60)).prop_map(|(f, n)| Op::Truncate(f, n)),
        (0u8..8).prop_map(Op::Remove),
        ((0u8..8), (0u8..8)).prop_map(|(a, b)| Op::Rename(a, b)),
        ((0u8..8), (0u8..8)).prop_map(|(a, b)| Op::Link(a, b)),
        (0u8..8).prop_map(Op::Read),
    ]
}

fn name(i: u8) -> String {
    format!("f{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vfs_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let vfs = Vfs::new(1, SimClock::new());
        let creds = Credentials::root();
        let root = vfs.root();
        // Reference: name -> content-cell id; cells: id -> bytes.
        // (Hard links mean two names may share a cell.)
        let mut names: BTreeMap<String, usize> = BTreeMap::new();
        let mut cells: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        let mut next_cell = 0usize;

        for op in ops {
            match op {
                Op::Create(f) => {
                    let n = name(f);
                    let got = vfs.create(&creds, root, &n, 0o644);
                    if names.contains_key(&n) {
                        prop_assert_eq!(got.unwrap_err(), FsError::Exists);
                    } else {
                        prop_assert!(got.is_ok());
                        names.insert(n, next_cell);
                        cells.insert(next_cell, Vec::new());
                        next_cell += 1;
                    }
                }
                Op::WriteAppend(f, data) => {
                    let n = name(f);
                    match names.get(&n) {
                        Some(&cell) => {
                            let (ino, attr) = vfs.lookup(&creds, root, &n).unwrap();
                            vfs.write(&creds, ino, attr.size, &data, false).unwrap();
                            cells.get_mut(&cell).unwrap().extend_from_slice(&data);
                        }
                        None => {
                            prop_assert!(vfs.lookup(&creds, root, &n).is_err());
                        }
                    }
                }
                Op::Truncate(f, sz) => {
                    let n = name(f);
                    if let Some(&cell) = names.get(&n) {
                        let (ino, _) = vfs.lookup(&creds, root, &n).unwrap();
                        vfs.setattr(
                            &creds,
                            ino,
                            sfs_vfs::SetAttr { size: Some(sz as u64), ..Default::default() },
                        )
                        .unwrap();
                        cells.get_mut(&cell).unwrap().resize(sz as usize, 0);
                    }
                }
                Op::Remove(f) => {
                    let n = name(f);
                    let got = vfs.remove(&creds, root, &n);
                    match names.remove(&n) {
                        Some(cell) => {
                            prop_assert!(got.is_ok());
                            // Drop the cell if no other name references it.
                            if !names.values().any(|&c| c == cell) {
                                cells.remove(&cell);
                            }
                        }
                        None => prop_assert_eq!(got.unwrap_err(), FsError::NotFound),
                    }
                }
                Op::Rename(a, b) => {
                    let (na, nb) = (name(a), name(b));
                    let got = vfs.rename(&creds, root, &na, root, &nb);
                    match names.get(&na).copied() {
                        None => prop_assert_eq!(got.unwrap_err(), FsError::NotFound),
                        Some(cell) => {
                            prop_assert!(got.is_ok(), "{got:?}");
                            // POSIX: renaming onto another hard link of
                            // the *same* file is a no-op (both names
                            // survive); likewise renaming onto itself.
                            let same_file = names.get(&nb) == Some(&cell);
                            if na != nb && !same_file {
                                let old_dst = names.remove(&nb);
                                names.remove(&na);
                                names.insert(nb, cell);
                                if let Some(dst_cell) = old_dst {
                                    if !names.values().any(|&c| c == dst_cell) {
                                        cells.remove(&dst_cell);
                                    }
                                }
                            }
                        }
                    }
                }
                Op::Link(a, b) => {
                    let (na, nb) = (name(a), name(b));
                    match (names.get(&na).copied(), names.contains_key(&nb)) {
                        (Some(cell), false) => {
                            let (ino, _) = vfs.lookup(&creds, root, &na).unwrap();
                            vfs.link(&creds, ino, root, &nb).unwrap();
                            names.insert(nb, cell);
                        }
                        (Some(_), true) => {
                            let (ino, _) = vfs.lookup(&creds, root, &na).unwrap();
                            prop_assert_eq!(
                                vfs.link(&creds, ino, root, &nb).unwrap_err(),
                                FsError::Exists
                            );
                        }
                        (None, _) => {
                            prop_assert!(vfs.lookup(&creds, root, &na).is_err());
                        }
                    }
                }
                Op::Read(f) => {
                    let n = name(f);
                    match names.get(&n) {
                        Some(&cell) => {
                            let (ino, _) = vfs.lookup(&creds, root, &n).unwrap();
                            let data = vfs.read_file(&creds, ino).unwrap();
                            prop_assert_eq!(&data, cells.get(&cell).unwrap());
                        }
                        None => prop_assert!(vfs.lookup(&creds, root, &n).is_err()),
                    }
                }
            }
        }

        // Final coherence check: every model name exists with the right
        // contents, every model-absent name is absent, and link counts
        // equal the number of names sharing the cell.
        let mut cell_refs: BTreeMap<usize, u32> = BTreeMap::new();
        for &cell in names.values() {
            *cell_refs.entry(cell).or_insert(0) += 1;
        }
        for (n, &cell) in &names {
            let (ino, attr) = vfs.lookup(&creds, root, n).unwrap();
            prop_assert_eq!(&vfs.read_file(&creds, ino).unwrap(), cells.get(&cell).unwrap());
            prop_assert_eq!(attr.nlink, cell_refs[&cell], "nlink of {}", n);
        }
        for f in 0..8u8 {
            let n = name(f);
            if !names.contains_key(&n) {
                prop_assert!(vfs.lookup(&creds, root, &n).is_err());
            }
        }
        // Directory listing agrees with the model exactly.
        let (listing, _) = vfs.readdir(&creds, root, None, usize::MAX).unwrap();
        let listed: Vec<&str> = listing.iter().map(|(n, _)| n.as_str()).collect();
        let expected: Vec<&str> = names.keys().map(|s| s.as_str()).collect();
        prop_assert_eq!(listed, expected);
    }

    #[test]
    fn deep_paths_resolve(depth in 1usize..12) {
        let vfs = Vfs::new(1, SimClock::new());
        let path: String = (0..depth).map(|i| format!("/d{i}")).collect();
        let ino = vfs.mkdir_p(&path).unwrap();
        let (found, attr) = vfs.lookup_path(&Credentials::root(), &path).unwrap();
        prop_assert_eq!(found, ino);
        prop_assert_eq!(attr.ftype, FileType::Directory);
    }
}
