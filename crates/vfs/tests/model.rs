//! Model-based property testing: random operation sequences against the
//! file system must agree with a trivial in-memory reference model, and
//! structural invariants (link counts, reachability) must hold after any
//! sequence. Sequences come from a seeded SplitMix64 generator, so the
//! same (large) sample is explored on every run.

use std::collections::BTreeMap;

use sfs_sim::SimClock;
use sfs_vfs::{Credentials, FileType, FsError, Vfs};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Operations the fuzzer may apply to a flat namespace of `f0..f7` under
/// the root.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    WriteAppend(u8, Vec<u8>),
    Truncate(u8, u8),
    Remove(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Read(u8),
}

fn random_op(rng: &mut Rng) -> Op {
    let f = rng.below(8) as u8;
    match rng.below(7) {
        0 => Op::Create(f),
        1 => {
            let data = (0..rng.below(50)).map(|_| rng.next() as u8).collect();
            Op::WriteAppend(f, data)
        }
        2 => Op::Truncate(f, rng.below(60) as u8),
        3 => Op::Remove(f),
        4 => Op::Rename(f, rng.below(8) as u8),
        5 => Op::Link(f, rng.below(8) as u8),
        _ => Op::Read(f),
    }
}

fn name(i: u8) -> String {
    format!("f{i}")
}

#[test]
fn vfs_matches_reference_model() {
    let mut rng = Rng(0x30DE1);
    for _case in 0..64 {
        let ops: Vec<Op> = (0..rng.below(60)).map(|_| random_op(&mut rng)).collect();
        check_ops_against_model(ops);
    }
}

fn check_ops_against_model(ops: Vec<Op>) {
    let vfs = Vfs::new(1, SimClock::new());
    let creds = Credentials::root();
    let root = vfs.root();
    // Reference: name -> content-cell id; cells: id -> bytes.
    // (Hard links mean two names may share a cell.)
    let mut names: BTreeMap<String, usize> = BTreeMap::new();
    let mut cells: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
    let mut next_cell = 0usize;

    for op in ops {
        match op {
            Op::Create(f) => {
                let n = name(f);
                let got = vfs.create(&creds, root, &n, 0o644);
                if let std::collections::btree_map::Entry::Vacant(e) = names.entry(n) {
                    assert!(got.is_ok());
                    e.insert(next_cell);
                    cells.insert(next_cell, Vec::new());
                    next_cell += 1;
                } else {
                    assert_eq!(got.unwrap_err(), FsError::Exists);
                }
            }
            Op::WriteAppend(f, data) => {
                let n = name(f);
                match names.get(&n) {
                    Some(&cell) => {
                        let (ino, attr) = vfs.lookup(&creds, root, &n).unwrap();
                        vfs.write(&creds, ino, attr.size, &data, false).unwrap();
                        cells.get_mut(&cell).unwrap().extend_from_slice(&data);
                    }
                    None => {
                        assert!(vfs.lookup(&creds, root, &n).is_err());
                    }
                }
            }
            Op::Truncate(f, sz) => {
                let n = name(f);
                if let Some(&cell) = names.get(&n) {
                    let (ino, _) = vfs.lookup(&creds, root, &n).unwrap();
                    vfs.setattr(
                        &creds,
                        ino,
                        sfs_vfs::SetAttr {
                            size: Some(sz as u64),
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    cells.get_mut(&cell).unwrap().resize(sz as usize, 0);
                }
            }
            Op::Remove(f) => {
                let n = name(f);
                let got = vfs.remove(&creds, root, &n);
                match names.remove(&n) {
                    Some(cell) => {
                        assert!(got.is_ok());
                        // Drop the cell if no other name references it.
                        if !names.values().any(|&c| c == cell) {
                            cells.remove(&cell);
                        }
                    }
                    None => assert_eq!(got.unwrap_err(), FsError::NotFound),
                }
            }
            Op::Rename(a, b) => {
                let (na, nb) = (name(a), name(b));
                let got = vfs.rename(&creds, root, &na, root, &nb);
                match names.get(&na).copied() {
                    None => assert_eq!(got.unwrap_err(), FsError::NotFound),
                    Some(cell) => {
                        assert!(got.is_ok(), "{got:?}");
                        // POSIX: renaming onto another hard link of
                        // the *same* file is a no-op (both names
                        // survive); likewise renaming onto itself.
                        let same_file = names.get(&nb) == Some(&cell);
                        if na != nb && !same_file {
                            let old_dst = names.remove(&nb);
                            names.remove(&na);
                            names.insert(nb, cell);
                            if let Some(dst_cell) = old_dst {
                                if !names.values().any(|&c| c == dst_cell) {
                                    cells.remove(&dst_cell);
                                }
                            }
                        }
                    }
                }
            }
            Op::Link(a, b) => {
                let (na, nb) = (name(a), name(b));
                match (names.get(&na).copied(), names.contains_key(&nb)) {
                    (Some(cell), false) => {
                        let (ino, _) = vfs.lookup(&creds, root, &na).unwrap();
                        vfs.link(&creds, ino, root, &nb).unwrap();
                        names.insert(nb, cell);
                    }
                    (Some(_), true) => {
                        let (ino, _) = vfs.lookup(&creds, root, &na).unwrap();
                        assert_eq!(
                            vfs.link(&creds, ino, root, &nb).unwrap_err(),
                            FsError::Exists
                        );
                    }
                    (None, _) => {
                        assert!(vfs.lookup(&creds, root, &na).is_err());
                    }
                }
            }
            Op::Read(f) => {
                let n = name(f);
                match names.get(&n) {
                    Some(&cell) => {
                        let (ino, _) = vfs.lookup(&creds, root, &n).unwrap();
                        let data = vfs.read_file(&creds, ino).unwrap();
                        assert_eq!(&data, cells.get(&cell).unwrap());
                    }
                    None => assert!(vfs.lookup(&creds, root, &n).is_err()),
                }
            }
        }
    }

    // Final coherence check: every model name exists with the right
    // contents, every model-absent name is absent, and link counts
    // equal the number of names sharing the cell.
    let mut cell_refs: BTreeMap<usize, u32> = BTreeMap::new();
    for &cell in names.values() {
        *cell_refs.entry(cell).or_insert(0) += 1;
    }
    for (n, &cell) in &names {
        let (ino, attr) = vfs.lookup(&creds, root, n).unwrap();
        assert_eq!(
            &vfs.read_file(&creds, ino).unwrap(),
            cells.get(&cell).unwrap()
        );
        assert_eq!(attr.nlink, cell_refs[&cell], "nlink of {n}");
    }
    for f in 0..8u8 {
        let n = name(f);
        if !names.contains_key(&n) {
            assert!(vfs.lookup(&creds, root, &n).is_err());
        }
    }
    // Directory listing agrees with the model exactly.
    let (listing, _) = vfs.readdir(&creds, root, None, usize::MAX).unwrap();
    let listed: Vec<&str> = listing.iter().map(|(n, _)| n.as_str()).collect();
    let expected: Vec<&str> = names.keys().map(|s| s.as_str()).collect();
    assert_eq!(listed, expected);
}

#[test]
fn deep_paths_resolve() {
    for depth in 1usize..12 {
        let vfs = Vfs::new(1, SimClock::new());
        let path: String = (0..depth).map(|i| format!("/d{i}")).collect();
        let ino = vfs.mkdir_p(&path).unwrap();
        let (found, attr) = vfs.lookup_path(&Credentials::root(), &path).unwrap();
        assert_eq!(found, ino);
        assert_eq!(attr.ftype, FileType::Directory);
    }
}
