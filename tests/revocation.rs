//! §2.6 end-to-end: key revocation, forwarding pointers, and HostID
//! blocking through the full client/server stack.

mod common;

use common::{World, ALICE_UID, BOB_UID};
use sfs::client::ClientError;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::revoke::{RevocationCert, REVOKED_LINK_TARGET};
use sfs_vfs::Credentials;

#[test]
fn server_served_revocation_blocks_mount() {
    // "When SFS first connects to a server, it announces the Location and
    // HostID … The server can respond with a revocation certificate."
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let path = server.path().clone();
    // Healthy at first.
    let hello = format!("{}/pub/hello", path.full_path());
    assert!(w.client.read_file(ALICE_UID, &hello).is_ok());
    w.client.unmount_all();

    // The owner revokes the pathname.
    let cert = RevocationCert::issue(&common::server_key(0), "fs.example.org");
    server.install_revocation(cert);
    let err = w.client.mount(ALICE_UID, &path).unwrap_err();
    assert_eq!(err, ClientError::Revoked);
    // Once seen, the revocation persists in the agent: even if the server
    // stops serving the certificate, this agent refuses the HostID.
    assert!(w.client.agent(ALICE_UID).lock().refuses(path.host_id));
    let err = w.client.read_file(ALICE_UID, &hello).unwrap_err();
    assert_eq!(err, ClientError::Blocked);
}

#[test]
fn revocation_directory_scheme() {
    // The Verisign scenario: a CA file system serves
    // /revocations/<HostID> files; agents check it for every new
    // pathname. "Certification authorities need not check the identity of
    // people submitting them" — certificates are self-authenticating.
    let w = World::new();
    let verisign = w.add_server(0, "verisign.example.com");
    let victim = w.add_server(1, "victim.example.org");
    w.login_alice();
    let victim_path = victim.path().clone();

    // Somebody (anyone) submits a revocation for the victim to Verisign.
    let cert = RevocationCert::issue(&common::server_key(1), "victim.example.org");
    let root_creds = Credentials::root();
    let vfs = verisign.vfs();
    let dir = vfs.mkdir_p("/revocations").unwrap();
    use sfs_xdr::Xdr;
    vfs.write_file(
        &root_creds,
        dir,
        &victim_path.host_id.encoded(),
        &cert.to_xdr(),
    )
    .unwrap();

    // Alice's agent is configured to check Verisign's revocation dir.
    let agent = w.client.agent(ALICE_UID);
    agent
        .lock()
        .add_revocation_dir(&format!("{}/revocations", verisign.path().full_path()));

    // The check: fetch dir/<hostid> through the client, parse, submit.
    let dirs = vec![format!("{}/revocations", verisign.path().full_path())];
    let mut found = None;
    for d in dirs {
        let p = format!("{}/{}", d, victim_path.host_id.encoded());
        if let Ok(bytes) = w.client.read_file(ALICE_UID, &p) {
            if let Ok(cert) = RevocationCert::from_xdr(&bytes) {
                if cert.revokes(&victim_path) {
                    found = Some(cert);
                    break;
                }
            }
        }
    }
    let cert = found.expect("revocation must be found at the CA");
    assert!(agent.lock().submit_revocation(cert));
    // The victim is now unreachable for alice…
    assert_eq!(
        w.client.mount(ALICE_UID, &victim_path).unwrap_err(),
        ClientError::Blocked
    );
    // …but other users who have not seen the certificate are unaffected
    // (HostID decisions are per-agent).
    assert!(w.client.mount(BOB_UID, &victim_path).is_ok());
}

#[test]
fn forged_revocation_is_harmless() {
    // An attacker without the private key submits a bogus certificate; it
    // fails self-authentication and the agent ignores it.
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let mut cert = RevocationCert::issue(&common::server_key(1), "fs.example.org");
    // Swap in the victim's public key — signature no longer matches.
    cert.public_key = common::server_key(0).public().to_bytes();
    assert!(!w.client.agent(ALICE_UID).lock().submit_revocation(cert));
    let hello = format!("{}/pub/hello", server.path().full_path());
    assert!(w.client.read_file(ALICE_UID, &hello).is_ok());
}

#[test]
fn forwarding_pointer_followed_to_new_home() {
    // "One can replace the root directory of the old file system with a
    // single symbolic link or forwarding pointer to the new
    // self-certifying pathname" (§2.4).
    let w = World::new();
    let old = w.add_server(0, "old.example.org");
    let new = w.add_server(1, "new.example.org");
    w.login_alice();
    old.install_forwarding(new.path().clone());
    let fwd = w
        .client
        .check_forwarding(ALICE_UID, old.path())
        .unwrap()
        .expect("pointer present");
    assert_eq!(&fwd, new.path());
    // Follow it.
    let hello = format!("{}/pub/hello", fwd.full_path());
    assert_eq!(
        w.client.read_file(ALICE_UID, &hello).unwrap(),
        b"hello from new.example.org"
    );
    // A server with no pointer reports none.
    assert_eq!(
        w.client.check_forwarding(ALICE_UID, new.path()).unwrap(),
        None
    );
}

#[test]
fn revocation_overrules_forwarding() {
    // "A revocation certificate always overrules a forwarding pointer for
    // the same HostID": if the key was compromised, an attacker could
    // serve a rogue pointer, so the client must check revocation first.
    let w = World::new();
    let old = w.add_server(0, "old.example.org");
    let attacker_dest = w.add_server(1, "evil.example.org");
    w.login_alice();
    // The (compromised) old key signs a pointer to the attacker.
    old.install_forwarding(attacker_dest.path().clone());
    // But the owner has revoked the key; the agent learns this.
    let cert = RevocationCert::issue(&common::server_key(0), "old.example.org");
    assert!(w.client.agent(ALICE_UID).lock().submit_revocation(cert));
    // Revocation wins: the client never reads the pointer.
    assert_eq!(
        w.client
            .check_forwarding(ALICE_UID, old.path())
            .unwrap_err(),
        ClientError::Blocked
    );
}

#[test]
fn tampered_forwarding_pointer_rejected() {
    let w = World::new();
    let old = w.add_server(0, "old.example.org");
    let new = w.add_server(1, "new.example.org");
    let evil = w.add_server(2, "evil.example.org");
    w.login_alice();
    let mut ptr = old.install_forwarding(new.path().clone());
    // An attacker redirects the pointer to their own server; the
    // signature breaks.
    ptr.new_path = evil.path().clone();
    use sfs_xdr::Xdr;
    let root_creds = Credentials::root();
    let vfs = old.vfs();
    let root = vfs.root();
    vfs.write_file(&root_creds, root, ".forward", &ptr.to_xdr())
        .unwrap();
    let err = w
        .client
        .check_forwarding(ALICE_UID, old.path())
        .unwrap_err();
    assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
}

#[test]
fn revoked_link_target_is_visible_marker() {
    // "Both revoked and blocked self-certifying pathnames become symbolic
    // links to [a] non-existent file … users who investigate further can
    // easily notice that the pathname has actually been revoked."
    assert!(REVOKED_LINK_TARGET.starts_with(':'));
    // The agent's dynamic-link mechanism realizes the marker.
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let agent = w.client.agent(ALICE_UID);
    let cert = RevocationCert::issue(&common::server_key(0), "fs.example.org");
    agent.lock().submit_revocation(cert);
    agent
        .lock()
        .create_link(&server.path().dir_name(), REVOKED_LINK_TARGET);
    // The listing shows the link; accessing it fails.
    let listing = w.client.list_sfs(ALICE_UID);
    assert!(listing.contains(&server.path().dir_name()));
    assert!(w
        .client
        .read_file(
            ALICE_UID,
            &format!("{}/pub/hello", server.path().full_path())
        )
        .is_err());
}

#[test]
fn key_change_via_two_pathnames() {
    // §2.4: "SFS can serve two copies of the same file system under
    // different self-certifying pathnames" during a key transition. Two
    // server instances exporting the same Vfs model this.
    let w = World::new();
    let server_a = w.add_server(0, "fs.example.org");
    w.login_alice();
    // Second instance: same location is not possible in the registry, so
    // the operator runs the new key at a second name during transition.
    let vfs = server_a.vfs().clone();
    let auth = server_a.authserver().clone();
    let server_b = sfs::server::SfsServer::new(
        sfs::server::ServerConfig::new("fs2.example.org"),
        common::server_key(1),
        vfs,
        auth,
        sfs_crypto::SfsPrg::from_entropy(b"transition"),
    );
    w.net.register(server_b.clone());
    let via_old = format!("{}/pub/hello", server_a.path().full_path());
    let via_new = format!("{}/pub/hello", server_b.path().full_path());
    assert_eq!(
        w.client.read_file(ALICE_UID, &via_old).unwrap(),
        w.client.read_file(ALICE_UID, &via_new).unwrap(),
    );
    // They are different pathnames.
    assert_ne!(
        SelfCertifyingPath::parse_full(&via_old).unwrap().0,
        SelfCertifyingPath::parse_full(&via_new).unwrap().0,
    );
}

#[test]
fn mass_revocation_storm_under_faults() {
    // The §2.5 "million-user day" slice: a fleet of clients holding live
    // mounts on two servers when a revocation broadcast lands for one of
    // them, on a degraded network. Every revoked access — cached mount
    // or fresh — must be refused for every client, no unrevoked access
    // may regress, and the seeded fault plan must have actually injected
    // faults into the run.
    let w = World::new();
    let plan = sfs_sim::FaultPlan::from_spec("seed=77,drop=15,delay=30,delay_ns=500us").unwrap();
    w.net.set_fault_plan(plan.clone());
    let revoked = w.add_server(0, "revoked.example.org");
    let healthy = w.add_server(1, "healthy.example.org");
    w.login_alice();
    let mut clients = vec![w.client.clone()];
    for c in 0..2 {
        let client = sfs::client::SfsClient::new(w.net.clone(), format!("storm-{c}").as_bytes());
        client.agent(ALICE_UID).lock().add_key(common::alice_key());
        clients.push(client);
    }
    let via_revoked = format!("{}/pub/hello", revoked.path().full_path());
    let via_healthy = format!("{}/pub/hello", healthy.path().full_path());

    // Warm phase: every client holds live mounts on both servers.
    for client in &clients {
        assert_eq!(
            client.read_file(ALICE_UID, &via_revoked).unwrap(),
            b"hello from revoked.example.org"
        );
        assert_eq!(
            client.read_file(ALICE_UID, &via_healthy).unwrap(),
            b"hello from healthy.example.org"
        );
    }

    // The broadcast, mid-workload: the self-authenticating certificate
    // reaches the server and every agent.
    let cert = RevocationCert::issue(&common::server_key(0), "revoked.example.org");
    revoked.install_revocation(cert.clone());
    for (c, client) in clients.iter().enumerate() {
        assert!(
            client
                .agent(ALICE_UID)
                .lock()
                .submit_revocation(cert.clone()),
            "client {c} agent rejected a valid certificate"
        );
    }

    for (c, client) in clients.iter().enumerate() {
        // Cached-mount access: refused without touching the wire.
        assert_eq!(
            client.read_file(ALICE_UID, &via_revoked).unwrap_err(),
            ClientError::Blocked,
            "client {c} cached-mount access survived revocation"
        );
        // Fresh mount: refused too.
        client.unmount_all();
        let err = client.read_file(ALICE_UID, &via_revoked).unwrap_err();
        assert!(
            matches!(err, ClientError::Blocked | ClientError::Revoked),
            "client {c} remounted a revoked HostID: {err:?}"
        );
        // The unrevoked server regresses in no way.
        assert_eq!(
            client.read_file(ALICE_UID, &via_healthy).unwrap(),
            b"hello from healthy.example.org",
            "client {c} lost access to the unrevoked server"
        );
    }
    assert!(
        plan.injected() > 0,
        "the storm ran fault-free; the plan was not wired into the network"
    );
}
