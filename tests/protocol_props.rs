//! Property-style tests over the protocol layers: wire formats must
//! round-trip for arbitrary values, the secure channel must be lossless
//! and tamper-evident for arbitrary payloads, and the namespace encodings
//! must be total on their domains.
//!
//! Inputs are driven by a seeded SplitMix64 generator, so every run
//! explores the same (large) sample deterministically.

use sfs_crypto::sha1::sha1;
use sfs_proto::channel::SecureChannelEnd;
use sfs_proto::keyneg::SessionKeys;
use sfs_proto::pathname::{base32_decode, base32_encode, HostId, SelfCertifyingPath};
use sfs_proto::userauth::SeqWindow;
use sfs_xdr::rpc::{record_mark, record_unmark, OpaqueAuth, RpcCall, RpcMessage, RpcReply};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder};

/// Deterministic SplitMix64 input generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn array20(&mut self) -> [u8; 20] {
        let mut out = [0u8; 20];
        for b in &mut out {
            *b = self.next() as u8;
        }
        out
    }

    fn string(&mut self, alphabet: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize] as char)
            .collect()
    }
}

fn session_keys(seed: u8) -> SessionKeys {
    SessionKeys {
        kcs: sha1(&[seed, 1]),
        ksc: sha1(&[seed, 2]),
        session_id: sha1(&[seed, 3]),
    }
}

#[test]
fn base32_roundtrips() {
    let mut rng = Rng::new(0xB32);
    for _ in 0..256 {
        let bytes = rng.array20();
        let s = base32_encode(&bytes);
        assert_eq!(s.len(), 32);
        assert_eq!(base32_decode(&s).unwrap(), bytes);
        // The alphabet never contains the confusing characters.
        assert!(!s.contains(['l', '1', '0', 'o']));
    }
}

#[test]
fn pathname_roundtrips() {
    let mut rng = Rng::new(0xAA7);
    for i in 0..256 {
        let bytes = rng.array20();
        let head = rng.string(b"abcdefghijklmnopqrstuvwxyz", 1);
        let tail_len = rng.below(31) as usize;
        let loc = format!(
            "{}{}",
            head,
            rng.string(b"abcdefghijklmnopqrstuvwxyz0123456789.-", tail_len)
        );
        let path = SelfCertifyingPath {
            location: loc,
            host_id: HostId(bytes),
        };
        let mut full = path.full_path();
        if i % 2 == 0 {
            full.push('/');
            let rest_len = 1 + rng.below(40) as usize;
            full.push_str(&rng.string(
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/._-",
                rest_len,
            ));
        }
        let (parsed, _) = SelfCertifyingPath::parse_full(&full).unwrap();
        assert_eq!(parsed, path);
    }
}

#[test]
fn xdr_opaque_roundtrips() {
    let mut rng = Rng::new(0x0DA);
    for _ in 0..256 {
        let len = rng.below(300) as usize;
        let data = rng.bytes(len);
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        let mut dec = XdrDecoder::new(enc.bytes());
        assert_eq!(dec.get_opaque().unwrap(), data);
        dec.finish().unwrap();
    }
}

#[test]
fn rpc_call_roundtrips() {
    let mut rng = Rng::new(0xCA11);
    for _ in 0..256 {
        let (xid, prog, vers, pr, authno) = (
            rng.next() as u32,
            rng.next() as u32,
            rng.next() as u32,
            rng.next() as u32,
            rng.next() as u32,
        );
        let args_len = rng.below(200) as usize;
        let args = rng.bytes(args_len);
        let msg = RpcMessage::Call(RpcCall {
            xid,
            prog,
            vers,
            proc: pr,
            cred: OpaqueAuth::sfs_authno(authno),
            verf: OpaqueAuth::none(),
            args: args.clone(),
        });
        match RpcMessage::from_xdr(&msg.to_xdr()).unwrap() {
            RpcMessage::Call(c) => {
                assert_eq!(c.xid, xid);
                assert_eq!(c.prog, prog);
                assert_eq!(c.cred.as_sfs_authno(), Some(authno));
                // Args round up to 4-byte alignment with zero padding.
                assert_eq!(&c.args[..args.len()], &args[..]);
                assert!(c.args[args.len()..].iter().all(|&b| b == 0));
            }
            other => panic!("bad decode {other:?}"),
        }
    }
}

#[test]
fn rpc_reply_roundtrips() {
    let mut rng = Rng::new(0x2E91);
    for _ in 0..256 {
        let xid = rng.next() as u32;
        let results_len = rng.below(200) as usize;
        let results = rng.bytes(results_len);
        let call = RpcCall {
            xid,
            prog: 1,
            vers: 1,
            proc: 1,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
            args: vec![],
        };
        let msg = RpcMessage::Reply(RpcReply::success(&call, results.clone()));
        match RpcMessage::from_xdr(&msg.to_xdr()).unwrap() {
            RpcMessage::Reply(r) => {
                assert_eq!(r.xid, xid);
                assert_eq!(&r.results[..results.len()], &results[..]);
            }
            other => panic!("bad decode {other:?}"),
        }
    }
}

#[test]
fn record_marking_roundtrips() {
    let mut rng = Rng::new(0x4EC);
    for _ in 0..256 {
        let len = rng.below(500) as usize;
        let payload = rng.bytes(len);
        let framed = record_mark(&payload);
        let (got, consumed) = record_unmark(&framed).unwrap();
        assert_eq!(got, payload);
        assert_eq!(consumed, framed.len());
    }
}

#[test]
fn channel_roundtrips_arbitrary_payload_sequences() {
    let mut rng = Rng::new(0xC4A);
    for seed in 0..48u8 {
        let keys = session_keys(seed);
        let mut tx = SecureChannelEnd::client(&keys);
        let mut rx = SecureChannelEnd::server(&keys);
        for _ in 0..(1 + rng.below(11)) {
            let len = rng.below(600) as usize;
            let p = rng.bytes(len);
            let frame = tx.seal(&p).unwrap();
            assert_eq!(rx.open(&frame).unwrap(), p);
        }
    }
}

#[test]
fn channel_detects_arbitrary_bitflips() {
    let mut rng = Rng::new(0xF11);
    for seed in 0..64u8 {
        let keys = session_keys(seed);
        let mut tx = SecureChannelEnd::client(&keys);
        let mut rx = SecureChannelEnd::server(&keys);
        let len = 1 + rng.below(300) as usize;
        let payload = rng.bytes(len);
        let mut frame = tx.seal(&payload).unwrap();
        let i = rng.below(frame.len() as u64) as usize;
        frame[i] ^= 1 << rng.below(8);
        assert!(rx.open(&frame).is_err(), "flipped bit must be detected");
        assert!(rx.is_poisoned());
    }
}

#[test]
fn seq_window_matches_reference_model() {
    // Reference: accept iff not seen before AND not older than
    // (max_seen + 1 - window).
    let mut rng = Rng::new(0x5E9);
    for _ in 0..128 {
        let window = 16u32;
        let mut w = SeqWindow::new(window);
        let mut seen = std::collections::HashSet::new();
        let mut high: Option<u32> = None;
        for _ in 0..(1 + rng.below(79)) {
            let s = rng.below(64) as u32;
            let expect = match high {
                None => seen.insert(s),
                Some(h) => {
                    if s > h {
                        seen.insert(s)
                    } else if h - s >= window {
                        false
                    } else {
                        seen.insert(s)
                    }
                }
            };
            let got = w.accept(s);
            assert_eq!(got, expect, "seq {s} (high {high:?})");
            if got {
                high = Some(high.map_or(s, |h| h.max(s)));
            }
        }
    }
}

#[test]
fn hostid_is_deterministic_and_injective_looking() {
    // HostIDs for different locations under the same key differ (a
    // collision would be a SHA-1 collision).
    let mut rng = Rng::new(0x1D);
    let n = sfs_bignum::Nat::from_hex("c3a7f1").unwrap();
    let key = sfs_crypto::rabin::RabinPublicKey::from_modulus(n);
    for _ in 0..128 {
        let len_a = 1 + rng.below(12) as usize;
        let loc_a = rng.string(b"abcdefghijklmnopqrstuvwxyz", len_a);
        let len_b = 1 + rng.below(12) as usize;
        let loc_b = rng.string(b"abcdefghijklmnopqrstuvwxyz", len_b);
        let ha = HostId::compute(&loc_a, &key);
        let hb = HostId::compute(&loc_b, &key);
        assert_eq!(loc_a == loc_b, ha == hb);
    }
}
