//! Property-based tests over the protocol layers: wire formats must
//! round-trip for arbitrary values, the secure channel must be lossless
//! and tamper-evident for arbitrary payloads, and the namespace encodings
//! must be total on their domains.

use proptest::prelude::*;
use sfs_crypto::sha1::sha1;
use sfs_proto::channel::SecureChannelEnd;
use sfs_proto::keyneg::SessionKeys;
use sfs_proto::pathname::{base32_decode, base32_encode, HostId, SelfCertifyingPath};
use sfs_proto::userauth::SeqWindow;
use sfs_xdr::rpc::{record_mark, record_unmark, OpaqueAuth, RpcCall, RpcMessage, RpcReply};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder};

fn session_keys(seed: u8) -> SessionKeys {
    SessionKeys {
        kcs: sha1(&[seed, 1]),
        ksc: sha1(&[seed, 2]),
        session_id: sha1(&[seed, 3]),
    }
}

proptest! {
    #[test]
    fn base32_roundtrips(bytes in proptest::array::uniform20(any::<u8>())) {
        let s = base32_encode(&bytes);
        prop_assert_eq!(s.len(), 32);
        prop_assert_eq!(base32_decode(&s).unwrap(), bytes);
        // The alphabet never contains the confusing characters.
        prop_assert!(!s.contains(['l', '1', '0', 'o']));
    }

    #[test]
    fn pathname_roundtrips(
        bytes in proptest::array::uniform20(any::<u8>()),
        loc in "[a-z][a-z0-9.-]{0,30}",
        rest in proptest::option::of("[a-zA-Z0-9/._-]{1,40}"),
    ) {
        let path = SelfCertifyingPath { location: loc, host_id: HostId(bytes) };
        let mut full = path.full_path();
        if let Some(r) = &rest {
            full.push('/');
            full.push_str(r);
        }
        let (parsed, _) = SelfCertifyingPath::parse_full(&full).unwrap();
        prop_assert_eq!(parsed, path);
    }

    #[test]
    fn xdr_opaque_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        let mut dec = XdrDecoder::new(enc.bytes());
        prop_assert_eq!(dec.get_opaque().unwrap(), data);
        dec.finish().unwrap();
    }

    #[test]
    fn rpc_call_roundtrips(
        xid in any::<u32>(),
        prog in any::<u32>(),
        vers in any::<u32>(),
        pr in any::<u32>(),
        authno in any::<u32>(),
        args in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let msg = RpcMessage::Call(RpcCall {
            xid,
            prog,
            vers,
            proc: pr,
            cred: OpaqueAuth::sfs_authno(authno),
            verf: OpaqueAuth::none(),
            args: args.clone(),
        });
        match RpcMessage::from_xdr(&msg.to_xdr()).unwrap() {
            RpcMessage::Call(c) => {
                prop_assert_eq!(c.xid, xid);
                prop_assert_eq!(c.prog, prog);
                prop_assert_eq!(c.cred.as_sfs_authno(), Some(authno));
                // Args round up to 4-byte alignment with zero padding.
                prop_assert_eq!(&c.args[..args.len()], &args[..]);
                prop_assert!(c.args[args.len()..].iter().all(|&b| b == 0));
            }
            other => prop_assert!(false, "bad decode {other:?}"),
        }
    }

    #[test]
    fn rpc_reply_roundtrips(
        xid in any::<u32>(),
        results in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let call = RpcCall {
            xid,
            prog: 1,
            vers: 1,
            proc: 1,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
            args: vec![],
        };
        let msg = RpcMessage::Reply(RpcReply::success(&call, results.clone()));
        match RpcMessage::from_xdr(&msg.to_xdr()).unwrap() {
            RpcMessage::Reply(r) => {
                prop_assert_eq!(r.xid, xid);
                prop_assert_eq!(&r.results[..results.len()], &results[..]);
            }
            other => prop_assert!(false, "bad decode {other:?}"),
        }
    }

    #[test]
    fn record_marking_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..500)) {
        let framed = record_mark(&payload);
        let (got, consumed) = record_unmark(&framed).unwrap();
        prop_assert_eq!(got, payload);
        prop_assert_eq!(consumed, framed.len());
    }

    #[test]
    fn channel_roundtrips_arbitrary_payload_sequences(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600),
            1..12,
        ),
        seed in any::<u8>(),
    ) {
        let keys = session_keys(seed);
        let mut tx = SecureChannelEnd::client(&keys);
        let mut rx = SecureChannelEnd::server(&keys);
        for p in &payloads {
            let frame = tx.seal(p).unwrap();
            prop_assert_eq!(&rx.open(&frame).unwrap(), p);
        }
    }

    #[test]
    fn channel_detects_arbitrary_bitflips(
        payload in proptest::collection::vec(any::<u8>(), 1..300),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
        seed in any::<u8>(),
    ) {
        let keys = session_keys(seed);
        let mut tx = SecureChannelEnd::client(&keys);
        let mut rx = SecureChannelEnd::server(&keys);
        let mut frame = tx.seal(&payload).unwrap();
        let i = flip_byte.index(frame.len());
        frame[i] ^= 1 << flip_bit;
        prop_assert!(rx.open(&frame).is_err(), "flipped bit must be detected");
        prop_assert!(rx.is_poisoned());
    }

    #[test]
    fn seq_window_matches_reference_model(
        seqs in proptest::collection::vec(0u32..64, 1..80),
    ) {
        // Reference: accept iff not seen before AND not older than
        // (max_seen + 1 - window).
        let window = 16u32;
        let mut w = SeqWindow::new(window);
        let mut seen = std::collections::HashSet::new();
        let mut high: Option<u32> = None;
        for s in seqs {
            let expect = match high {
                None => seen.insert(s),
                Some(h) => {
                    if s > h {
                        seen.insert(s)
                    } else if h - s >= window {
                        false
                    } else {
                        seen.insert(s)
                    }
                }
            };
            let got = w.accept(s);
            prop_assert_eq!(got, expect, "seq {} (high {:?})", s, high);
            if got {
                high = Some(high.map_or(s, |h| h.max(s)));
            }
        }
    }

    #[test]
    fn hostid_is_deterministic_and_injective_looking(
        loc_a in "[a-z]{1,12}", loc_b in "[a-z]{1,12}",
    ) {
        // HostIDs for different locations under the same key differ (a
        // collision would be a SHA-1 collision).
        let n = sfs_bignum::Nat::from_hex("c3a7f1").unwrap();
        let key = sfs_crypto::rabin::RabinPublicKey::from_modulus(n);
        let ha = HostId::compute(&loc_a, &key);
        let hb = HostId::compute(&loc_b, &key);
        prop_assert_eq!(loc_a == loc_b, ha == hb);
    }
}
