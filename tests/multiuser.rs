//! Multi-user semantics: the AFS cache conundrum (§5.1), per-agent
//! namespace views (§2.3), and anonymous access (§3.1.2).

mod common;

use common::{World, ALICE_UID, BOB_UID};
use sfs::client::ClientError;
use sfs_nfs3::proto::Status;

#[test]
fn afs_conundrum_shared_cache_is_safe() {
    // §5.1: in AFS, a user who knows the session key can pollute the
    // shared client cache. In SFS, "two users can both retrieve a
    // self-certifying pathname … If they end up with the same path, they
    // can safely share the cache; they are asking for a server with the
    // same public key. Since neither user knows the corresponding private
    // key, neither can forge messages from the server."
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let path = server.path().clone();
    let hello = format!("{}/pub/hello", path.full_path());

    // Both users access the same pathname: one mount, one cache.
    assert_eq!(
        w.client.read_file(ALICE_UID, &hello).unwrap(),
        b"hello from fs.example.org"
    );
    assert_eq!(
        w.client.read_file(BOB_UID, &hello).unwrap(),
        b"hello from fs.example.org"
    );
    let mount_a = w.client.mount(ALICE_UID, &path).unwrap();
    let mount_b = w.client.mount(BOB_UID, &path).unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&mount_a, &mount_b),
        "same path ⇒ shared mount/cache"
    );

    // A user who *disagrees* about the key is asking for a different
    // HostID: a different name, cached separately — here it simply fails
    // to mount since no such server exists.
    let disagreeing = sfs_proto::pathname::SelfCertifyingPath::for_server(
        "fs.example.org",
        common::server_key(1).public(),
    );
    assert_ne!(disagreeing.dir_name(), path.dir_name());
    assert!(w.client.mount(BOB_UID, &disagreeing).is_err());
}

#[test]
fn users_cannot_use_each_others_authno() {
    // Authentication numbers map to per-user credentials on the server;
    // bob's anonymous authno cannot write alice's files even though they
    // share the mount and channel.
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let path = server.path().clone();
    let alice_file = format!("{}/home/alice/diary", path.full_path());
    w.client
        .write_file(ALICE_UID, &alice_file, b"dear diary")
        .unwrap();
    assert_eq!(
        w.client
            .write_file(BOB_UID, &alice_file, b"bob was here")
            .unwrap_err(),
        ClientError::Nfs(Status::Acces)
    );
    // And bob can still read public data over the same mount.
    let hello = format!("{}/pub/hello", path.full_path());
    assert!(w.client.read_file(BOB_UID, &hello).is_ok());
}

#[test]
fn sfs_listing_hides_unreferenced_hostids_per_agent() {
    // §2.3: "a naïve user who searches for HostIDs with command-line
    // filename completion cannot be tricked by another user into
    // accessing the wrong HostID" — listings only show what *this* agent
    // referenced.
    let w = World::new();
    let s1 = w.add_server(0, "one.example.org");
    let s2 = w.add_server(1, "two.example.org");
    w.login_alice();
    let f1 = format!("{}/pub/hello", s1.path().full_path());
    let f2 = format!("{}/pub/hello", s2.path().full_path());
    w.client.read_file(ALICE_UID, &f1).unwrap();
    w.client.read_file(BOB_UID, &f2).unwrap();
    let alice_view = w.client.list_sfs(ALICE_UID);
    let bob_view = w.client.list_sfs(BOB_UID);
    assert!(alice_view.contains(&s1.path().dir_name()));
    assert!(!alice_view.contains(&s2.path().dir_name()));
    assert!(bob_view.contains(&s2.path().dir_name()));
    assert!(!bob_view.contains(&s1.path().dir_name()));
}

#[test]
fn agents_are_per_user_and_replaceable() {
    // "Users can replace their agents at will."
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let path = server.path().clone();
    let file = format!("{}/home/alice/x", path.full_path());
    w.client.write_file(ALICE_UID, &file, b"with key").unwrap();

    // Alice replaces her agent with an empty one (e.g. logging out); a
    // fresh connection then authenticates anonymously.
    w.client.set_agent(
        ALICE_UID,
        std::sync::Arc::new(sfs_telemetry::sync::Mutex::new(sfs::agent::Agent::new())),
    );
    w.client.unmount_all();
    assert_eq!(
        w.client
            .write_file(ALICE_UID, &file, b"no key")
            .unwrap_err(),
        ClientError::Nfs(Status::Acces)
    );
}

#[test]
fn audit_trail_records_signatures() {
    // §2.5.1: "an SFS agent can keep a full audit trail of every private
    // key operation it performs."
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    let agent = w.login_alice();
    let file = format!("{}/home/alice/y", server.path().full_path());
    w.client.write_file(ALICE_UID, &file, b"signed in").unwrap();
    let trail: Vec<_> = agent.lock().audit_trail().to_vec();
    assert!(!trail.is_empty());
    assert_eq!(trail[0].location, "fs.example.org");
    assert_eq!(trail[0].host_id, server.path().host_id);
}

#[test]
fn anonymous_access_when_agent_declines() {
    // §2.5: after failed attempts "the user will access the file system
    // with anonymous permissions. Depending on the server's configuration,
    // this may permit access to certain parts of the file system."
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    // No keys at all for bob.
    let hello = format!("{}/pub/hello", server.path().full_path());
    assert!(w.client.read_file(BOB_UID, &hello).is_ok());
    let private = format!("{}/home/alice/z", server.path().full_path());
    assert!(w.client.write_file(BOB_UID, &private, b"x").is_err());
}

#[test]
fn ephemeral_rotation_does_not_break_existing_mounts() {
    // "Clients discard and regenerate K_C at regular intervals (every
    // hour by default)": old sessions continue, new sessions use the new
    // key.
    let w = World::new();
    let s1 = w.add_server(0, "one.example.org");
    let s2 = w.add_server(1, "two.example.org");
    w.login_alice();
    let f1 = format!("{}/pub/hello", s1.path().full_path());
    assert!(w.client.read_file(ALICE_UID, &f1).is_ok());
    w.client.rotate_ephemeral();
    // Existing mount still works (session keys are independent of K_C
    // once derived)…
    assert!(w.client.read_file(ALICE_UID, &f1).is_ok());
    // …and a fresh mount with the new ephemeral key works too.
    let f2 = format!("{}/pub/hello", s2.path().full_path());
    assert!(w.client.read_file(ALICE_UID, &f2).is_ok());
}
