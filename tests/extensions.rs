//! The paper's envisaged extensions (§2.3 footnote, §2.4, §2.5.1): the
//! `ssu` utility, proxy agents for remote login, external-PKI name hooks,
//! and split private keys.

mod common;

use std::sync::Arc;

use common::{World, ALICE_UID};
use sfs::agent::Agent;
use sfs::sfskey::{combine_key_shares, split_private_key, KeyShare};
use sfs_bignum::XorShiftSource;
use sfs_telemetry::sync::Mutex;

#[test]
fn ssu_maps_root_operations_to_user_agent() {
    // §2.3: "an ssu utility allows a user to map operations performed in
    // a super-user shell to her own agent."
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let file = format!("{}/home/alice/root-edit", server.path().full_path());
    // Without ssu, uid 0's (empty) agent authenticates anonymously and
    // the write to alice's directory fails.
    assert!(w.client.write_file(0, &file, b"x").is_err());
    w.client.unmount_all();
    // After ssu, the super-user shell uses alice's agent and her keys.
    w.client.ssu(ALICE_UID);
    w.client.write_file(0, &file, b"as alice").unwrap();
    assert_eq!(w.client.read_file(ALICE_UID, &file).unwrap(), b"as alice");
}

#[test]
fn proxy_agent_forwards_authentication_with_audit_trail() {
    // §2.5.1: "Proxy agents could forward authentication requests to
    // other SFS agents … That way, users can automatically access their
    // files when logging in to a remote machine." The audit trail records
    // "the path of processes and machines through which the request
    // arrived".
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");

    // The home agent holds alice's key (e.g. on her workstation).
    let home_agent = Arc::new(Mutex::new(Agent::new()));
    home_agent.lock().add_key(common::alice_key());

    // On the remote machine, a keyless proxy agent forwards to home.
    let mut proxy = Agent::new();
    proxy.set_upstream(home_agent.clone(), "lab-machine.example.net");
    w.client.set_agent(ALICE_UID, Arc::new(Mutex::new(proxy)));

    let file = format!("{}/home/alice/remote-work", server.path().full_path());
    w.client.write_file(ALICE_UID, &file, b"via proxy").unwrap();

    // The signature happened at home, with the hop recorded.
    let trail = home_agent.lock().audit_trail().to_vec();
    assert!(!trail.is_empty());
    assert_eq!(trail[0].via, vec!["lab-machine.example.net".to_string()]);
    assert_eq!(trail[0].location, "fs.example.org");
}

#[test]
fn proxy_respects_its_own_blocks() {
    // A proxy enforces its own revocation/blocking policy before
    // forwarding — a compromised remote machine cannot make the home
    // agent sign for a host the proxy's owner blocked.
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    let home_agent = Arc::new(Mutex::new(Agent::new()));
    home_agent.lock().add_key(common::alice_key());
    let mut proxy = Agent::new();
    proxy.set_upstream(home_agent.clone(), "lab");
    proxy.block_host(server.path().host_id);
    w.client.set_agent(ALICE_UID, Arc::new(Mutex::new(proxy)));
    let file = format!("{}/home/alice/blocked", server.path().full_path());
    assert!(w.client.write_file(ALICE_UID, &file, b"x").is_err());
    assert!(
        home_agent.lock().audit_trail().is_empty(),
        "no signature was made"
    );
}

#[test]
fn name_hook_builds_pathnames_from_external_pki() {
    // §2.4: "one might want to use SSL certificates to authenticate SFS
    // servers … an agent that generates self-certifying pathnames from
    // SSL certificates." The hook stands in for the certificate fetch.
    let w = World::new();
    let server = w.add_server(0, "shop.example.com");
    w.login_alice();
    let sc_path = server.path().full_path();
    let agent = w.client.agent(ALICE_UID);
    agent.lock().set_name_hook(Box::new(move |name: &str| {
        // "Intercept every request for a file name of the form
        // /sfs/ssl.<domain>" and consult the (mock) certificate store.
        let domain = name.strip_prefix("ssl.")?;
        if domain == "shop.example.com" {
            Some(sc_path.clone())
        } else {
            None
        }
    }));
    assert_eq!(
        w.client
            .read_file(ALICE_UID, "/sfs/ssl.shop.example.com/pub/hello")
            .unwrap(),
        b"hello from shop.example.com"
    );
    // Unknown domains are not mapped.
    assert!(w
        .client
        .read_file(ALICE_UID, "/sfs/ssl.unknown.example/pub/hello")
        .is_err());
}

#[test]
fn split_key_requires_both_shares() {
    let mut rng = XorShiftSource::new(0x5117);
    let key = common::alice_key();
    let (share_a, share_b) = split_private_key(&key, &mut rng);
    // Recombination works.
    let back = combine_key_shares(&share_a, &share_b).expect("combine");
    assert_eq!(back.public(), key.public());
    // Either share alone is not the key (and a share with a zero partner
    // is just the pad/masked blob — parsing fails or yields a different
    // key with overwhelming probability).
    let zero = KeyShare {
        bytes: vec![0u8; share_a.bytes.len()],
    };
    match combine_key_shares(&share_a, &zero) {
        None => {}
        Some(k) => assert_ne!(k.public(), key.public()),
    }
    match combine_key_shares(&share_b, &zero) {
        None => {}
        Some(k) => assert_ne!(k.public(), key.public()),
    }
    // Mismatched lengths refused.
    let short = KeyShare {
        bytes: vec![1, 2, 3],
    };
    assert!(combine_key_shares(&share_a, &short).is_none());
}

#[test]
fn split_key_agent_authserver_flow() {
    // The deployment §2.5.1 sketches: the agent stores one share, the
    // authserver the other; login recombines transiently.
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    let mut rng = XorShiftSource::new(0xABCDE);
    let (agent_share, server_share) = split_private_key(&common::alice_key(), &mut rng);
    // The authserver-side share travels as an opaque blob (reusing the
    // encrypted-key slot would be typical; store directly for the test).
    let recombined = combine_key_shares(&agent_share, &server_share).unwrap();
    w.client.agent(ALICE_UID).lock().add_key(recombined);
    let file = format!("{}/home/alice/split", server.path().full_path());
    w.client
        .write_file(ALICE_UID, &file, b"two shares, one login")
        .unwrap();
}
