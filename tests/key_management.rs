//! §2.4's server key-management techniques, each realized "using only
//! standard file utilities" on top of the file system itself: manual key
//! distribution, secure links, secure bookmarks, certification
//! authorities, certification paths, and password authentication.

mod common;

use common::{World, ALICE_UID, BOB_UID};
use sfs::agent::Agent;
use sfs::sfskey;
use sfs_bignum::XorShiftSource;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_vfs::Credentials;

#[test]
fn manual_key_distribution_via_symlink() {
    // "If the administrators of a site want to install some server's
    // public key on the local hard disk of every client, they can simply
    // create a symbolic link to the appropriate self-certifying pathname."
    // The agent's dynamic links model the client-local /mit symlink.
    let w = World::new();
    let server = w.add_server(0, "sfs.lcs.mit.edu");
    w.login_alice();
    w.client
        .agent(ALICE_UID)
        .lock()
        .create_link("mit", &server.path().full_path());
    assert_eq!(
        w.client.read_file(ALICE_UID, "/sfs/mit/pub/hello").unwrap(),
        b"hello from sfs.lcs.mit.edu"
    );
}

#[test]
fn secure_links_chain_across_servers() {
    // "A symbolic link on one SFS file system can point to the
    // self-certifying pathname of another, forming a secure link."
    let w = World::new();
    let a = w.add_server(0, "a.example.org");
    let b = w.add_server(1, "b.example.org");
    let c = w.add_server(2, "c.example.org");
    w.login_alice();
    // a:/pub/next -> b, b:/pub/next -> c (links to full self-certifying
    // paths).
    let root_creds = Credentials::root();
    for (src, dst) in [(&a, &b), (&b, &c)] {
        let vfs = src.vfs();
        let (pub_ino, _) = vfs.lookup_path(&root_creds, "/pub").unwrap();
        vfs.symlink(
            &root_creds,
            pub_ino,
            "next",
            &format!("{}/pub", dst.path().full_path()),
        )
        .unwrap();
    }
    // Follow two secure links in one path.
    let chained = format!("{}/pub/next/next/hello", a.path().full_path());
    assert_eq!(
        w.client.read_file(ALICE_UID, &chained).unwrap(),
        b"hello from c.example.org"
    );
}

#[test]
fn secure_bookmarks_roundtrip() {
    // "When run in an SFS file system, the Unix pwd command returns the
    // full self-certifying pathname … By simply typing `cd Location`,
    // they can subsequently return securely."
    let w = World::new();
    let server = w.add_server(0, "files.vendor.com");
    w.login_alice();
    let dir = format!("{}/pub", server.path().full_path());
    let (mount, _, _) = w.client.resolve(ALICE_UID, &dir).unwrap();
    let pwd = w.client.pwd(&mount, "pub");
    // Extract the self-certifying prefix from pwd and bookmark it.
    let (sc, rest) = SelfCertifyingPath::parse_full(&pwd).unwrap();
    assert_eq!(rest, "/pub");
    w.client.agent(ALICE_UID).lock().add_bookmark(&sc);
    // `cd files.vendor.com` now works by name.
    assert_eq!(
        w.client
            .read_file(ALICE_UID, "/sfs/files.vendor.com/pub/hello")
            .unwrap(),
        b"hello from files.vendor.com"
    );
}

#[test]
fn certification_authority_is_a_file_system() {
    // "SFS certification authorities are nothing more than ordinary file
    // systems serving symbolic links."
    let w = World::new();
    let verisign = w.add_server(0, "verisign.example.com");
    let target = w.add_server(1, "target.example.org");
    w.login_alice();
    // Verisign serves a link "target" -> target's self-certifying path.
    let root_creds = Credentials::root();
    let vfs = verisign.vfs();
    let root = vfs.root();
    vfs.symlink(&root_creds, root, "target", &target.path().full_path())
        .unwrap();
    // Clients install one link to the CA, then use names below it.
    let agent = w.client.agent(ALICE_UID);
    agent
        .lock()
        .create_link("verisign", &verisign.path().full_path());
    assert_eq!(
        w.client
            .read_file(ALICE_UID, "/sfs/verisign/target/pub/hello")
            .unwrap(),
        b"hello from target.example.org"
    );
}

#[test]
fn certification_paths_search_directories_in_order() {
    // "A user can give his agent a list of directories containing
    // symbolic links … the agent maps the name by looking in each
    // directory of the certification path in sequence."
    let w = World::new();
    let ca1 = w.add_server(0, "ca-one.example.com");
    let ca2 = w.add_server(1, "ca-two.example.com");
    let dest = w.add_server(2, "dest.example.org");
    w.login_alice();
    let root_creds = Credentials::root();
    // Only ca2 knows "dest".
    let vfs = ca2.vfs();
    let root = vfs.root();
    vfs.symlink(&root_creds, root, "dest", &dest.path().full_path())
        .unwrap();
    let agent = w.client.agent(ALICE_UID);
    {
        let mut a = agent.lock();
        a.add_cert_path(&ca1.path().full_path());
        a.add_cert_path(&ca2.path().full_path());
    }
    // Accessing /sfs/dest consults ca1 (miss) then ca2 (hit).
    assert_eq!(
        w.client
            .read_file(ALICE_UID, "/sfs/dest/pub/hello")
            .unwrap(),
        b"hello from dest.example.org"
    );
    // Unresolvable names fail cleanly.
    assert!(w
        .client
        .read_file(ALICE_UID, "/sfs/nonexistent/pub/x")
        .is_err());
}

#[test]
fn password_authentication_travel_scenario() {
    // The §2.4 walkthrough: register at home, then from a fresh machine a
    // single password yields the server's pathname, the private key, and
    // transparent authentication.
    let w = World::new();
    let server = w.add_server(0, "sfs.lcs.mit.edu");
    let mut rng = XorShiftSource::new(0x7AB);
    sfskey::register(
        server.authserver(),
        "alice",
        b"kHux-qr1cm-purpl",
        &common::alice_key(),
        &mut rng,
    );

    // The "research laboratory" client: no keys, no configuration.
    let lab = World::new();
    lab.net.register(server.clone());
    let mut agent = Agent::new();
    let conn = server.accept();
    let result = sfskey::add(
        &conn,
        &common::srp_group(),
        &mut agent,
        "alice",
        b"kHux-qr1cm-purpl",
        &mut rng,
    )
    .unwrap();
    let path = result.server_path.unwrap();
    assert_eq!(&path, server.path());
    // Install the populated agent and work on home files transparently.
    lab.client.set_agent(
        ALICE_UID,
        std::sync::Arc::new(sfs_telemetry::sync::Mutex::new(agent)),
    );
    let file = format!("{}/home/alice/draft.tex", path.full_path());
    lab.client
        .write_file(ALICE_UID, &file, b"\\section{SFS}")
        .unwrap();
    assert_eq!(
        lab.client.read_file(ALICE_UID, &file).unwrap(),
        b"\\section{SFS}"
    );
    // And the sfskey-installed link works: /sfs/sfs.lcs.mit.edu/…
    assert_eq!(
        lab.client
            .read_file(ALICE_UID, "/sfs/sfs.lcs.mit.edu/pub/hello")
            .unwrap(),
        b"hello from sfs.lcs.mit.edu"
    );
}

#[test]
fn authserver_imports_remote_user_database() {
    // "A server can import a centrally-maintained list of users over SFS
    // while also keeping a few guest accounts in a local database" —
    // exported public databases carry no secrets.
    let w = World::new();
    let centre = w.add_server(0, "users.example.com");
    let branch = w.add_server(1, "branch.example.org");
    // Carol is registered only at the centre.
    let mut rng = XorShiftSource::new(0xCA201);
    let carol_key = sfs_crypto::rabin::generate_keypair(512, &mut rng);
    const CAROL_UID: u32 = 3000;
    centre
        .authserver()
        .register_user(sfs::authserver::UserRecord {
            user: "carol".into(),
            uid: CAROL_UID,
            gids: vec![300],
            public_key: carol_key.public().to_bytes(),
        });
    w.client.agent(CAROL_UID).lock().add_key(carol_key);
    // Carol's home directory exists on the branch server.
    let root_creds = Credentials::root();
    let vfs = branch.vfs();
    let home = vfs.mkdir_p("/home/carol").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        sfs_vfs::SetAttr {
            uid: Some(CAROL_UID),
            gid: Some(300),
            ..Default::default()
        },
    )
    .unwrap();
    let file = format!("{}/home/carol/hi", branch.path().full_path());
    // Before the import the branch does not know carol's key.
    assert!(w.client.write_file(CAROL_UID, &file, b"x").is_err());
    w.client.unmount_all();

    // The branch imports the centre's public database; carol can now
    // authenticate there.
    let export = centre.authserver().export_public_db();
    assert!(!export.is_empty());
    branch.authserver().import_read_only(export);
    w.client
        .write_file(CAROL_UID, &file, b"imported identity")
        .unwrap();
    // Bob (no account anywhere) still cannot.
    let _ = BOB_UID;
    assert!(w.client.write_file(BOB_UID, &file, b"nope").is_err());
}
