//! The public read-only dialect end-to-end (§2.4, §3.2): presigned
//! databases served over the wire, replication on untrusted machines,
//! tamper detection, and the crypto-cost asymmetry.

mod common;

use common::World;
use sfs::wire::{CallMsg, Dialect, ReplyMsg, Service};
use sfs_proto::keyneg::KeyNegRequest;
use sfs_proto::readonly::{resolve_path, verified_fetch, RoDatabase, RoNode, SignedRoot};
use sfs_vfs::Credentials;
use sfs_xdr::Xdr;

/// Drives the read-only dialect over the wire protocol against a server
/// connection (the read-only client's fetch loop).
struct RoClient<'a> {
    conn: &'a sfs::server::ServerConn,
}

impl<'a> RoClient<'a> {
    fn connect(conn: &'a sfs::server::ServerConn, req: KeyNegRequest) -> Self {
        let reply = conn.handle(CallMsg::Hello {
            req,
            service: Service::File,
            dialect: Dialect::ReadOnly,
            version: 1,
            extensions: String::new(),
        });
        assert!(matches!(reply, ReplyMsg::ServerReply(_)), "{reply:?}");
        RoClient { conn }
    }

    fn root(&self) -> SignedRoot {
        match self.conn.handle(CallMsg::RoGetRoot) {
            ReplyMsg::RoRoot(root) => root,
            other => panic!("{other:?}"),
        }
    }

    fn block(&self, digest: [u8; 20]) -> Option<Vec<u8>> {
        match self.conn.handle(CallMsg::RoGetBlock(digest)) {
            ReplyMsg::RoBlock(b) => Some(b),
            ReplyMsg::Error(_) => None,
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn read_only_export_served_over_wire() {
    let w = World::new();
    let server = w.add_server(0, "ca.example.com");
    server.publish_read_only(1);
    let conn = server.accept();
    let req = KeyNegRequest {
        location: server.path().location.clone(),
        host_id: server.path().host_id,
    };
    let ro = RoClient::connect(&conn, req);
    // The signed root verifies against the key the HostID certifies.
    let root = ro.root();
    assert!(root.verify(common::server_key(0).public()));
    // Walk to /pub/hello by fetching blocks, verifying each digest.
    let root_block = ro.block(root.root_digest).expect("root block");
    assert_eq!(sfs_crypto::sha1::sha1(&root_block), root.root_digest);
    let dir = RoNode::from_xdr(&root_block).unwrap();
    let RoNode::Dir(entries) = dir else {
        panic!("root must be a dir")
    };
    let (_, _, pub_digest) = entries.iter().find(|(n, _, _)| n == "pub").unwrap();
    let pub_block = ro.block(*pub_digest).expect("pub block");
    assert_eq!(sfs_crypto::sha1::sha1(&pub_block), *pub_digest);
}

#[test]
fn untrusted_replica_cannot_forge() {
    // "Read-only file systems [can] be replicated on untrusted machines":
    // a replica holds the database but no key; any modification it makes
    // is detected by digest or signature checks.
    let w = World::new();
    let server = w.add_server(0, "ca.example.com");
    let db = server.publish_read_only(3);

    // The replica copies the database and tampers with a file block.
    let mut replica: RoDatabase = (*db).clone();
    let root =
        sfs_proto::readonly::verified_root(&replica, common::server_key(0).public()).unwrap();
    let RoNode::Dir(entries) = verified_fetch(&replica, &root).unwrap() else {
        panic!("root dir")
    };
    let (_, _, pub_digest) = entries.iter().find(|(n, _, _)| n == "pub").unwrap();
    assert!(replica.tamper_with_block(pub_digest));
    assert!(verified_fetch(&replica, pub_digest).is_err());

    // Forging a different root requires a signature the replica cannot
    // produce.
    let mut forged = replica.clone();
    forged.root = SignedRoot {
        root_digest: [0u8; 20],
        version: 99,
        signature: vec![0u8; 97],
    };
    assert!(sfs_proto::readonly::verified_root(&forged, common::server_key(0).public()).is_err());
}

#[test]
fn resolve_path_through_snapshot() {
    let w = World::new();
    let server = w.add_server(0, "ca.example.com");
    // Add a nested tree before publishing.
    let vfs = server.vfs();
    let root_creds = Credentials::root();
    let d = vfs.mkdir_p("/links/deep").unwrap();
    vfs.symlink(&root_creds, d, "mit", "/sfs/mit:xyz").unwrap();
    let db = server.publish_read_only(1);
    let root = sfs_proto::readonly::verified_root(&db, common::server_key(0).public()).unwrap();
    match resolve_path(&db, root, "/pub/hello").unwrap() {
        RoNode::File(data) => assert_eq!(data, b"hello from ca.example.com"),
        other => panic!("{other:?}"),
    }
    match resolve_path(&db, root, "/links/deep/mit").unwrap() {
        RoNode::Symlink(t) => assert_eq!(t, "/sfs/mit:xyz"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn republish_changes_root_but_reuses_unchanged_blocks() {
    // "Cryptographic computation … proportional to the file system's size
    // and rate of change": only changed subtrees get new blocks.
    let w = World::new();
    let server = w.add_server(0, "ca.example.com");
    let db1 = server.publish_read_only(1);
    // Change one file.
    let vfs = server.vfs();
    let root_creds = Credentials::root();
    let (pub_ino, _) = vfs.lookup_path(&root_creds, "/pub").unwrap();
    vfs.write_file(&root_creds, pub_ino, "hello", b"updated contents")
        .unwrap();
    let db2 = server.publish_read_only(2);
    assert_ne!(db1.root.root_digest, db2.root.root_digest);
    assert!(db2.root.version > db1.root.version);
    // The home directory subtree was untouched; its blocks are identical,
    // so the new database shares them (content addressing dedupes).
    let r1 = sfs_proto::readonly::verified_root(&db1, common::server_key(0).public()).unwrap();
    let r2 = sfs_proto::readonly::verified_root(&db2, common::server_key(0).public()).unwrap();
    let home1 = match resolve_path(&db1, r1, "/home").unwrap() {
        RoNode::Dir(e) => e,
        other => panic!("{other:?}"),
    };
    let home2 = match resolve_path(&db2, r2, "/home").unwrap() {
        RoNode::Dir(e) => e,
        other => panic!("{other:?}"),
    };
    assert_eq!(home1, home2, "unchanged subtree digests are stable");
}

#[test]
fn read_only_service_needs_dialect_selection() {
    // `sfssd` routes by dialect: read-only fetches on a read-write
    // connection are refused.
    let w = World::new();
    let server = w.add_server(0, "ca.example.com");
    server.publish_read_only(1);
    let conn = server.accept();
    assert!(matches!(
        conn.handle(CallMsg::RoGetRoot),
        ReplyMsg::Error(_)
    ));
}

#[test]
fn ro_mount_through_client() {
    // The integrated read-only client: certify, verify root, fetch and
    // cache verified blocks.
    let w = World::new();
    let server = w.add_server(0, "mirror.example.com");
    server.publish_read_only(7);
    let mount = w.client.mount_read_only(server.path()).unwrap();
    assert_eq!(mount.version(), 7);
    assert_eq!(
        mount.read_file("/pub/hello").unwrap(),
        b"hello from mirror.example.com"
    );
    assert!(mount.readdir("/").unwrap().contains(&"pub".to_string()));
    assert!(mount.read_file("/pub/missing").is_err());
    // Content-addressed caching: re-reading takes no further RPCs.
    let before = mount.round_trips();
    mount.read_file("/pub/hello").unwrap();
    assert_eq!(mount.round_trips(), before);
}

#[test]
fn ro_mount_rejects_wrong_key() {
    // A pathname naming a different key must fail certification even
    // though the dialect is cleartext.
    let w = World::new();
    let server = w.add_server(0, "mirror.example.com");
    server.publish_read_only(1);
    let forged = sfs_proto::pathname::SelfCertifyingPath::for_server(
        "mirror.example.com",
        common::server_key(1).public(),
    );
    let err = w.client.mount_read_only(&forged).unwrap_err();
    assert!(
        matches!(err, sfs::client::ClientError::Protocol(_)),
        "{err:?}"
    );
}
