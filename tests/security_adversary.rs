//! §2.1.2 threat-model tests: "SFS assumes that malicious parties entirely
//! control the network. Attackers can intercept packets, tamper with them,
//! and inject new packets onto the network. … attackers can do no worse
//! than delay the file system's operation or conceal the existence of
//! servers."

mod common;

use std::sync::Arc;

use common::{World, ALICE_UID};
use sfs::client::ClientError;
use sfs_sim::{Direction, Interceptor, PacketLog, Verdict};
use sfs_telemetry::sync::Mutex;

/// Flips one bit in every sealed reply after the first `skip` packets.
struct BitFlipper {
    skip: usize,
    seen: usize,
}

impl Interceptor for BitFlipper {
    fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict {
        if dir != Direction::Reply {
            return Verdict::Deliver;
        }
        self.seen += 1;
        if self.seen <= self.skip {
            return Verdict::Deliver;
        }
        let mut b = bytes.to_vec();
        let n = b.len();
        b[n / 2] ^= 0x40;
        Verdict::Replace(b)
    }
}

#[test]
fn tampered_traffic_detected_not_accepted() {
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let path = server.path().clone();
    // Establish a healthy mount first.
    let hello = format!("{}/pub/hello", path.full_path());
    assert!(w.client.read_file(ALICE_UID, &hello).is_ok());

    // Attach a tamperer and force a fresh connection.
    w.client.unmount_all();
    w.net
        .set_interceptor(Arc::new(Mutex::new(BitFlipper { skip: 4, seen: 0 })));
    // The key negotiation messages (first packets) pass; the sealed NFS
    // traffic afterwards is tampered with. The client must observe an
    // error — never silently wrong data.
    let result = w.client.read_file(ALICE_UID, &hello);
    match result {
        // A flipped bit in a sealed frame kills the session (Channel /
        // Protocol); if the redial's negotiation is also tampered with,
        // the handshake fails self-certification (KeyMismatch / KeyNeg).
        Err(
            ClientError::Channel(_)
            | ClientError::Protocol(_)
            | ClientError::KeyNeg(_)
            | ClientError::KeyMismatch,
        ) => {}
        other => panic!("tampering must be detected, got {other:?}"),
    }
}

/// Replays the previous request (a classic replay attack).
struct RequestReplayer {
    last: Option<Vec<u8>>,
    armed: bool,
    fired: bool,
}

impl Interceptor for RequestReplayer {
    fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict {
        if dir != Direction::Request {
            return Verdict::Deliver;
        }
        if self.armed && !self.fired {
            if let Some(prev) = self.last.clone() {
                self.fired = true;
                return Verdict::Replace(prev);
            }
        }
        self.last = Some(bytes.to_vec());
        Verdict::Deliver
    }
}

#[test]
fn replayed_requests_rejected_by_server_channel() {
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let path = server.path().clone();
    let hello = format!("{}/pub/hello", path.full_path());
    let replayer = Arc::new(Mutex::new(RequestReplayer {
        last: None,
        armed: false,
        fired: false,
    }));
    w.net.set_interceptor(replayer.clone());
    assert!(w.client.read_file(ALICE_UID, &hello).is_ok());
    // Arm: the next request is replaced by a replay of the previous one.
    // The server's cipher stream is past the replayed frame, so it can
    // never be accepted — the session dies instead, and the client
    // recovers by renegotiating keys and reissuing the original request:
    // "attackers can do no worse than delay the file system's operation."
    replayer.lock().armed = true;
    let result = w.client.read_file(ALICE_UID, &hello);
    assert_eq!(
        result.expect("client recovers via rekey"),
        b"hello from fs.example.org".to_vec()
    );
    let mount = w.client.mount(ALICE_UID, &path).unwrap();
    assert!(
        mount.reconnects() >= 1,
        "the replay must have forced a full key renegotiation"
    );
}

#[test]
fn recorded_ciphertext_reveals_nothing_recognizable() {
    // Forward secrecy groundwork: the recorded traffic must not contain
    // the plaintext, and the server's long-lived key alone cannot decrypt
    // the session (the key halves protecting the server→client direction
    // were encrypted to the *ephemeral* client key; see
    // `sfs_proto::keyneg` tests for the direct property).
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    let log = PacketLog::new();
    w.net.set_log(log.clone());
    let path = server.path().clone();
    let secret_name = "very-identifiable-filename-xyzzy";
    let file = format!("{}/home/alice/{}", path.full_path(), secret_name);
    w.client
        .write_file(ALICE_UID, &file, b"very-identifiable-content-plugh")
        .unwrap();
    assert!(log.len() > 4, "expected recorded traffic");
    for (_, packet) in log.snapshot() {
        for needle in [
            &b"very-identifiable-filename-xyzzy"[..],
            b"very-identifiable-content-plugh",
        ] {
            assert!(
                !packet.windows(needle.len()).any(|w| w == needle),
                "plaintext leaked onto the wire"
            );
        }
    }
}

#[test]
fn denial_only_delays_not_corrupts() {
    // An attacker who drops everything causes timeouts — "attackers can
    // do no worse than delay the file system's operation".
    struct DropAll;
    impl Interceptor for DropAll {
        fn intercept(&mut self, _d: Direction, _b: &[u8]) -> Verdict {
            Verdict::Drop
        }
    }
    let w = World::new();
    let server = w.add_server(0, "fs.example.org");
    w.login_alice();
    w.net.set_interceptor(Arc::new(Mutex::new(DropAll)));
    let hello = format!("{}/pub/hello", server.path().full_path());
    let before = w.clock.now();
    let err = w.client.read_file(ALICE_UID, &hello).unwrap_err();
    assert_eq!(err, ClientError::Net(sfs_sim::WireError::Timeout));
    assert!(
        w.clock.now() > before,
        "time passed (delay), nothing corrupted"
    );
}

#[test]
fn server_without_private_key_cannot_complete_mount() {
    // A machine can *claim* a Location but without K_S⁻¹ it cannot
    // decrypt the client's key halves, so the mount never completes.
    // Simulate by registering a different server object (different key)
    // under the location that alice's pathname expects.
    let w = World::new();
    let _real = w.add_server(0, "fs.example.org");
    let imposter = w.add_server(1, "fs.example.org"); // replaces in registry
    w.login_alice();
    // alice's pathname embeds server key 0; imposter has key 1.
    let victim_path = sfs_proto::pathname::SelfCertifyingPath::for_server(
        "fs.example.org",
        common::server_key(0).public(),
    );
    let err = w.client.mount(ALICE_UID, &victim_path).unwrap_err();
    // The imposter's key hashes to the wrong HostID: self-certification
    // fails before any key halves are sent.
    assert!(matches!(err, ClientError::KeyMismatch), "{err:?}");
    let _ = imposter;
}
