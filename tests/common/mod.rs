//! Shared world-building helpers for the integration tests.

use std::sync::Arc;

use sfs::agent::Agent;
use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_telemetry::sync::Mutex;
use sfs_vfs::{Credentials, SetAttr, Vfs};
use std::sync::OnceLock;

/// Fixed test uid with an account on the test servers.
pub const ALICE_UID: u32 = 1000;

/// A second user without server accounts.
#[allow(dead_code)]
pub const BOB_UID: u32 = 2000;

/// Cached 768-bit server keys (generation dominates test time).
pub fn server_key(which: usize) -> RabinPrivateKey {
    static KEYS: OnceLock<Vec<RabinPrivateKey>> = OnceLock::new();
    KEYS.get_or_init(|| {
        (0..3)
            .map(|i| {
                let mut rng = XorShiftSource::new(0xFEED_0000 + 2048 * i as u64);
                generate_keypair(768, &mut rng)
            })
            .collect()
    })[which]
        .clone()
}

/// Cached user key for alice.
pub fn alice_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA11CE);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

/// Cached small SRP group.
pub fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x9109);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

/// A complete test world with one client and up to several servers on a
/// shared clock and network. (Dead-code allowances: each integration-test
/// binary uses a different subset of these helpers.)
#[allow(dead_code)]
pub struct World {
    pub clock: SimClock,
    pub net: Arc<SfsNetwork>,
    pub client: Arc<SfsClient>,
}

impl World {
    /// A fresh world with no servers.
    pub fn new() -> World {
        let clock = SimClock::new();
        let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
        let client = SfsClient::new(net.clone(), b"world-client");
        World { clock, net, client }
    }

    /// Adds a server at `location` (key slot `which`) with a standard
    /// layout: world-readable `/pub/hello`, alice-owned `/home/alice`,
    /// alice registered with the authserver.
    pub fn add_server(&self, which: usize, location: &str) -> Arc<SfsServer> {
        let vfs = Vfs::new(10 + which as u64, self.clock.clone());
        let root_creds = Credentials::root();
        let home = vfs.mkdir_p("/home/alice").unwrap();
        vfs.setattr(
            &root_creds,
            home,
            SetAttr {
                uid: Some(ALICE_UID),
                gid: Some(100),
                ..Default::default()
            },
        )
        .unwrap();
        let public = vfs.mkdir_p("/pub").unwrap();
        vfs.setattr(
            &root_creds,
            public,
            SetAttr {
                mode: Some(0o755),
                ..Default::default()
            },
        )
        .unwrap();
        vfs.write_file(
            &root_creds,
            public,
            "hello",
            format!("hello from {location}").as_bytes(),
        )
        .unwrap();
        let (hello, _) = vfs.lookup(&root_creds, public, "hello").unwrap();
        vfs.setattr(
            &root_creds,
            hello,
            SetAttr {
                mode: Some(0o644),
                ..Default::default()
            },
        )
        .unwrap();

        let auth = Arc::new(AuthServer::new(srp_group(), 2));
        auth.register_user(UserRecord {
            user: "alice".into(),
            uid: ALICE_UID,
            gids: vec![100],
            public_key: alice_key().public().to_bytes(),
        });
        let server = SfsServer::new(
            ServerConfig::new(location),
            server_key(which),
            vfs,
            auth,
            SfsPrg::from_entropy(location.as_bytes()),
        );
        self.net.register(server.clone());
        server
    }

    /// Gives alice's agent her private key.
    #[allow(dead_code)]
    pub fn login_alice(&self) -> Arc<Mutex<Agent>> {
        let agent = self.client.agent(ALICE_UID);
        agent.lock().add_key(alice_key());
        agent
    }
}
