//! Quickstart: bring up an SFS server, mount it from a client by its
//! self-certifying pathname, and work with files securely.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, SetAttr, Vfs};

fn main() {
    // ── Server side ────────────────────────────────────────────────────
    // Anyone with a domain name can create a file server: generate a key,
    // run the software. No authority to consult (§2.1.3).
    let clock = SimClock::new();
    let mut rng = XorShiftSource::new(2026);
    let server_key = generate_keypair(768, &mut rng);

    let vfs = Vfs::new(1, clock.clone());
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        SetAttr {
            uid: Some(1000),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();

    let auth = Arc::new(AuthServer::new(SrpGroup::generate(128, &mut rng), 2));
    // Alice's public key maps to her Unix credentials (§2.5.1).
    let alice_key = generate_keypair(512, &mut rng);
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: 1000,
        gids: vec![100],
        public_key: alice_key.public().to_bytes(),
    });

    let server = SfsServer::new(
        ServerConfig::new("sfs.lcs.mit.edu"),
        server_key,
        vfs,
        auth,
        SfsPrg::from_entropy(b"quickstart-server"),
    );

    // The server's name on every client in the world:
    println!("self-certifying pathname:\n  {}\n", server.path());

    // ── Client side ────────────────────────────────────────────────────
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::new(net, b"quickstart-client");
    client.agent(1000).lock().add_key(alice_key);

    // Paths under /sfs/Location:HostID automount on first use; the key
    // negotiation, server certification, and user authentication all
    // happen transparently.
    let notes = format!("{}/home/alice/notes.txt", server.path().full_path());
    client
        .write_file(1000, &notes, b"self-certifying pathnames need no PKI")
        .expect("write over the secure channel");
    let back = client.read_file(1000, &notes).expect("read back");
    println!("read {} bytes back over the secure channel:", back.len());
    println!("  {}\n", String::from_utf8_lossy(&back));

    // pwd inside SFS reveals the full self-certifying pathname, which is
    // all anyone needs to reach this server securely (§2.4 bookmarks).
    let (mount, _, _) = client.resolve(1000, &notes).expect("resolve");
    println!("pwd -> {}", client.pwd(&mount, "home/alice"));
    println!("network RPCs used: {}", client.network_rpcs());
}
