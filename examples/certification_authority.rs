//! Certification authorities as file systems (§2.4): "SFS certification
//! authorities are nothing more than ordinary file systems serving
//! symbolic links." This example builds a Verisign-style CA, publishes it
//! read-only so replicas can run on untrusted machines, and shows a user
//! reaching a company's server through the CA by name alone.
//!
//! Run with: `cargo run --example certification_authority`

use std::sync::Arc;

use sfs::authserver::AuthServer;
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::readonly::{resolve_path, verified_root, RoNode};
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, SetAttr, Vfs};

fn make_server(
    clock: &SimClock,
    rng: &mut XorShiftSource,
    group: &SrpGroup,
    location: &str,
) -> Arc<SfsServer> {
    let vfs = Vfs::new(1, clock.clone());
    let root_creds = Credentials::root();
    let pubdir = vfs.mkdir_p("/pub").unwrap();
    vfs.setattr(
        &root_creds,
        pubdir,
        SetAttr {
            mode: Some(0o755),
            ..Default::default()
        },
    )
    .unwrap();
    vfs.write_file(
        &root_creds,
        pubdir,
        "catalog",
        format!("catalog served by {location}").as_bytes(),
    )
    .unwrap();
    let (f, _) = vfs.lookup(&root_creds, pubdir, "catalog").unwrap();
    vfs.setattr(
        &root_creds,
        f,
        SetAttr {
            mode: Some(0o644),
            ..Default::default()
        },
    )
    .unwrap();
    SfsServer::new(
        ServerConfig::new(location),
        generate_keypair(768, rng),
        vfs,
        Arc::new(AuthServer::new(group.clone(), 2)),
        SfsPrg::from_entropy(location.as_bytes()),
    )
}

fn main() {
    let clock = SimClock::new();
    let mut rng = XorShiftSource::new(77);
    let group = SrpGroup::generate(128, &mut rng);
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));

    // Two companies run servers.
    let acme = make_server(&clock, &mut rng, &group, "files.acme.example");
    let initech = make_server(&clock, &mut rng, &group, "files.initech.example");
    net.register(acme.clone());
    net.register(initech.clone());

    // Verisign runs a file system of symbolic links: name → self-
    // certifying pathname. That *is* the certificate.
    let verisign = make_server(&clock, &mut rng, &group, "verisign.example");
    let vfs = verisign.vfs();
    let root_creds = Credentials::root();
    let root = vfs.root();
    vfs.symlink(&root_creds, root, "acme", &acme.path().full_path())
        .unwrap();
    vfs.symlink(&root_creds, root, "initech", &initech.path().full_path())
        .unwrap();
    net.register(verisign.clone());
    println!("CA namespace:");
    println!("  /verisign/acme    -> {}", acme.path());
    println!("  /verisign/initech -> {}\n", initech.path());

    // A client administrator installs ONE link — to the CA.
    let client = SfsClient::new(net, b"ca-example-client");
    let uid = 1000;
    client
        .agent(uid)
        .lock()
        .create_link("verisign", &verisign.path().full_path());

    // Users now certify servers by *naming files*: no certificate
    // machinery, just path resolution.
    for company in ["acme", "initech"] {
        let path = format!("/sfs/verisign/{company}/pub/catalog");
        let data = client.read_file(uid, &path).expect("certified access");
        println!("{path}\n  -> {}", String::from_utf8_lossy(&data));
    }

    // "Interactive queries place high integrity, availability, and
    // performance needs on the servers" — so the CA publishes its links
    // as a presigned read-only database that untrusted mirrors can serve
    // with zero cryptographic work (§2.4).
    let db = verisign.publish_read_only(1);
    println!(
        "\nread-only export: {} blocks, {} bytes, 1 signature total",
        db.block_count(),
        db.total_bytes()
    );
    let mirror = (*db).clone(); // An untrusted mirror copies the blocks.
    let root_digest = verified_root(&mirror, verisign.private_key().public()).unwrap();
    match resolve_path(&mirror, root_digest, "/acme").unwrap() {
        RoNode::Symlink(target) => {
            println!("mirror serves /acme -> {target} (verified against the signed root)")
        }
        other => panic!("{other:?}"),
    }
}
