//! The §2.4 travel walkthrough: "Suppose a user from MIT travels to a
//! research laboratory and wishes to access files back at MIT. The user
//! runs the command `sfskey add [email protected]`. The command prompts
//! him for a single password. He types it, and the command completes
//! successfully. … The user now has secure access to his files back at
//! MIT. The process involves no system administrators, no certification
//! authorities, and no need for this user to have to think about anything
//! like public keys or self-certifying pathnames."
//!
//! Run with: `cargo run --example password_travel`

use std::sync::Arc;

use sfs::agent::Agent;
use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs::sfskey;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_telemetry::sync::Mutex;
use sfs_vfs::{Credentials, SetAttr, Vfs};

fn main() {
    let clock = SimClock::new();
    let mut rng = XorShiftSource::new(1999);
    let group = SrpGroup::generate(128, &mut rng);

    // ── At MIT: the server and alice's one-time registration ──────────
    let vfs = Vfs::new(1, clock.clone());
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        SetAttr {
            uid: Some(1000),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    vfs.write_file(
        &root_creds,
        home,
        "thesis.tex",
        b"\\chapter{Key Management}",
    )
    .unwrap();
    let (f, _) = vfs.lookup(&root_creds, home, "thesis.tex").unwrap();
    vfs.setattr(
        &root_creds,
        f,
        SetAttr {
            uid: Some(1000),
            mode: Some(0o600),
            ..Default::default()
        },
    )
    .unwrap();

    let auth = Arc::new(AuthServer::new(group.clone(), 6));
    let alice_key = generate_keypair(512, &mut rng);
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: 1000,
        gids: vec![100],
        public_key: alice_key.public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("sfs.lcs.mit.edu"),
        generate_keypair(768, &mut rng),
        vfs,
        auth,
        SfsPrg::from_entropy(b"mit-server"),
    );

    let password = b"kHux-qr1cm-purpl";
    // sfskey register: computes SRP data and an eksblowfish-encrypted
    // copy of the private key *client-side* — "the server never sees any
    // password-equivalent data."
    sfskey::register(server.authserver(), "alice", password, &alice_key, &mut rng);
    println!(
        "registered alice at MIT (eksblowfish cost 2^{})",
        server.authserver().cost()
    );

    // ── At the research lab: a fresh machine, nothing configured ──────
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let lab_client = SfsClient::new(net, b"lab-client");
    let mut agent = Agent::new();

    println!("\n$ sfskey add [email protected]");
    println!("Password: ****************");
    let start = lab_client.clock().now();
    let result = sfskey::add(
        &server.accept(),
        &group,
        &mut agent,
        "alice",
        password,
        &mut rng,
    )
    .expect("SRP handshake");
    println!(
        "fetched over SRP channel in {}:",
        lab_client.clock().now().since(start)
    );
    println!("  server path : {}", result.server_path.as_ref().unwrap());
    println!(
        "  private key : {} bits, decrypted locally",
        result
            .private_key
            .as_ref()
            .unwrap()
            .public()
            .modulus()
            .bit_len()
    );

    // The agent now holds the key and a human-readable link.
    lab_client.set_agent(1000, Arc::new(Mutex::new(agent)));
    let thesis = "/sfs/sfs.lcs.mit.edu/home/alice/thesis.tex";
    let data = lab_client
        .read_file(1000, thesis)
        .expect("authenticated read");
    println!("\n$ cat {thesis}");
    println!("{}", String::from_utf8_lossy(&data));

    // A wrong password gets nothing — and cannot be verified offline
    // either (SRP), while each guess costs a full eksblowfish run.
    let mut empty_agent = Agent::new();
    let err = sfskey::add(
        &server.accept(),
        &group,
        &mut empty_agent,
        "alice",
        b"wrong password",
        &mut rng,
    )
    .unwrap_err();
    println!("\nwrong password: {err}");
}
