//! Key compromise and recovery (§2.6): revocation certificates,
//! forwarding pointers, the overruling rule, and per-user HostID
//! blocking.
//!
//! Run with: `cargo run --example revocation_story`

use std::sync::Arc;

use sfs::authserver::AuthServer;
use sfs::client::{ClientError, SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::revoke::RevocationCert;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, SetAttr, Vfs};

fn server(
    clock: &SimClock,
    rng: &mut XorShiftSource,
    group: &SrpGroup,
    location: &str,
) -> Arc<SfsServer> {
    let vfs = Vfs::new(1, clock.clone());
    let root_creds = Credentials::root();
    let pubdir = vfs.mkdir_p("/pub").unwrap();
    vfs.setattr(
        &root_creds,
        pubdir,
        SetAttr {
            mode: Some(0o755),
            ..Default::default()
        },
    )
    .unwrap();
    vfs.write_file(&root_creds, pubdir, "data", location.as_bytes())
        .unwrap();
    let (f, _) = vfs.lookup(&root_creds, pubdir, "data").unwrap();
    vfs.setattr(
        &root_creds,
        f,
        SetAttr {
            mode: Some(0o644),
            ..Default::default()
        },
    )
    .unwrap();
    SfsServer::new(
        ServerConfig::new(location),
        generate_keypair(768, rng),
        vfs,
        Arc::new(AuthServer::new(group.clone(), 2)),
        SfsPrg::from_entropy(location.as_bytes()),
    )
}

fn main() {
    let clock = SimClock::new();
    let mut rng = XorShiftSource::new(0xBEEF);
    let group = SrpGroup::generate(128, &mut rng);
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));

    let old = server(&clock, &mut rng, &group, "old.example.org");
    let new = server(&clock, &mut rng, &group, "new.example.org");
    net.register(old.clone());
    net.register(new.clone());

    let client = SfsClient::new(net, b"revocation-client");
    let uid = 1000;

    // Normal operation.
    let data = client
        .read_file(uid, &format!("{}/pub/data", old.path().full_path()))
        .unwrap();
    println!(
        "before: read {:?} from {}",
        String::from_utf8_lossy(&data),
        old.path()
    );

    // ── Scenario 1: planned move — forwarding pointer ──────────────────
    // "One can replace the root directory of the old file system with a
    // single … forwarding pointer to the new self-certifying pathname."
    old.install_forwarding(new.path().clone());
    let fwd = client
        .check_forwarding(uid, old.path())
        .unwrap()
        .expect("pointer");
    println!("\nforwarding pointer: {} -> {}", old.path().location, fwd);
    let data = client
        .read_file(uid, &format!("{}/pub/data", fwd.full_path()))
        .unwrap();
    println!(
        "followed to new home, read {:?}",
        String::from_utf8_lossy(&data)
    );

    // ── Scenario 2: key compromise — revocation wins ───────────────────
    // The owner issues a self-authenticating revocation certificate.
    let cert = RevocationCert::issue(old.private_key(), &old.path().location);
    println!(
        "\nrevocation certificate issued for HostID {}",
        cert.host_id().unwrap()
    );
    // Anyone may relay it; alice's agent verifies and honors it.
    assert!(client.agent(uid).lock().submit_revocation(cert));
    client.unmount_all();
    // The old pathname is now dead — even though a (possibly rogue)
    // forwarding pointer still exists there: "a revocation certificate
    // always overrules a forwarding pointer."
    match client.read_file(uid, &format!("{}/pub/data", old.path().full_path())) {
        Err(ClientError::Blocked) => println!("old pathname refused: revoked"),
        other => panic!("{other:?}"),
    }
    match client.check_forwarding(uid, old.path()) {
        Err(ClientError::Blocked) => println!("forwarding pointer ignored: revocation overrules"),
        other => panic!("{other:?}"),
    }

    // ── Scenario 3: per-user HostID blocking ──────────────────────────
    // A different user, for their own reasons, blocks the *new* server —
    // "this prevents the agent's owner from accessing the self-certifying
    // pathname in question, but does not affect any other users."
    let other_uid = 2000;
    client
        .agent(other_uid)
        .lock()
        .block_host(new.path().host_id);
    assert!(matches!(
        client.read_file(other_uid, &format!("{}/pub/data", new.path().full_path())),
        Err(ClientError::Blocked)
    ));
    assert!(client
        .read_file(uid, &format!("{}/pub/data", new.path().full_path()))
        .is_ok());
    println!(
        "\nuser {other_uid} blocked {}; user {uid} is unaffected",
        new.path().location
    );
}
