//! The §2.1.2 threat model, live: an adversary who "entirely controls the
//! network" — intercepting, tampering, and replaying — against the SFS
//! secure channel, plus a man-in-the-middle with its own key pair against
//! self-certifying pathnames.
//!
//! Run with: `cargo run --example attack_demo`

use std::sync::Arc;

use sfs::authserver::AuthServer;
use sfs::client::{ClientError, SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::generate_keypair;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_sim::{Direction, Interceptor, NetParams, SimClock, Transport, Verdict};
use sfs_telemetry::sync::Mutex;
use sfs_vfs::{Credentials, SetAttr, Vfs};

/// Eve logs everything and, when armed, flips one bit per reply.
struct Eve {
    tampering: bool,
    packets_seen: usize,
}

impl Interceptor for Eve {
    fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict {
        self.packets_seen += 1;
        if self.tampering && dir == Direction::Reply && bytes.len() > 32 {
            let mut b = bytes.to_vec();
            let n = b.len();
            b[n / 2] ^= 0x01; // A single flipped bit.
            return Verdict::Replace(b);
        }
        Verdict::Deliver
    }
}

fn main() {
    let clock = SimClock::new();
    let mut rng = XorShiftSource::new(0xE7E);
    let group = SrpGroup::generate(128, &mut rng);

    let vfs = Vfs::new(1, clock.clone());
    let root_creds = Credentials::root();
    let pubdir = vfs.mkdir_p("/pub").unwrap();
    vfs.setattr(
        &root_creds,
        pubdir,
        SetAttr {
            mode: Some(0o755),
            ..Default::default()
        },
    )
    .unwrap();
    vfs.write_file(&root_creds, pubdir, "payroll", b"alice: $1")
        .unwrap();
    let (f, _) = vfs.lookup(&root_creds, pubdir, "payroll").unwrap();
    vfs.setattr(
        &root_creds,
        f,
        SetAttr {
            mode: Some(0o644),
            ..Default::default()
        },
    )
    .unwrap();

    let server = SfsServer::new(
        ServerConfig::new("payroll.example.org"),
        generate_keypair(768, &mut rng),
        vfs,
        Arc::new(AuthServer::new(group.clone(), 2)),
        SfsPrg::from_entropy(b"attack-demo-server"),
    );
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());

    let eve = Arc::new(Mutex::new(Eve {
        tampering: false,
        packets_seen: 0,
    }));
    net.set_interceptor(eve.clone());

    let client = SfsClient::new(net.clone(), b"attack-demo-client");
    let uid = 1000;
    let payroll = format!("{}/pub/payroll", server.path().full_path());

    // Eve passively records: the session still works, and she sees only
    // ciphertext (ARC4 + per-message SHA-1 MACs).
    let data = client
        .read_file(uid, &payroll)
        .expect("passive eavesdropper is harmless");
    println!(
        "with Eve listening ({} packets): read {:?}",
        eve.lock().packets_seen,
        String::from_utf8_lossy(&data)
    );

    // Eve turns active: one flipped bit per reply.
    eve.lock().tampering = true;
    client.unmount_all();
    match client.read_file(uid, &payroll) {
        Err(e) => println!("with Eve tampering: detected and refused -> {e}"),
        Ok(d) => panic!("tampered data accepted: {d:?}"),
    }
    eve.lock().tampering = false;

    // Mallory tries a man-in-the-middle: her own server, her own key, at
    // a location alice trusts. The pathname *is* the key, so the HostID
    // check fails before any file traffic flows.
    let mallory_vfs = Vfs::new(2, client.clock().clone());
    mallory_vfs
        .write_file(
            &Credentials::root(),
            mallory_vfs.root(),
            "payroll",
            b"alice: $0",
        )
        .unwrap();
    let mallory = SfsServer::new(
        ServerConfig::new("payroll.example.org"),
        generate_keypair(768, &mut rng),
        mallory_vfs,
        Arc::new(AuthServer::new(group, 2)),
        SfsPrg::from_entropy(b"mallory"),
    );
    net.register(mallory); // Hijacks the Location in "DNS".
    client.unmount_all();
    // Alice still uses the *real* pathname (it embeds the real server's
    // key); Mallory answers the dial but cannot match the HostID.
    let victim_path: SelfCertifyingPath = server.path().clone();
    match client.mount(uid, &victim_path) {
        Err(ClientError::KeyNeg(e)) => {
            println!("Mallory's MITM server: rejected during key negotiation -> {e}")
        }
        other => panic!("MITM not detected: {other:?}"),
    }
}
