//! Umbrella crate for the SFS reproduction: re-exports every workspace
//! crate under one roof for the examples and cross-crate integration
//! tests.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use sfs as core;
pub use sfs_bench as bench;
pub use sfs_bignum as bignum;
pub use sfs_crypto as crypto;
pub use sfs_nfs3 as nfs3;
pub use sfs_proto as proto;
pub use sfs_sim as sim;
pub use sfs_vfs as vfs;
pub use sfs_xdr as xdr;
